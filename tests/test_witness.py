"""Witness reconstruction: the worst-case formula, verified by the oracle."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.bucketization import Bucketization
from repro.core.disclosure import max_disclosure
from repro.core.exact import probability
from repro.core.witness import WorstCaseWitness, worst_case_witness


def random_bucketization(rng):
    lists = []
    for _ in range(rng.randint(1, 3)):
        size = rng.randint(1, 4)
        lists.append([rng.choice("abcd") for _ in range(size)])
    return Bucketization.from_value_lists(lists)


class TestWitnessAchievesDisclosure:
    """The reconstructed formula, fed to the exact engine, must realize
    exactly the disclosure the DP reports."""

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_random_instances(self, seed, k):
        rng = random.Random(seed)
        bucketization = random_bucketization(rng)
        witness = worst_case_witness(bucketization, k, exact=True)
        achieved = probability(
            bucketization, witness.consequent, witness.formula
        )
        assert achieved == witness.disclosure
        assert witness.disclosure == max_disclosure(bucketization, k, exact=True)

    def test_figure3(self, figure3):
        witness = worst_case_witness(figure3, 1, exact=True)
        assert witness.disclosure == Fraction(2, 3)
        achieved = probability(figure3, witness.consequent, witness.formula)
        assert achieved == Fraction(2, 3)


class TestWitnessShape:
    def test_theorem9_form(self, figure3):
        # Exactly k simple implications, all sharing the consequent atom.
        for k in (1, 2, 3):
            witness = worst_case_witness(figure3, k, exact=True)
            assert isinstance(witness, WorstCaseWitness)
            assert witness.k == k
            for implication in witness.implications:
                assert implication.is_simple
                assert implication.consequents == (witness.consequent,)

    def test_k0_witness_is_top_atom(self, figure3):
        witness = worst_case_witness(figure3, 0, exact=True)
        assert witness.implications == ()
        assert witness.disclosure == Fraction(2, 5)
        # The consequent is the most frequent value of some bucket.
        bucket = figure3.bucket_of(witness.consequent.person)
        assert witness.consequent.value == bucket.top_value

    def test_formula_property(self, figure3):
        witness = worst_case_witness(figure3, 2, exact=True)
        assert witness.formula.k == 2

    def test_antecedents_involve_real_people(self, figure3):
        witness = worst_case_witness(figure3, 2, exact=True)
        people = set(figure3.person_ids)
        for implication in witness.implications:
            assert implication.antecedents[0].person in people

    def test_negative_k_rejected(self, figure3):
        with pytest.raises(ValueError):
            worst_case_witness(figure3, -1)

    def test_float_mode_close(self, figure3):
        exact = worst_case_witness(figure3, 2, exact=True)
        approx = worst_case_witness(figure3, 2)
        assert approx.disclosure == pytest.approx(float(exact.disclosure))
