"""Partitioning strategies and the Anatomy-style bucketizer."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.anonymity import distinct_diversity
from repro.bucketization import (
    Bucketization,
    anatomize,
    partition_by_attribute,
    partition_by_qi,
    partition_into_chunks,
)
from repro.bucketization.anatomy import anatomy_eligible
from repro.data.schema import Schema
from repro.data.table import Table


@pytest.fixture
def table():
    schema = Schema(("zip", "age"), "disease")
    rows = []
    diseases = ["flu", "cold", "cancer", "mumps"]
    for i in range(12):
        rows.append(
            {
                "zip": f"z{i % 2}",
                "age": 20 + i % 3,
                "disease": diseases[i % 4],
            }
        )
    return Table(rows, schema)


class TestPartitioners:
    def test_by_qi(self, table):
        b = partition_by_qi(table)
        assert b.total_size == 12
        # 2 zips x 3 ages = 6 QI classes.
        assert len(b) == 6

    def test_by_attribute(self, table):
        b = partition_by_attribute(table, "zip")
        assert len(b) == 2
        with pytest.raises(ValueError):
            partition_by_attribute(table, "no_such")

    def test_chunks(self, table):
        b = partition_into_chunks(table, 5)
        assert [bucket.size for bucket in b] == [5, 5, 2]
        with pytest.raises(ValueError):
            partition_into_chunks(table, 0)

    def test_chunks_preserve_multiset(self, table):
        b = partition_into_chunks(table, 4)
        combined = Counter()
        for bucket in b:
            combined.update(bucket.sensitive_values)
        assert combined == table.sensitive_histogram()


class TestAnatomy:
    def test_eligibility(self, table):
        assert anatomy_eligible(table, 4)  # each disease has 3 = 12/4 tuples
        assert not anatomy_eligible(table, 5)
        with pytest.raises(ValueError):
            anatomy_eligible(table, 0)

    def test_buckets_have_distinct_values(self, table):
        b = anatomize(table, 3)
        for bucket in b.buckets:
            assert bucket.distinct_count == bucket.size

    def test_every_tuple_placed_once(self, table):
        b = anatomize(table, 4)
        assert sorted(b.person_ids) == list(range(12))
        combined = Counter()
        for bucket in b.buckets:
            combined.update(bucket.sensitive_values)
        assert combined == table.sensitive_histogram()

    def test_achieves_distinct_ell_diversity(self, table):
        for ell in (2, 3, 4):
            b = anatomize(table, ell)
            assert distinct_diversity(b) >= ell

    def test_ineligible_rejected(self, table):
        with pytest.raises(ValueError):
            anatomize(table, 5)

    def test_too_few_values_rejected(self):
        schema = Schema(("zip",), "disease")
        t = Table(
            [{"zip": "1", "disease": "flu"}, {"zip": "2", "disease": "flu"}],
            schema,
        )
        with pytest.raises(ValueError):
            anatomize(t, 2)

    def test_lowers_zero_knowledge_disclosure(self, table):
        from repro.core.disclosure import max_disclosure

        chunked = partition_into_chunks(table, 4)
        anatomized = anatomize(table, 4)
        assert max_disclosure(anatomized, 0) <= max_disclosure(chunked, 0)
