"""Execution backends: serial/pool/persistent equivalence and lifecycle.

The acceptance claims for the backend layer:

1. **Bit-for-bit equivalence** (property-based): the ``persistent`` backend
   returns exactly the serial path's values, in float and exact modes, for
   every signature-decomposable model — and so does ``pool``.
2. **Incremental shipping**: a worker receives each plane signature at most
   once; a steady-state batch whose signatures are already mirrored ships
   none.
3. **Lifecycle**: ``engine.close()`` / the engine context manager end the
   worker processes; an idle timeout shuts them down and the next batch
   respawns them; a crashed worker pool respawns transparently; a model
   that cannot pickle degrades to the serial path without poisoning the
   backend.
4. **Honest stats**: parallel batches are counted as ``parallel_hits``, so
   a cold cache with ``workers > 1`` reports a zero ``hit_rate``
   (the PR-3 ``EngineStats`` misattribution fix).
5. **Persistence fixes**: ``load_cache`` never pins what it restores, and
   raw-tagged (non-signature-decomposable) cache keys survive a
   save/load round-trip.
"""

from __future__ import annotations

import random
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bucketization import Bucketization
from repro.core.kernel import numpy_available
from repro.engine import (
    CachePolicy,
    DisclosureEngine,
    PersistentBackend,
    SamplingAdversary,
    available_backends,
    create_backend,
    get_adversary,
)

BACKENDS = ("serial", "pool", "persistent")

requires_numpy = pytest.mark.skipif(
    not numpy_available(),
    reason="the synthetic Adult generator needs numpy (repro[fast])",
)

small_bucketization_lists = st.lists(
    st.lists(
        st.lists(st.sampled_from("abcde"), min_size=1, max_size=5),
        min_size=1,
        max_size=3,
    ).map(Bucketization.from_value_lists),
    min_size=2,
    max_size=5,
)


def _random_bucketizations(count: int, seed: int = 11) -> list[Bucketization]:
    rng = random.Random(seed)
    result = []
    for _ in range(count):
        value_lists = [
            [rng.choice("abcdefg") for _ in range(rng.randint(2, 8))]
            for _ in range(rng.randint(1, 5))
        ]
        result.append(Bucketization.from_value_lists(value_lists))
    return result


@pytest.fixture(scope="module")
def shared_persistent():
    """One persistent backend for the whole module: spawning processes per
    test (or per hypothesis example) would dominate the suite's runtime,
    and sharing is a supported mode (mirrors reset across planes)."""
    backend = PersistentBackend()
    yield backend
    backend.close()


# ---------------------------------------------------------------------------
# 1. Bit-for-bit equivalence
# ---------------------------------------------------------------------------
class TestEquivalence:
    @given(small_bucketization_lists)
    @settings(max_examples=15, deadline=None)
    def test_persistent_equals_serial_property(self, bucketizations):
        """The acceptance property: persistent == serial, float and exact."""
        backend = _PROPERTY_BACKEND
        ks = [0, 1, 2]
        for exact in (False, True):
            serial = DisclosureEngine(
                exact=exact, backend="serial"
            ).evaluate_many(bucketizations, ks)
            engine = DisclosureEngine(exact=exact, workers=2, backend=backend)
            assert engine.evaluate_many(bucketizations, ks) == serial

    def test_all_backends_agree_across_models(self, shared_persistent):
        bucketizations = _random_bucketizations(8)
        ks = [0, 1, 3]
        for model in ("implication", "negation", "distribution"):
            for exact in (False, True):
                expected = DisclosureEngine(
                    exact=exact, backend="serial"
                ).evaluate_many(bucketizations, ks, model=model)
                for backend in ("pool", shared_persistent):
                    engine = DisclosureEngine(
                        exact=exact, workers=2, backend=backend
                    )
                    result = engine.evaluate_many(
                        bucketizations, ks, model=model
                    )
                    assert result == expected, (model, exact, engine.backend.name)

    @requires_numpy
    def test_search_prewarm_on_persistent_backend(self, shared_persistent):
        from repro.data.adult import ADULT_SCHEMA
        from repro.data.hierarchies import adult_hierarchies
        from repro.experiments.runner import default_adult_table
        from repro.generalization.lattice import GeneralizationLattice

        table = default_adult_table(150)
        lattice = GeneralizationLattice(
            adult_hierarchies(), ADULT_SCHEMA.quasi_identifiers
        )
        serial = DisclosureEngine(backend="serial").find_minimal_safe_nodes(
            table, lattice, 0.8, 2
        )
        engine = DisclosureEngine(workers=2, backend=shared_persistent)
        assert engine.find_minimal_safe_nodes(table, lattice, 0.8, 2) == serial
        assert engine.stats.parallel_tasks > 0

    @requires_numpy
    def test_fig6_on_persistent_backend(self, shared_persistent):
        from repro.experiments.fig6 import run_figure6
        from repro.experiments.runner import default_adult_table

        table = default_adult_table(150)
        serial = run_figure6(table, ks=(1, 3))
        engine = DisclosureEngine(workers=2, backend=shared_persistent)
        parallel = run_figure6(table, ks=(1, 3), engine=engine, workers=2)
        assert parallel.nodes == serial.nodes


#: Module-level so the hypothesis property reuses one worker pool; closed by
#: the autouse fixture below rather than leaked.
_PROPERTY_BACKEND = PersistentBackend()


@pytest.fixture(scope="module", autouse=True)
def _close_property_backend():
    yield
    _PROPERTY_BACKEND.close()


# ---------------------------------------------------------------------------
# 2. Incremental signature shipping
# ---------------------------------------------------------------------------
class TestDeltaProtocol:
    def test_each_signature_ships_at_most_once_per_worker(self):
        with DisclosureEngine(workers=2, backend="persistent") as engine:
            backend = engine.backend
            first = _random_bucketizations(8, seed=1)
            engine.evaluate_many(first, [1, 2])
            # Recombine the same signatures into *new* multisets: new cache
            # keys (so the batch really fans out) but zero new signatures.
            sigs = [engine.plane.signature(i) for i in range(len(engine.plane))]
            rng = random.Random(7)
            recombined = [
                Bucketization.from_signature_counts(
                    {
                        sig: rng.randint(1, 2)
                        for sig in rng.sample(sigs, min(4, len(sigs)))
                    }
                )
                for _ in range(8)
            ]
            engine.evaluate_many(recombined, [1, 2])
            log = backend.ship_log
            assert len(log) == 2
            assert log[0]["shipped_signatures"] > 0
            assert log[1]["shipped_signatures"] == 0  # all mirrored already
            # Global invariant: nothing ships twice to one worker.
            total = sum(entry["shipped_signatures"] for entry in log)
            workers = max(entry["workers_used"] for entry in log)
            assert total <= len(engine.plane) * workers

    def test_mirror_resets_across_planes(self, shared_persistent):
        """A backend shared by two engines must not serve one engine's ids
        against the other's signatures."""
        bs_a = _random_bucketizations(6, seed=21)
        bs_b = _random_bucketizations(6, seed=22)
        engine_a = DisclosureEngine(workers=2, backend=shared_persistent)
        engine_b = DisclosureEngine(workers=2, backend=shared_persistent)
        expected_a = DisclosureEngine(backend="serial").evaluate_many(bs_a, [1])
        expected_b = DisclosureEngine(backend="serial").evaluate_many(bs_b, [1])
        assert engine_a.evaluate_many(bs_a, [1]) == expected_a
        assert engine_b.evaluate_many(bs_b, [1]) == expected_b
        assert engine_a.evaluate_many(bs_a, [2]) == DisclosureEngine(
            backend="serial"
        ).evaluate_many(bs_a, [2])


# ---------------------------------------------------------------------------
# 3. Lifecycle
# ---------------------------------------------------------------------------
class TestLifecycle:
    def test_close_ends_workers_and_engine_is_reusable(self):
        engine = DisclosureEngine(workers=2, backend="persistent")
        bs = _random_bucketizations(6, seed=31)
        expected = DisclosureEngine(backend="serial").evaluate_many(bs, [1])
        assert engine.evaluate_many(bs, [1]) == expected
        assert engine.backend.worker_count() > 0
        engine.close()
        assert engine.backend.worker_count() == 0
        # Reusable: the next batch respawns.
        bs2 = _random_bucketizations(6, seed=32)
        assert engine.evaluate_many(bs2, [1]) == DisclosureEngine(
            backend="serial"
        ).evaluate_many(bs2, [1])
        engine.close()

    def test_context_manager_closes(self):
        with DisclosureEngine(workers=2, backend="persistent") as engine:
            engine.evaluate_many(_random_bucketizations(6, seed=33), [1])
            backend = engine.backend
            assert backend.worker_count() > 0
        assert backend.worker_count() == 0

    def test_idle_timeout_shuts_down_and_respawns(self):
        backend = PersistentBackend(idle_timeout=0.2)
        try:
            engine = DisclosureEngine(workers=2, backend=backend)
            bs = _random_bucketizations(6, seed=34)
            expected = DisclosureEngine(backend="serial").evaluate_many(bs, [1])
            assert engine.evaluate_many(bs, [1]) == expected
            assert backend.worker_count() > 0
            deadline = time.monotonic() + 5.0
            while backend.worker_count() > 0 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert backend.worker_count() == 0  # idle shutdown fired
            # Transparent respawn, full prefix re-shipped.
            bs2 = _random_bucketizations(6, seed=35)
            assert engine.evaluate_many(bs2, [1]) == DisclosureEngine(
                backend="serial"
            ).evaluate_many(bs2, [1])
        finally:
            backend.close()

    def test_crashed_workers_respawn_transparently(self):
        with DisclosureEngine(workers=2, backend="persistent") as engine:
            bs = _random_bucketizations(6, seed=36)
            engine.evaluate_many(bs, [1])
            for worker in list(engine.backend._workers):
                worker.process.terminate()
                worker.process.join()
            bs2 = _random_bucketizations(6, seed=37)
            assert engine.evaluate_many(bs2, [1]) == DisclosureEngine(
                backend="serial"
            ).evaluate_many(bs2, [1])

    def test_unpicklable_model_degrades_without_poisoning(self):
        implication = get_adversary("implication")

        class LocalModel(type(implication)):  # unpicklable: local class
            name = "implication"

        with DisclosureEngine(workers=2, backend="persistent") as engine:
            bs = _random_bucketizations(5, seed=38)
            expected = DisclosureEngine(backend="serial").evaluate_many(
                bs, [1]
            )
            assert engine.evaluate_many(bs, [1], model=LocalModel()) == expected
            # The backend still works for shippable models afterwards.
            bs2 = _random_bucketizations(5, seed=39)
            engine2 = DisclosureEngine(workers=2, backend=engine.backend)
            assert engine2.evaluate_many(bs2, [1]) == DisclosureEngine(
                backend="serial"
            ).evaluate_many(bs2, [1])
            assert engine2.stats.parallel_tasks > 0

    def test_midbatch_ship_failure_does_not_poison_later_batches(self):
        """Regression: a pickling failure after some workers were already
        sent their chunks used to leave those replies in flight, and the
        *next* batch consumed them as its own answers (silently wrong
        values warm-backed into the cache). The pool must go down with the
        failed batch instead."""

        with DisclosureEngine(workers=2, backend="persistent") as engine:
            model = engine.model("implication")
            bs = _random_bucketizations(6, seed=71)
            good = engine.evaluate_many(bs, [1], model=model)
            assert good == DisclosureEngine(backend="serial").evaluate_many(
                bs, [1]
            )  # two workers now hold the model resident
            # Same model *identity*, now unpicklable: the two resident
            # workers accept their chunks with ship_model=None, then
            # pickling the instance for a newly spawned third worker fails
            # mid-loop — two replies already in flight.
            model.unpicklable = lambda: None
            try:
                bs2 = _random_bucketizations(9, seed=72)
                flaky = engine.evaluate_many(
                    bs2, [1], model=model, workers=4
                )
                assert flaky == DisclosureEngine(
                    backend="serial"
                ).evaluate_many(bs2, [1])  # served by the serial fallback
            finally:
                del model.unpicklable
            # The batch after the failure must not read stale replies.
            # Sized so the stale replies (3 + 2 results from the 9-key
            # failed batch over 4 workers) would slot into this batch's
            # 2-worker strides exactly — the silent-poisoning shape.
            bs3 = _random_bucketizations(5, seed=73)
            assert engine.evaluate_many(bs3, [1]) == DisclosureEngine(
                backend="serial"
            ).evaluate_many(bs3, [1])

    def test_idle_timer_racing_a_batch_stands_down(self):
        """Regression: an idle-timer firing that raced a batch (blocked on
        the lock while the batch ran) used to kill the workers the batch
        had just warmed and orphan the freshly armed timer."""
        backend = PersistentBackend(idle_timeout=3600.0)
        try:
            engine = DisclosureEngine(workers=2, backend=backend)
            bs = _random_bucketizations(6, seed=74)
            engine.evaluate_many(bs, [1])
            assert backend.worker_count() == 2
            # Replay the race: a firing whose generation predates the
            # latest re-arm must not stop the workers.
            stale_generation = backend._timer_generation - 1
            backend._idle_shutdown(stale_generation)
            assert backend.worker_count() == 2  # stood down
            # The current generation still shuts down (the real timer).
            backend._idle_shutdown(backend._timer_generation)
            assert backend.worker_count() == 0
        finally:
            backend.close()

    def test_model_error_reproduced_serially(self, shared_persistent):
        class ExplodingModel(type(get_adversary("implication"))):
            name = "implication"

            def series(self, bucketization, ks, *, context):
                raise RuntimeError("deliberate model failure")

        engine = DisclosureEngine(workers=2, backend=shared_persistent)
        with pytest.raises(RuntimeError, match="deliberate model failure"):
            engine.evaluate_many(
                _random_bucketizations(4, seed=40), [1], model=ExplodingModel()
            )

    def test_serial_backend_never_fans_out(self):
        engine = DisclosureEngine(workers=4, backend="serial")
        bs = _random_bucketizations(6, seed=41)
        expected = DisclosureEngine().evaluate_many(bs, [1, 2], workers=1)
        assert engine.evaluate_many(bs, [1, 2]) == expected
        assert engine.stats.parallel_tasks == 0
        assert engine.stats.parallel_hits == 0

    def test_create_backend_validation(self):
        assert available_backends() == ("persistent", "pool", "serial")
        with pytest.raises(ValueError, match="unknown execution backend"):
            create_backend("threads")
        backend = create_backend("serial")
        assert create_backend(backend) is backend
        with pytest.raises(ValueError, match="name"):
            create_backend(backend, idle_timeout=1.0)
        with pytest.raises(ValueError, match="idle_timeout"):
            PersistentBackend(idle_timeout=0.0)


# ---------------------------------------------------------------------------
# 4. Honest stats (EngineStats misattribution fix)
# ---------------------------------------------------------------------------
class TestStats:
    @pytest.mark.parametrize("backend", ["pool", "persistent"])
    def test_cold_parallel_batch_reports_zero_hit_rate(self, backend):
        """Regression: parallel-warmed results used to be counted as
        cache_hits, so a cold cache with workers > 1 claimed a nonzero hit
        rate."""
        with DisclosureEngine(workers=2, backend=backend) as engine:
            bs = _random_bucketizations(8, seed=51)
            engine.evaluate_many(bs, [1, 2])
            assert engine.stats.parallel_tasks > 0
            assert engine.stats.cache_hits == 0
            assert engine.stats.hit_rate == 0.0
            assert engine.stats.parallel_hits > 0
            assert engine.stats.misses == 0  # served, just not from cache
            # A serial rerun is genuine cache hits.
            engine.evaluate_many(bs, [1, 2], workers=1)
            assert engine.stats.cache_hits > 0
            assert engine.stats.hit_rate > 0.0

    def test_parallel_hits_surfaced_in_as_dict(self):
        stats_keys = DisclosureEngine().stats.as_dict()
        assert "parallel_hits" in stats_keys

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cold_vs_warm_stats_per_backend(self, backend):
        """Satellite acceptance: for every backend, a cold batch reports no
        cache hits and a warm rerun is answered entirely from cache."""
        with DisclosureEngine(workers=2, backend=backend) as engine:
            bs = _random_bucketizations(6, seed=52)
            ks = [1, 2]
            engine.evaluate_many(bs, ks)
            assert engine.stats.cache_hits == 0
            assert engine.stats.hit_rate == 0.0
            evaluations = engine.stats.evaluations
            cold_misses = engine.stats.misses
            engine.evaluate_many(bs, ks)
            new = engine.stats.evaluations - evaluations
            assert engine.stats.cache_hits == new  # warm: all cache hits
            assert engine.stats.misses == cold_misses  # rerun added none


# ---------------------------------------------------------------------------
# 5. Persistence fixes
# ---------------------------------------------------------------------------
class TestPersistenceFixes:
    def test_load_cache_entries_stay_evictable_under_pinning(self, tmp_path):
        """Regression: restoring a cache inside a pinned() scope used to pin
        every loaded entry permanently."""
        bs = _random_bucketizations(8, seed=61)
        source = DisclosureEngine()
        source.evaluate_many(bs, [1], workers=1)
        path = tmp_path / "cache.pkl"
        saved = source.save_cache(path)
        assert saved >= 8

        target = DisclosureEngine(
            policy=CachePolicy(max_entries=4, pin_sweeps=True)
        )
        with target.pinned():
            loaded = target.load_cache(path)
        assert loaded > 0
        assert target.pinned_count() == 0  # nothing pinned by loading
        assert target.cache_size() <= 4  # the LRU bound still applies
        # And fresh traffic can evict loaded entries.
        evictions = target.stats.evictions
        for b in _random_bucketizations(8, seed=62):
            target.evaluate(b, 2)
        assert target.stats.evictions > evictions
        assert target.cache_size() <= 4

    def test_load_cache_under_pin_sweeps_search(self, tmp_path):
        """pin_sweeps engines load caches without pinning them, but a sweep
        that later *reads* a loaded entry claims it as usual."""
        bs = _random_bucketizations(5, seed=63)
        source = DisclosureEngine()
        source.evaluate_many(bs, [1], workers=1)
        path = tmp_path / "cache.pkl"
        source.save_cache(path)
        engine = DisclosureEngine(
            policy=CachePolicy(max_entries=50, pin_sweeps=True)
        )
        engine.load_cache(path)
        assert engine.pinned_count() == 0
        with engine.pinned():
            engine.evaluate(bs[0], 1)  # a pinned scope reading a loaded entry
        assert engine.pinned_count() == 1

    def test_raw_tagged_keys_round_trip(self, tmp_path):
        """Non-signature-decomposable models cache under ("raw", model key);
        those entries must survive save/load unchanged."""
        model = SamplingAdversary(samples=300, seed=7)
        assert not model.signature_decomposable()
        bs = _random_bucketizations(5, seed=64)
        source = DisclosureEngine()
        expected = [source.evaluate(b, 1, model=model) for b in bs]
        # Mix in plane-tagged entries so both tags share the file.
        source.evaluate_many(bs, [1], workers=1)
        path = tmp_path / "cache.pkl"
        saved = source.save_cache(path)
        assert saved == source.cache_size()

        fresh = DisclosureEngine()
        assert fresh.load_cache(path) == saved
        result = [fresh.evaluate(b, 1, model=model) for b in bs]
        assert result == expected
        assert fresh.stats.misses == 0  # every raw-tagged lookup hit
        assert fresh.stats.cache_hits == len(bs)
