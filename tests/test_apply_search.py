"""Applying lattice nodes to tables, and the safe-node searches."""

from __future__ import annotations

import pytest

from repro.core.safety import SafetyChecker
from repro.errors import SearchError
from repro.generalization.apply import bucketize_at, generalize_table
from repro.generalization.hierarchy import SUPPRESSED
from repro.generalization.search import (
    SearchStats,
    binary_search_chain,
    find_best_safe_node,
    find_minimal_safe_nodes,
)
from repro.utility.metrics import precision


class TestApply:
    def test_generalize_table(self, small_adult, adult_lattice):
        node = (3, 1, 1, 0)
        generalized = generalize_table(small_adult, adult_lattice, node)
        record = generalized[0]
        assert record["age"].startswith("[")
        assert record["marital_status"] in {
            "Married",
            "Was-married",
            "Never-married",
        }
        assert record["race"] == SUPPRESSED
        assert record["sex"] in {"Male", "Female"}
        # Sensitive column untouched.
        assert generalized.sensitive_values() == small_adult.sensitive_values()

    def test_bucketize_at_matches_generalized_groups(
        self, small_adult, adult_lattice
    ):
        node = (4, 2, 1, 0)
        direct = bucketize_at(small_adult, adult_lattice, node)
        via_table = generalize_table(small_adult, adult_lattice, node)
        from repro.bucketization import Bucketization

        expected = Bucketization.from_table(via_table)
        assert direct.partition_frozen() == expected.partition_frozen()

    def test_top_node_single_bucket(self, small_adult, adult_lattice):
        b = bucketize_at(small_adult, adult_lattice, adult_lattice.top)
        assert len(b) == 1
        assert b.total_size == len(small_adult)

    def test_coarser_nodes_merge_buckets(self, small_adult, adult_lattice):
        fine = bucketize_at(small_adult, adult_lattice, (1, 0, 0, 0))
        coarse = bucketize_at(small_adult, adult_lattice, (3, 2, 1, 1))
        assert fine.refines(coarse)

    def test_attribute_mismatch_rejected(self, small_adult, adult_lattice):
        from repro.generalization.lattice import GeneralizationLattice
        from repro.generalization.hierarchy import Hierarchy

        other = GeneralizationLattice(
            {"height": Hierarchy.identity_or_suppress("height")}, ("height",)
        )
        with pytest.raises(ValueError):
            generalize_table(small_adult, other, (0,))


class TestMinimalSafeSearch:
    def test_matches_exhaustive_scan(self, small_adult, adult_lattice):
        checker = SafetyChecker(0.7, 2)

        def is_safe(node):
            return checker.is_safe(bucketize_at(small_adult, adult_lattice, node))

        found = find_minimal_safe_nodes(adult_lattice, is_safe)
        # Exhaustive reference: evaluate safety at every node, take minima.
        safe_nodes = [n for n in adult_lattice.nodes() if is_safe(n)]
        assert set(found) == set(adult_lattice.minimal_elements(safe_nodes))

    def test_found_nodes_are_safe_and_children_unsafe(
        self, small_adult, adult_lattice
    ):
        checker = SafetyChecker(0.65, 1)

        def is_safe(node):
            return checker.is_safe(bucketize_at(small_adult, adult_lattice, node))

        for node in find_minimal_safe_nodes(adult_lattice, is_safe):
            assert is_safe(node)
            for child in adult_lattice.children(node):
                assert not is_safe(child)

    def test_pruning_reduces_checks(self, small_adult, adult_lattice):
        checker = SafetyChecker(0.9, 1)
        stats = SearchStats()
        find_minimal_safe_nodes(
            adult_lattice,
            lambda n: checker.is_safe(bucketize_at(small_adult, adult_lattice, n)),
            stats=stats,
        )
        assert stats.predicate_checks + stats.pruned == 72
        assert stats.pruned > 0

    def test_no_safe_nodes(self, adult_lattice):
        result = find_minimal_safe_nodes(adult_lattice, lambda node: False)
        assert result == []

    def test_best_safe_node_maximizes_utility(self, small_adult, adult_lattice):
        checker = SafetyChecker(0.7, 2)

        def is_safe(node):
            return checker.is_safe(bucketize_at(small_adult, adult_lattice, node))

        best = find_best_safe_node(
            adult_lattice, is_safe, lambda n: precision(adult_lattice, n)
        )
        others = find_minimal_safe_nodes(adult_lattice, is_safe)
        assert best in others
        assert all(
            precision(adult_lattice, best) >= precision(adult_lattice, n)
            for n in others
        )

    def test_best_safe_node_raises_when_none(self, adult_lattice):
        with pytest.raises(SearchError):
            find_best_safe_node(adult_lattice, lambda n: False, sum)


class TestBinarySearchChain:
    def test_finds_lowest_safe_on_chain(self, small_adult, adult_lattice):
        checker = SafetyChecker(0.75, 2)
        chain = adult_lattice.default_chain()

        def is_safe(node):
            return checker.is_safe(bucketize_at(small_adult, adult_lattice, node))

        found = binary_search_chain(chain, is_safe)
        index = chain.index(found)
        assert is_safe(found)
        assert all(not is_safe(node) for node in chain[:index])

    def test_logarithmic_checks(self, adult_lattice):
        chain = adult_lattice.default_chain()  # 10 nodes
        stats = SearchStats()
        binary_search_chain(chain, lambda n: sum(n) >= 4, stats=stats)
        assert stats.predicate_checks <= 5  # 1 top check + ceil(log2(9))

    def test_unsafe_chain_raises(self, adult_lattice):
        with pytest.raises(SearchError):
            binary_search_chain(
                adult_lattice.default_chain(), lambda n: False
            )

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            binary_search_chain([], lambda n: True)

    def test_all_safe_chain_returns_bottom(self, adult_lattice):
        chain = adult_lattice.default_chain()
        assert binary_search_chain(chain, lambda n: True) == chain[0]
