"""Jeffrey conditionalization: probabilistic background knowledge."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.bucketization import Bucketization
from repro.core.disclosure import max_disclosure
from repro.core.exact import exact_disclosure_risk, probability
from repro.core.probabilistic import (
    jeffrey_disclosure_risk,
    jeffrey_probability,
    max_jeffrey_disclosure_single,
)
from repro.errors import InconsistentWorldError
from repro.knowledge.atoms import Atom
from repro.knowledge.formulas import simple_implication


@pytest.fixture
def small():
    return Bucketization.from_value_lists([["flu", "flu", "mumps"], ["flu", "cold"]])


class TestJeffreyProbability:
    def test_full_confidence_is_ordinary_conditioning(self, figure3):
        phi = simple_implication("Hannah", "Flu", "Charlie", "Flu")
        assert jeffrey_probability(
            figure3, Atom("Charlie", "Flu"), phi, 1
        ) == probability(figure3, Atom("Charlie", "Flu"), phi)

    def test_zero_confidence_conditions_on_negation(self, figure3):
        phi = simple_implication("Hannah", "Flu", "Charlie", "Flu")
        expected = probability(
            figure3, Atom("Charlie", "Flu"), lambda w: not phi.holds_in(w)
        )
        assert jeffrey_probability(
            figure3, Atom("Charlie", "Flu"), phi, 0
        ) == expected

    def test_mixes_linearly(self, figure3):
        phi = simple_implication("Hannah", "Flu", "Charlie", "Flu")
        event = Atom("Charlie", "Flu")
        at_1 = jeffrey_probability(figure3, event, phi, 1)
        at_0 = jeffrey_probability(figure3, event, phi, 0)
        at_half = jeffrey_probability(figure3, event, phi, Fraction(1, 2))
        assert at_half == (at_1 + at_0) / 2

    def test_confidence_validated(self, small):
        phi = simple_implication(0, "flu", 3, "flu")
        with pytest.raises(ValueError):
            jeffrey_probability(small, Atom(0, "flu"), phi, 1.5)

    def test_confident_in_impossible_raises(self, small):
        with pytest.raises(InconsistentWorldError):
            jeffrey_probability(
                small, Atom(0, "flu"), Atom(0, "not-a-value"), Fraction(1, 2)
            )

    def test_doubt_about_tautology_raises(self, small):
        with pytest.raises(InconsistentWorldError):
            jeffrey_probability(
                small, Atom(0, "flu"), lambda w: True, Fraction(1, 2)
            )


class TestJeffreyDisclosureRisk:
    def test_certainty_matches_exact_risk(self, small):
        phi = simple_implication(0, "mumps", 0, "flu")  # NOT(p0 = mumps)
        assert jeffrey_disclosure_risk(small, phi, 1) == exact_disclosure_risk(
            small, phi
        )

    def test_monotone_in_confidence(self, small):
        phi = simple_implication(0, "mumps", 0, "flu")
        risks = [
            jeffrey_disclosure_risk(small, phi, Fraction(q, 4))
            for q in range(5)
        ]
        # The worst-case posterior moves toward the conditioned risk; with
        # this phi the risk at q=1 is the highest.
        assert risks[-1] == max(risks)

    def test_convex_upper_bound_by_branch_extremes(self, small):
        # Each atom's Jeffrey posterior is linear in q, so the worst-case
        # risk (a max of linear functions) is convex in q: it never exceeds
        # the larger branch risk. It MAY dip below both endpoints at interior
        # q (different atoms win in the two branches), so no lower bound by
        # the branch minimum is asserted.
        phi = simple_implication(0, "mumps", 0, "flu")
        risk_phi = jeffrey_disclosure_risk(small, phi, 1)
        risk_not = jeffrey_disclosure_risk(small, phi, 0)
        hi = max(risk_phi, risk_not)
        for q in (Fraction(1, 3), Fraction(2, 3)):
            risk = jeffrey_disclosure_risk(small, phi, q)
            assert risk <= hi
            assert risk > 0


class TestWorstCaseSingle:
    def test_certainty_recovers_k1_max(self, small):
        assert max_jeffrey_disclosure_single(small, 1) == max_disclosure(
            small, 1, exact=True
        )

    def test_convex_in_confidence(self, small):
        # Each formula's posterior is linear in q, so the pool maximum is
        # convex: every interior confidence is bounded by the endpoints.
        endpoints = max(
            max_jeffrey_disclosure_single(small, 0),
            max_jeffrey_disclosure_single(small, 1),
        )
        for q in (Fraction(1, 4), Fraction(1, 2), Fraction(3, 4)):
            assert max_jeffrey_disclosure_single(small, q) <= endpoints

    def test_doubt_can_beat_weak_belief(self, small):
        # q = 0 means certainty in NOT(A -> B) = A AND NOT B — two atoms of
        # hard knowledge, which here disclose at least as much as any single
        # implication held with mild confidence.
        at_zero = max_jeffrey_disclosure_single(small, 0)
        at_quarter = max_jeffrey_disclosure_single(small, Fraction(1, 4))
        assert at_zero >= at_quarter

    def test_never_below_no_knowledge(self, small):
        baseline = exact_disclosure_risk(small, None)
        assert max_jeffrey_disclosure_single(small, Fraction(1, 10)) >= baseline
