"""The vectorized float kernel: numpy == scalar to the ULP, exact as oracle.

The acceptance claims for :mod:`repro.core.kernel`:

1. **Exact-ULP equivalence** (property-based): the numpy MINIMIZE1 and
   MINIMIZE2 paths return *bit-identical* floats to the scalar float path
   on random signature multisets — including singleton buckets, ``k = 0``
   and ``m > n_b`` infeasible placements — the same style of proof
   ``test_backend.py`` gives for serial == persistent.
2. **Oracle tolerance**: the vectorized float results stay within float
   round-off of the exact-Fraction oracle (which always runs scalar).
3. **Selector semantics**: ``resolve_kernel`` maps exact mode to scalar,
   ``auto`` to numpy only when available, and an explicit ``numpy`` request
   without numpy installed falls back to scalar with a one-time warning.
4. **Engine integration**: every backend ships the engine's resolved
   kernel, numpy and scalar engines agree bit-for-bit, and the kernel name
   is surfaced in ``EngineStats.as_dict()``.
"""

from __future__ import annotations

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bucketization import Bucketization
from repro.core import kernel
from repro.core.minimize1 import Minimize1Solver
from repro.core.minimize2 import min_ratio_table
from repro.engine import DisclosureEngine

requires_numpy = pytest.mark.skipif(
    not kernel.numpy_available(), reason="numpy not installed"
)

#: A random bucket signature: positive counts, non-increasing.
signatures = st.lists(
    st.integers(min_value=1, max_value=7), min_size=1, max_size=5
).map(lambda counts: tuple(sorted(counts, reverse=True)))

signature_lists = st.lists(signatures, min_size=1, max_size=5)


@requires_numpy
class TestMinimize1Equivalence:
    @given(sig=signatures, max_m=st.integers(min_value=0, max_value=8))
    @settings(max_examples=80, deadline=None)
    def test_tables_bit_identical(self, sig, max_m):
        scalar = Minimize1Solver(kernel="scalar").table(sig, max_m)
        vector = Minimize1Solver(kernel="numpy").table(sig, max_m)
        assert vector == scalar  # exact float equality, not approx

    def test_singleton_bucket(self):
        # One person, one value: any m >= 1 forces probability 0.
        solver = Minimize1Solver(kernel="numpy")
        assert solver.table((1,), 4) == [1.0, 0.0, 0.0, 0.0, 0.0]

    def test_m_exceeding_bucket_size_matches_scalar(self):
        # m > n_b: feasible only by stacking atoms on few people; the
        # infeasible sub-placements (more people than tuples) must be
        # masked identically in both kernels.
        for sig in [(1,), (2,), (1, 1), (2, 1)]:
            n = sum(sig)
            scalar = Minimize1Solver(kernel="scalar").table(sig, n + 4)
            vector = Minimize1Solver(kernel="numpy").table(sig, n + 4)
            assert vector == scalar

    def test_m_zero_is_one(self):
        assert Minimize1Solver(kernel="numpy").minimum((3, 2), 0) == 1.0

    def test_batch_matches_per_signature(self):
        solver = Minimize1Solver(kernel="numpy")
        sigs = [(3, 2, 1), (1, 1), (5,), (3, 2, 1)]
        batch = solver.tables(sigs, 5)
        fresh = [Minimize1Solver(kernel="numpy").table(s, 5) for s in sigs]
        assert batch == fresh

    def test_wider_recompute_preserves_prefix(self):
        solver = Minimize1Solver(kernel="numpy")
        narrow = solver.table((4, 3, 2), 3)
        wide = solver.table((4, 3, 2), 7)
        assert wide[:4] == narrow

    def test_memo_accounting(self):
        solver = Minimize1Solver(kernel="numpy")
        solver.table((3, 2, 1), 6)
        size = solver.memo_size()
        solver.table((3, 2, 1), 6)  # cached: no growth
        assert solver.memo_size() == size
        assert solver.known_signatures() == 1


@requires_numpy
class TestMinimize2Equivalence:
    @given(sigs=signature_lists, k=st.integers(min_value=0, max_value=6))
    @settings(max_examples=60, deadline=None)
    def test_ratio_tables_bit_identical(self, sigs, k):
        scalar = min_ratio_table(sigs, k, kernel="scalar")
        vector = min_ratio_table(sigs, k, kernel="numpy")
        assert vector == scalar

    @given(sigs=signature_lists, k=st.integers(min_value=0, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_float_tracks_exact_oracle(self, sigs, k):
        vector = min_ratio_table(sigs, k, kernel="numpy")
        oracle = min_ratio_table(sigs, k, exact=True)
        for approx, exact in zip(vector, oracle):
            if exact == float("inf"):
                assert approx == float("inf")
            else:
                assert approx == pytest.approx(float(exact), abs=1e-9)

    def test_k0_single_bucket(self):
        assert min_ratio_table([(2, 2, 1)], 0, kernel="numpy")[0] == 1.5

    def test_dedupe_changes_nothing(self):
        sigs = [(2, 1)] * 7 + [(3, 3)] * 5
        with_dedupe = min_ratio_table(sigs, 3, kernel="numpy", dedupe=True)
        without = min_ratio_table(sigs, 3, kernel="numpy", dedupe=False)
        assert with_dedupe == without


class TestKernelSelector:
    def test_exact_always_scalar(self):
        assert kernel.resolve_kernel("auto", exact=True) == "scalar"
        assert kernel.resolve_kernel("numpy", exact=True) == "scalar"
        assert Minimize1Solver(exact=True, kernel="numpy").kernel == "scalar"

    def test_scalar_request_honored(self):
        assert kernel.resolve_kernel("scalar") == "scalar"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            kernel.resolve_kernel("cuda")
        with pytest.raises(ValueError):
            Minimize1Solver(kernel="fast")

    @requires_numpy
    def test_auto_picks_numpy_when_available(self):
        assert kernel.resolve_kernel("auto") == "numpy"

    def test_missing_numpy_warns_once_then_falls_back(self, monkeypatch):
        monkeypatch.setattr(kernel, "_np", None)
        monkeypatch.setattr(kernel, "_np_checked", True)
        monkeypatch.setattr(kernel, "_warned_missing", False)
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert kernel.resolve_kernel("numpy") == "scalar"
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second request: silent
            assert kernel.resolve_kernel("numpy") == "scalar"
            assert kernel.resolve_kernel("auto") == "scalar"

    def test_scalar_fallback_still_computes(self, monkeypatch):
        monkeypatch.setattr(kernel, "_np", None)
        monkeypatch.setattr(kernel, "_np_checked", True)
        monkeypatch.setattr(kernel, "_warned_missing", True)
        solver = Minimize1Solver(kernel="numpy")
        assert solver.kernel == "scalar"
        assert solver.table((2, 2, 1), 2) == [1.0, 0.6, 0.2]


class TestEngineIntegration:
    def test_stats_surface_kernel(self):
        with DisclosureEngine(kernel="scalar") as engine:
            assert engine.kernel == "scalar"
            assert engine.stats.as_dict()["kernel"] == "scalar"

    def test_exact_engine_reports_scalar(self):
        with DisclosureEngine(exact=True, kernel="auto") as engine:
            assert engine.kernel == "scalar"

    @requires_numpy
    def test_numpy_engine_bit_identical_to_scalar(self):
        bs = [
            Bucketization.from_value_lists(rows)
            for rows in (
                [["a", "a", "b", "c"], ["x", "y"]],
                [["a", "a", "a", "b"]],
                [["p", "q", "r"], ["p", "p", "q", "q"]],
            )
        ]
        ks = [0, 1, 2, 3]
        with DisclosureEngine(kernel="scalar") as scalar_engine:
            with DisclosureEngine(kernel="numpy") as numpy_engine:
                assert numpy_engine.kernel == "numpy"
                for model in ("implication", "negation", "distribution"):
                    for b in bs:
                        assert numpy_engine.series(
                            b, ks, model=model
                        ) == scalar_engine.series(b, ks, model=model)

    @requires_numpy
    @pytest.mark.parametrize("backend", ["serial", "pool", "persistent"])
    def test_backends_honor_kernel_bit_identical(self, backend):
        bs = [
            Bucketization.from_value_lists([[c * (i % 3 + 1) for c in row]])
            for i, row in enumerate(
                [["a", "a", "b"], ["x", "y", "y", "z"], ["m", "n"]]
            )
        ]
        ks = [1, 2]
        with DisclosureEngine(kernel="numpy") as serial_engine:
            expected = [serial_engine.series(b, ks) for b in bs]
        with DisclosureEngine(
            kernel="numpy", backend=backend, workers=2
        ) as engine:
            assert engine.evaluate_many(bs, ks, workers=2) == expected
