"""k-anonymity and ℓ-diversity baselines."""

from __future__ import annotations

import math

import pytest

from repro.anonymity import (
    distinct_diversity,
    entropy_diversity,
    is_distinct_l_diverse,
    is_entropy_l_diverse,
    is_k_anonymous,
    is_recursive_cl_diverse,
    max_k_anonymity,
)
from repro.bucketization import Bucketization


@pytest.fixture
def buckets():
    return Bucketization.from_value_lists(
        [["a", "a", "b", "c"], ["a", "b", "c", "d", "e"]]
    )


class TestKAnonymity:
    def test_level(self, buckets):
        assert max_k_anonymity(buckets) == 4
        assert is_k_anonymous(buckets, 4)
        assert not is_k_anonymous(buckets, 5)

    def test_singletons(self):
        b = Bucketization.from_value_lists([["x"], ["y", "z"]])
        assert max_k_anonymity(b) == 1
        assert is_k_anonymous(b, 1)

    def test_validation(self, buckets):
        with pytest.raises(ValueError):
            is_k_anonymous(buckets, 0)

    def test_ignores_sensitive_values_entirely(self):
        # The paper's footnote: a homogeneous bucket is perfectly
        # k-anonymous yet fully disclosing.
        homogeneous = Bucketization.from_value_lists([["s"] * 10])
        assert is_k_anonymous(homogeneous, 10)
        from repro.core.disclosure import max_disclosure

        assert max_disclosure(homogeneous, 0) == 1.0


class TestLDiversity:
    def test_distinct(self, buckets):
        assert distinct_diversity(buckets) == 3
        assert is_distinct_l_diverse(buckets, 3)
        assert not is_distinct_l_diverse(buckets, 4)

    def test_entropy(self, buckets):
        # Worst bucket: {a:2, b:1, c:1}; H = ln4 - (1/2)ln2... compute:
        h = -(0.5 * math.log(0.5) + 2 * 0.25 * math.log(0.25))
        assert entropy_diversity(buckets) == pytest.approx(math.exp(h))
        assert is_entropy_l_diverse(buckets, math.exp(h) - 1e-9)
        assert not is_entropy_l_diverse(buckets, math.exp(h) + 0.01)

    def test_entropy_validation(self, buckets):
        with pytest.raises(ValueError):
            is_entropy_l_diverse(buckets, 0.5)

    def test_recursive_cl(self):
        b = Bucketization.from_value_lists([["a", "a", "a", "b", "b", "c"]])
        # r = (3, 2, 1). l=2: 3 < c*(2+1) iff c > 1.
        assert is_recursive_cl_diverse(b, 1.01, 2)
        assert not is_recursive_cl_diverse(b, 0.99, 2)
        # l=3: 3 < c*1 iff c > 3.
        assert is_recursive_cl_diverse(b, 3.5, 3)
        assert not is_recursive_cl_diverse(b, 2.5, 3)

    def test_recursive_cl_l1_caps_top_fraction(self):
        b = Bucketization.from_value_lists([["a", "a", "b", "c"]])
        # top fraction 1/2: need c > 1/2.
        assert is_recursive_cl_diverse(b, 0.6, 1)
        assert not is_recursive_cl_diverse(b, 0.5, 1)

    def test_recursive_cl_fails_when_l_exceeds_distinct(self):
        b = Bucketization.from_value_lists([["a", "b"]])
        assert not is_recursive_cl_diverse(b, 100.0, 3)

    def test_recursive_validation(self, buckets):
        with pytest.raises(ValueError):
            is_recursive_cl_diverse(buckets, -1, 2)
        with pytest.raises(ValueError):
            is_recursive_cl_diverse(buckets, 1.0, 0)

    def test_diversity_relates_to_negation_disclosure(self):
        # Distinct ℓ-diversity with uniform buckets bounds the (ℓ-1)-negation
        # disclosure away from 1 — the ℓ-diversity design goal.
        from repro.core.negation import max_disclosure_negations

        uniform = Bucketization.from_value_lists([["a", "b", "c", "d"]])
        assert is_distinct_l_diverse(uniform, 4)
        assert max_disclosure_negations(uniform, 2) < 1
        assert max_disclosure_negations(uniform, 3) == 1
