"""Data swapping, tuple suppression, and the Mondrian partitioner."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.bucketization import (
    Bucketization,
    mondrian_partition,
    suppress_to_safety,
    swap_sensitive_values,
)
from repro.core.disclosure import max_disclosure
from repro.core.safety import is_ck_safe
from repro.data.schema import Schema
from repro.data.table import Table


@pytest.fixture
def table():
    schema = Schema(("zip", "age"), "disease")
    diseases = ["flu", "flu", "cold", "cancer"]
    rows = [
        {"zip": f"z{i % 2}", "age": 20 + i, "disease": diseases[i % 4]}
        for i in range(12)
    ]
    return Table(rows, schema)


class TestSwapping:
    def test_preserves_global_marginals(self, table):
        result = swap_sensitive_values(table, group_size=4, seed=3)
        assert (
            result.table.sensitive_histogram() == table.sensitive_histogram()
        )

    def test_preserves_group_marginals(self, table):
        result = swap_sensitive_values(table, group_size=4, seed=3)
        sensitive = table.schema.sensitive
        for group in result.groups:
            before = Counter(table.record_of(p)[sensitive] for p in group)
            after = Counter(
                result.table.record_of(p)[sensitive] for p in group
            )
            assert before == after

    def test_leaves_quasi_identifiers_untouched(self, table):
        result = swap_sensitive_values(table, group_size=3, seed=1)
        for pid in table.person_ids:
            before = table.record_of(pid)
            after = result.table.record_of(pid)
            assert before["zip"] == after["zip"]
            assert before["age"] == after["age"]

    def test_group_key_mode(self, table):
        result = swap_sensitive_values(
            table, group_key=lambda r: r["zip"], seed=2
        )
        assert len(result.groups) == 2

    def test_bucketization_model(self, table):
        result = swap_sensitive_values(table, group_size=4, seed=0)
        b = result.to_bucketization()
        assert isinstance(b, Bucketization)
        assert b.total_size == len(table)
        # The model's disclosure machinery is fully applicable.
        assert 0 < max_disclosure(b, 1) <= 1

    def test_swapped_count_bounds(self, table):
        result = swap_sensitive_values(table, group_size=4, seed=5)
        assert 0 <= result.swapped_count <= len(table)

    def test_exactly_one_grouping_required(self, table):
        with pytest.raises(ValueError):
            swap_sensitive_values(table)
        with pytest.raises(ValueError):
            swap_sensitive_values(
                table, group_key=lambda r: 1, group_size=2
            )
        with pytest.raises(ValueError):
            swap_sensitive_values(table, group_size=0)

    def test_deterministic_by_seed(self, table):
        a = swap_sensitive_values(table, group_size=4, seed=7)
        b = swap_sensitive_values(table, group_size=4, seed=7)
        assert a.table == b.table


class TestSuppression:
    def test_already_safe_is_untouched(self):
        b = Bucketization.from_value_lists([["a", "b", "c", "d", "e", "f"]])
        result = suppress_to_safety(b, 0.9, 1)
        assert result.bucketization == b
        assert result.suppressed == ()

    def test_reaches_safety(self):
        b = Bucketization.from_value_lists(
            [["a"] * 6 + ["b", "c", "d"], ["a", "b", "c", "d", "e", "f"]]
        )
        result = suppress_to_safety(b, 0.7, 1)
        assert result.bucketization is not None
        assert is_ck_safe(result.bucketization, 0.7, 1)
        assert result.disclosure < 0.7
        assert len(result.suppressed) > 0

    def test_suppression_monotone_in_strictness(self):
        b = Bucketization.from_value_lists(
            [["a"] * 5 + ["b", "c", "d", "e", "f", "g", "h"]]
        )
        loose = suppress_to_safety(b, 0.9, 1)
        strict = suppress_to_safety(b, 0.5, 1)
        assert len(strict.suppressed) >= len(loose.suppressed)

    def test_impossible_threshold_suppresses_everything(self):
        b = Bucketization.from_value_lists([["a", "b"]])
        result = suppress_to_safety(b, 0.51, 1)  # one negation pins the value
        assert result.bucketization is None
        assert set(result.suppressed) == {0, 1}

    def test_validation(self):
        b = Bucketization.from_value_lists([["a", "b"]])
        with pytest.raises(ValueError):
            suppress_to_safety(b, 0, 1)
        with pytest.raises(ValueError):
            suppress_to_safety(b, 0.5, -1)

    def test_remaining_people_subset_of_original(self):
        b = Bucketization.from_value_lists(
            [["a", "a", "a", "b"], ["c", "c", "d"]]
        )
        result = suppress_to_safety(b, 0.6, 1)
        if result.bucketization is not None:
            remaining = set(result.bucketization.person_ids)
            assert remaining | set(result.suppressed) == set(b.person_ids)
            assert remaining.isdisjoint(result.suppressed)


class TestMondrian:
    def test_k_anonymity_predicate(self):
        schema = Schema(("a",), "d")
        t = Table(
            [{"a": i, "d": "xy"[i % 2]} for i in range(16)], schema
        )
        b = mondrian_partition(t, lambda bucket: bucket.size >= 4)
        assert all(bucket.size >= 4 for bucket in b)
        assert b.total_size == 16
        # Median splits should reach the finest admissible granularity.
        assert len(b) == 4

    def test_ck_safety_predicate(self, table):
        from repro.core.minimize1 import Minimize1Solver

        solver = Minimize1Solver()

        def acceptable(bucket):
            ratio = (
                solver.minimum(bucket.signature, 2)
                * bucket.size
                / bucket.top_frequency
            )
            return 1 / (1 + ratio) < 0.8

        b = mondrian_partition(table, acceptable)
        assert max_disclosure(b, 1) < 0.8

    def test_unsplittable_region_left_whole(self):
        schema = Schema(("a",), "d")
        t = Table([{"a": 1, "d": "x"} for _ in range(6)], schema)
        b = mondrian_partition(t, lambda bucket: bucket.size >= 2)
        assert len(b) == 1  # all QI values equal: no split possible

    def test_root_failure_raises(self, table):
        with pytest.raises(ValueError):
            mondrian_partition(table, lambda bucket: False)

    def test_unknown_attribute_rejected(self, table):
        with pytest.raises(ValueError):
            mondrian_partition(
                table, lambda b: True, attributes=("nonexistent",)
            )

    def test_partition_covers_table_exactly(self, table):
        b = mondrian_partition(table, lambda bucket: bucket.size >= 3)
        assert sorted(b.person_ids) == sorted(table.person_ids)

    def test_finer_than_single_bucket_when_possible(self, table):
        b = mondrian_partition(table, lambda bucket: bucket.size >= 2)
        assert len(b) > 1

    def test_mondrian_beats_lattice_utility_at_equal_safety(self):
        # The motivating comparison: adaptive splits retain more buckets
        # (lower discernibility) than one-size-fits-all generalization at
        # the same k-anonymity level.
        from repro.utility.metrics import discernibility

        schema = Schema(("a", "b"), "d")
        rows = [
            {"a": i % 8, "b": i // 8, "d": "uvwx"[i % 4]} for i in range(64)
        ]
        t = Table(rows, schema)
        mondrian = mondrian_partition(t, lambda bucket: bucket.size >= 8)
        single = Bucketization.from_table(t, key=lambda r: 0)
        assert discernibility(mondrian) < discernibility(single)
