"""Tests for the sequential republication engine and release ledger.

Covers the publish acceptance criteria:

- incremental republication is **bit-identical** to a full from-scratch
  re-check, in float and exact arithmetic, while evaluating strictly
  fewer multisets;
- the per-signature release check agrees with whole-table
  :meth:`~repro.engine.engine.DisclosureEngine.evaluate` (max over
  buckets decomposition);
- the cross-release composition check escalates the adversary only for
  *distinct* accepted contents and rejects a release whose base check
  passes;
- the ledger is persistent (reopen from the SQLite file), versions are
  immutable, and tenants are namespaced;
- the ``/publish``, ``/releases`` and ``/releases/{table}/{version}``
  endpoints round-trip verdicts through service and router with the
  usual 4xx error matrix.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.bucketization import Bucketization
from repro.engine import DisclosureEngine
from repro.publish import ReleaseLedger, RepublicationEngine
from repro.publish.ledger import (
    Release,
    multiset_from_wire,
    multiset_to_wire,
    values_from_wire,
    values_to_wire,
)
from repro.service import ServiceError
from repro.service.server import BackgroundService
from repro.service.router import BackgroundRouter

# A release history with shape-distinct buckets: every bucket of V1 has a
# different signature, V2 adds one more shape, V3 yet another. V1 and V2
# are (0.9, 1)-safe alone; V3 is safe alone but breached by composition
# (three distinct accepted contents -> effective_k = 3).
V1_LISTS = [
    ["a", "b", "c", "d"],
    ["a", "a", "b", "c", "d"],
    ["a", "b", "b", "c", "c", "d"],
    ["a", "b", "c", "d", "e"],
]
V2_LISTS = V1_LISTS + [["a", "a", "b", "b", "c", "d"]]
V3_LISTS = V2_LISTS + [["a", "b", "c", "d", "e", "f"]]


def _b(lists) -> Bucketization:
    return Bucketization.from_value_lists(lists)


def _decision(verdict: dict) -> dict:
    """The verdict minus its work counters (what bit-identity compares)."""
    return {k: v for k, v in verdict.items() if k != "work"}


@pytest.fixture()
def republisher():
    engine = DisclosureEngine()
    with ReleaseLedger() as ledger:
        yield RepublicationEngine(engine, ledger)


# ----------------------------------------------------------------------
# Ledger
# ----------------------------------------------------------------------
class TestLedger:
    def test_multiset_wire_round_trip(self):
        items = _b(V2_LISTS).signature_items()
        assert multiset_from_wire(multiset_to_wire(items)) == items

    def test_values_wire_round_trip_is_bit_identical(self):
        values = {(2, 1, 1): 0.1 + 0.2, (1, 1): Fraction(2, 3)}
        decoded = values_from_wire(values_to_wire(values))
        assert decoded == values
        assert isinstance(decoded[(2, 1, 1)], float)
        assert isinstance(decoded[(1, 1)], Fraction)

    def _release(self, version: int, accepted: bool = True) -> Release:
        return Release(
            table="t",
            version=version,
            tenant="",
            mode="float",
            model="implication",
            params={},
            k=1,
            c=0.9,
            accepted=accepted,
            multiset=(((1, 1), 2),),
            values={(1, 1): 0.5},
            verdict={"accepted": accepted},
        )

    def test_versions_are_immutable(self):
        with ReleaseLedger() as ledger:
            ledger.record(self._release(1))
            with pytest.raises(ValueError, match="immutable"):
                ledger.record(self._release(1))

    def test_latest_accepted_skips_rejections(self):
        with ReleaseLedger() as ledger:
            ledger.record(self._release(1, accepted=True))
            ledger.record(self._release(2, accepted=False))
            assert ledger.next_version("t") == 3
            latest = ledger.latest_accepted("t")
            assert latest is not None and latest.version == 1
            assert len(ledger.accepted_contents("t")) == 1
            assert ledger.counters() == {
                "releases": 2,
                "accepted": 1,
                "rejected": 1,
                "tables": 1,
            }

    def test_persistence_across_reopen(self, tmp_path):
        path = tmp_path / "ledger.sqlite"
        with ReleaseLedger(path) as ledger:
            ledger.record(self._release(1))
        with ReleaseLedger(path) as ledger:
            release = ledger.get("t", 1)
            assert release is not None
            assert release.values == {(1, 1): 0.5}
            assert release.multiset == (((1, 1), 2),)

    def test_tenants_are_namespaced(self):
        with ReleaseLedger() as ledger:
            ledger.record(self._release(1))
            tenant_release = Release(
                **{**self._release(1).__dict__, "tenant": "acme"}
            )
            ledger.record(tenant_release)  # same (table, version), new tenant
            assert ledger.get("t", 1, tenant="acme") is not None
            summaries = ledger.list_releases(tenant="acme")
            assert [s["tenant"] for s in summaries] == ["acme"]
            assert ledger.counters()["tables"] == 2


# ----------------------------------------------------------------------
# Republication engine
# ----------------------------------------------------------------------
class TestRepublicationEngine:
    def test_first_release_accepted(self, republisher):
        verdict = republisher.publish("t", _b(V1_LISTS), c=0.9, k=1)
        assert verdict["accepted"] and verdict["version"] == 1
        assert verdict["effective_k"] == 1
        assert not verdict["work"]["incremental"]
        assert verdict["work"]["evaluated_multisets"] == 4

    def test_release_value_matches_whole_table_evaluate(self):
        for model in ("implication", "negation"):
            for exact in (False, True):
                engine = DisclosureEngine(exact=exact)
                with ReleaseLedger() as ledger:
                    rep = RepublicationEngine(engine, ledger)
                    verdict = rep.publish(
                        "t", _b(V1_LISTS), c=0.9, k=2, model=model
                    )
                whole = engine.evaluate(_b(V1_LISTS), 2, model=model)
                from repro.codec import decode_value

                assert decode_value(verdict["value"]) == whole

    @pytest.mark.parametrize("exact", [False, True])
    def test_incremental_is_bit_identical_to_full(self, exact):
        c = Fraction(9, 10) if exact else 0.9
        verdicts = {}
        for full in (False, True):
            engine = DisclosureEngine(exact=exact)
            with ReleaseLedger() as ledger:
                rep = RepublicationEngine(engine, ledger)
                v1 = rep.publish("t", _b(V1_LISTS), c=c, k=1, full=full)
                v2 = rep.publish("t", _b(V2_LISTS), c=c, k=1, full=full)
                v3 = rep.publish("t", _b(V3_LISTS), c=c, k=1, full=full)
                verdicts[full] = (v1, v2, v3)
        for incremental, full in zip(verdicts[False], verdicts[True]):
            assert _decision(incremental) == _decision(full)
        # V2's added bucket shares an existing signature, so its release
        # stage is pure reuse; V3's added bucket is a genuinely new
        # signature and is the only release-stage evaluation.
        inc_v2, full_v2 = verdicts[False][1], verdicts[True][1]
        assert inc_v2["work"]["incremental"]
        assert inc_v2["work"]["reused_multisets"] == 4
        assert inc_v2["work"]["release_evaluated"] == 0
        inc_v3 = verdicts[False][2]
        assert inc_v3["work"]["release_evaluated"] == 1
        assert inc_v3["work"]["reused_multisets"] == 4
        assert (
            inc_v2["work"]["evaluated_multisets"]
            < full_v2["work"]["evaluated_multisets"]
        )

    def test_composition_rejects_what_release_check_accepts(self, republisher):
        assert republisher.publish("t", _b(V1_LISTS), c=0.9, k=1)["accepted"]
        assert republisher.publish("t", _b(V2_LISTS), c=0.9, k=1)["accepted"]
        verdict = republisher.publish("t", _b(V3_LISTS), c=0.9, k=1)
        assert not verdict["accepted"]
        assert verdict["effective_k"] == 3
        stages = {v["stage"] for v in verdict["violations"]}
        assert stages == {"composition"}

    def test_identical_republication_does_not_escalate(self, republisher):
        v1 = republisher.publish("t", _b(V1_LISTS), c=0.9, k=1)
        v2 = republisher.publish("t", _b(V1_LISTS), c=0.9, k=1)
        assert v2["accepted"] and v2["effective_k"] == 1
        assert v2["composition"]["multiplier"] == 1
        assert v2["work"]["reused_multisets"] == v1["distinct_multisets"]
        assert v2["work"]["evaluated_multisets"] == 0

    def test_rejected_release_is_not_a_baseline(self, republisher):
        rejected = republisher.publish("t", _b(V1_LISTS), c=0.2, k=1)
        assert not rejected["accepted"]
        verdict = republisher.publish("t", _b(V1_LISTS), c=0.9, k=1)
        assert verdict["version"] == 2  # rejections consume versions
        assert not verdict["work"]["incremental"]
        assert verdict["composition"]["prior_accepted_releases"] == 0

    def test_policy_change_falls_back_to_full(self, republisher):
        republisher.publish("t", _b(V1_LISTS), c=0.9, k=1)
        same_c = republisher.publish("t", _b(V1_LISTS), c=0.95, k=1)
        assert same_c["work"]["incremental"]  # c moves thresholds, not values
        new_k = republisher.publish("t", _b(V1_LISTS), c=0.9, k=2)
        assert not new_k["work"]["incremental"]
        new_model = republisher.publish(
            "t", _b(V1_LISTS), c=0.9, k=1, model="negation"
        )
        assert not new_model["work"]["incremental"]

    def test_witnesses_attach_to_violations(self, republisher):
        verdict = republisher.publish(
            "t", _b(V1_LISTS), c=0.5, k=2, with_witness=True
        )
        assert not verdict["accepted"]
        for violation in verdict["violations"]:
            assert violation["witness"]["disclosure"] >= 0.5

    def test_non_decomposable_model_is_rejected(self, republisher):
        with pytest.raises(ValueError, match="signature-decomposable"):
            republisher.publish(
                "t", _b(V1_LISTS), c=0.9, k=1, model="sampling"
            )

    def test_bad_inputs(self, republisher):
        with pytest.raises(ValueError, match="table name"):
            republisher.publish("bad:name", _b(V1_LISTS), c=0.9, k=1)
        with pytest.raises(ValueError, match="non-negative"):
            republisher.publish("t", _b(V1_LISTS), c=0.9, k=-1)


# ----------------------------------------------------------------------
# Service endpoints
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def service():
    with BackgroundService(backend="serial", batch_window=0.0) as bg:
        yield bg


class TestServiceEndpoints:
    def test_publish_sequence_and_fetch(self, service):
        client = service.client()
        v1 = client.publish("seq", V1_LISTS, c=0.9, k=1)
        v2 = client.publish("seq", V2_LISTS, c=0.9, k=1)
        v3 = client.publish("seq", V3_LISTS, c=0.9, k=1)
        assert v1["accepted"] and v2["accepted"] and not v3["accepted"]
        assert v2["work"]["incremental"]
        assert v3["effective_k"] == 3

        summaries = client.releases("seq")["releases"]
        assert [(s["version"], s["accepted"]) for s in summaries] == [
            (1, True),
            (2, True),
            (3, False),
        ]
        record = client.release("seq", 3)
        assert record["accepted"] is False
        assert record["verdict"]["effective_k"] == 3

    def test_exact_mode_round_trip(self, service):
        client = service.client()
        verdict = client.publish(
            "seq-exact", V1_LISTS, c=Fraction(9, 10), k=1, exact=True
        )
        assert verdict["accepted"]
        assert isinstance(verdict["value"], Fraction)
        assert isinstance(verdict["threshold"], Fraction)

    def test_stats_expose_ledger_and_publish_counters(self, service):
        client = service.client()
        client.publish("seq-stats", V1_LISTS, c=0.9, k=1)
        stats = client.stats()
        assert stats["ledger"]["releases"] >= 1
        assert stats["service"]["publishes_total"] >= 1
        assert stats["service"]["publish_multisets_evaluated"] >= 4

    def test_error_matrix(self, service):
        client = service.client()
        ok = {"table": "seq-err", "buckets": V1_LISTS, "c": 0.9, "k": 1}
        for mutation, status in [
            ({"table": "bad:name"}, 400),
            ({"table": 7}, 400),
            ({"c": None}, 400),
            ({"c": True}, 400),
            ({"k": -1}, 400),
            ({"model": "sampling"}, 400),
            ({"buckets": []}, 400),
        ]:
            payload = {**ok, **mutation}
            if payload["c"] is None:
                del payload["c"]
            with pytest.raises(ServiceError) as err:
                client.request("POST", "/publish", payload)
            assert err.value.status == status, mutation
        with pytest.raises(ServiceError) as err:
            client.request("GET", "/releases/seq-err/99", None)
        assert err.value.status == 404
        with pytest.raises(ServiceError) as err:
            client.request("GET", "/releases/seq-err/two", None)
        assert err.value.status == 400

    def test_tenant_namespacing(self):
        tenants = {
            "acme": {"model": "implication"},
            "zeta": {"model": "implication"},
        }
        with BackgroundService(
            backend="serial", batch_window=0.0, tenants=tenants
        ) as bg:
            client = bg.client()
            a = client.publish("t", V1_LISTS, c=0.9, k=1, tenant="acme")
            z = client.publish("t", V2_LISTS, c=0.9, k=1, tenant="zeta")
            assert a["version"] == 1 and z["version"] == 1
            assert client.release("t", 1, tenant="acme")["tenant"] == "acme"
            entries = client.releases(tenant="acme")["releases"]
            assert {e["tenant"] for e in entries} == {"acme"}

    def test_ledger_file_persists_across_restart(self, tmp_path):
        ledger = tmp_path / "ledger.sqlite"
        with BackgroundService(
            backend="serial", batch_window=0.0, ledger_file=ledger
        ) as bg:
            bg.client().publish("durable", V1_LISTS, c=0.9, k=1)
        with BackgroundService(
            backend="serial", batch_window=0.0, ledger_file=ledger
        ) as bg:
            verdict = bg.client().publish("durable", V2_LISTS, c=0.9, k=1)
            assert verdict["version"] == 2
            assert verdict["work"]["incremental"]


# ----------------------------------------------------------------------
# Router forwarding
# ----------------------------------------------------------------------
class TestRouterForwarding:
    @pytest.mark.parametrize("shard_mode", ["inproc"])
    def test_publish_affinity_and_fanout(self, shard_mode):
        with BackgroundRouter(
            shards=2,
            shard_mode=shard_mode,
            backend="serial",
            batch_window=0.0,
        ) as bg:
            client = bg.client()
            v1 = client.publish("demo", V1_LISTS, c=0.9, k=1)
            v2 = client.publish("demo", V2_LISTS, c=0.9, k=1)
            other = client.publish("other", V1_LISTS, c=0.9, k=1)
            assert v1["accepted"] and other["accepted"]
            # v2 found v1's ledger state: same shard handled both.
            assert v2["work"]["incremental"]

            merged = client.releases()
            assert [(e["table"], e["version"]) for e in merged["releases"]] == [
                ("demo", 1),
                ("demo", 2),
                ("other", 1),
            ]
            assert merged["ledger"]["releases"] == 3
            assert client.release("demo", 2)["accepted"]

            stats = client.stats()
            assert stats["totals"]["publishes_total"] == 3
            assert stats["ledger"]["releases"] == 3
            with pytest.raises(ServiceError) as err:
                client.release("demo", 42)
            assert err.value.status == 404
