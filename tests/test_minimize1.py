"""MINIMIZE1: Lemma 12's closed form and Algorithm 1's dynamic program."""

from __future__ import annotations

from fractions import Fraction
from itertools import permutations

import pytest

from repro.core.minimize1 import (
    Minimize1Solver,
    best_partition,
    iter_partitions,
    lemma12_probability,
    minimize1_reference,
)


def brute_force_negation_probability(signature, parts):
    """Pr(each person i avoids the top k_i values) by world enumeration.

    Independent check of Lemma 12's closed form: build a bucket with the
    given histogram, enumerate all distinct assignments, and count.
    """
    values = []
    for index, count in enumerate(signature):
        values.extend([index] * count)  # value j has frequency signature[j]
    worlds = set(permutations(values))
    good = 0
    for world in worlds:
        if all(world[i] >= parts[i] for i in range(len(parts))):
            # person i avoiding the top k_i values means their value index
            # is at least k_i (values are labeled by frequency rank)
            good += 1
    return Fraction(good, len(worlds))


class TestLemma12ClosedForm:
    @pytest.mark.parametrize(
        "signature, parts",
        [
            ((2, 2, 1), (1,)),
            ((2, 2, 1), (2,)),
            ((2, 2, 1), (1, 1)),
            ((2, 2, 1), (2, 1)),
            ((3, 2), (1, 1)),
            ((2, 1), (1, 1)),
            ((2, 2), (1, 1)),
            ((1, 1, 1, 1), (2, 1)),
            ((4, 1), (1, 1, 1)),
        ],
    )
    def test_matches_enumeration(self, signature, parts):
        closed = lemma12_probability(signature, parts, exact=True)
        brute = brute_force_negation_probability(signature, parts)
        assert closed == brute

    def test_single_atom_single_person(self):
        # Pr(person avoids the top value) = 1 - top/n
        assert lemma12_probability((2, 2, 1), (1,), exact=True) == Fraction(3, 5)

    def test_two_atoms_one_person(self):
        # Avoid both flu and lung cancer in {2,2,1}: only mumps remains.
        assert lemma12_probability((2, 2, 1), (2,), exact=True) == Fraction(1, 5)

    def test_clamps_to_zero(self):
        # Second person must avoid all values present: impossible.
        assert lemma12_probability((3, 2), (2, 2), exact=True) == 0

    def test_parts_beyond_distinct_values_saturate(self):
        # Requesting more values than exist adds zero-frequency atoms.
        a = lemma12_probability((2, 1), (2,), exact=True)
        b = lemma12_probability((2, 1), (5,), exact=True)
        assert a == b == 0  # avoiding every present value is impossible

    def test_empty_partition_is_one(self):
        assert lemma12_probability((3, 1), (), exact=True) == 1

    def test_float_mode_close_to_exact(self):
        exact = lemma12_probability((3, 2, 2, 1), (2, 1), exact=True)
        approx = lemma12_probability((3, 2, 2, 1), (2, 1))
        assert approx == pytest.approx(float(exact))

    def test_rejects_increasing_parts(self):
        with pytest.raises(ValueError):
            lemma12_probability((2, 2, 1), (1, 2))

    def test_rejects_nonpositive_parts(self):
        with pytest.raises(ValueError):
            lemma12_probability((2, 2, 1), (1, 0))

    def test_rejects_too_many_people(self):
        with pytest.raises(ValueError):
            lemma12_probability((1, 1), (1, 1, 1))

    def test_rejects_bad_signature(self):
        with pytest.raises(ValueError):
            lemma12_probability((1, 2), (1,))
        with pytest.raises(ValueError):
            lemma12_probability((), (1,))
        with pytest.raises(ValueError):
            lemma12_probability((2, 0), (1,))


class TestPartitions:
    def test_partitions_of_four(self):
        parts = sorted(iter_partitions(4, 4))
        assert parts == [(1, 1, 1, 1), (2, 1, 1), (2, 2), (3, 1), (4,)]

    def test_max_parts_restricts(self):
        assert sorted(iter_partitions(4, 2)) == [(2, 2), (3, 1), (4,)]

    def test_zero_gives_empty_partition(self):
        assert list(iter_partitions(0, 3)) == [()]

    def test_counts_match_partition_function(self):
        # p(10) = 42
        assert sum(1 for _ in iter_partitions(10, 10)) == 42

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            list(iter_partitions(-1, 2))


class TestMinimize1Solver:
    @pytest.mark.parametrize("signature", [(2, 2, 1), (3, 1), (1, 1, 1), (5,), (4, 3, 2, 1)])
    @pytest.mark.parametrize("m", [0, 1, 2, 3, 4, 5])
    def test_dp_matches_partition_enumeration(self, signature, m):
        solver = Minimize1Solver(exact=True)
        assert solver.minimum(signature, m) == minimize1_reference(
            signature, m, exact=True
        )

    def test_m_zero_is_one(self):
        assert Minimize1Solver(exact=True).minimum((3, 2), 0) == 1

    def test_monotone_nonincreasing_in_m(self):
        solver = Minimize1Solver(exact=True)
        table = solver.table((4, 3, 2, 1, 1), 8)
        assert all(a >= b for a, b in zip(table, table[1:]))

    def test_paper_bucket_values(self):
        # Figure 3 men's bucket {Flu:2, Lung:2, Mumps:1}.
        solver = Minimize1Solver(exact=True)
        assert solver.minimum((2, 2, 1), 1) == Fraction(3, 5)
        # Two atoms: min(1/5 single person, 3/10 two people) = 1/5.
        assert solver.minimum((2, 2, 1), 2) == Fraction(1, 5)
        # Three atoms cover every value for one person: probability 0.
        assert solver.minimum((2, 2, 1), 3) == 0

    def test_two_person_split_beats_one_person_sometimes(self):
        # Uniform bucket of distinct values: one person cannot absorb more
        # atoms than values, but splitting is strictly worse earlier too --
        # verify the DP tracks the reference on a case with a real tie-break.
        solver = Minimize1Solver(exact=True)
        sig = (1, 1, 1, 1, 1)
        for m in range(1, 6):
            assert solver.minimum(sig, m) == minimize1_reference(
                sig, m, exact=True
            )

    def test_memo_prevents_recomputation(self):
        solver = Minimize1Solver()
        solver.table((3, 2, 1), 6)
        states = solver.memo_size()
        # Identical queries add no states; the memo is the whole computation.
        solver.table((3, 2, 1), 6)
        assert solver.memo_size() == states
        # The state count is cubically bounded: (i, cap, rem) all <= m.
        assert states <= 7**3

    def test_known_signatures_counts_distinct(self):
        solver = Minimize1Solver()
        solver.minimum((2, 1), 1)
        solver.minimum((2, 1), 2)
        solver.minimum((3, 3), 1)
        assert solver.known_signatures() == 2

    def test_float_and_exact_agree(self):
        float_solver = Minimize1Solver()
        exact_solver = Minimize1Solver(exact=True)
        for m in range(6):
            approx = float_solver.minimum((4, 2, 2, 1), m)
            exact = exact_solver.minimum((4, 2, 2, 1), m)
            assert approx == pytest.approx(float(exact), abs=1e-12)

    def test_negative_m_rejected(self):
        with pytest.raises(ValueError):
            Minimize1Solver().minimum((2, 1), -1)

    def test_singleton_bucket(self):
        solver = Minimize1Solver(exact=True)
        assert solver.minimum((1,), 1) == 0  # negate the only value: impossible
        assert solver.minimum((1,), 3) == 0


class TestBestPartition:
    def test_returns_achieving_partition(self):
        value, parts = best_partition((2, 2, 1), 2, exact=True)
        assert value == lemma12_probability((2, 2, 1), parts, exact=True)
        assert sum(parts) == 2

    def test_zero_atoms(self):
        value, parts = best_partition((2, 2, 1), 0, exact=True)
        assert value == 1 and parts == ()
