"""The unified adversary-model engine.

Three layers of guarantees:

1. **Registry**: the five built-in models are registered; lookups and
   registration errors behave.
2. **Model/legacy agreement** (property-based): every registered model,
   evaluated through the engine, returns *exactly* what its legacy function
   returns — on random bucketizations and on the paper's Figure 3 fixture,
   in float and (where supported) exact mode.
3. **Engine semantics**: the shared cache (one dict across models), batch
   APIs, uniform witnesses, safety/breach wrappers, and the rewired
   consumers (SafetyChecker, suppression, lattice search).
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bucketization import Bucketization, suppress_to_safety
from repro.core.disclosure import max_disclosure, max_disclosure_series
from repro.core.negation import (
    NegationWitness,
    max_disclosure_negations,
    negation_witness,
)
from repro.core.probabilistic import max_jeffrey_disclosure_single
from repro.core.safety import SafetyChecker, is_ck_safe
from repro.core.sampling import sample_disclosure_risk
from repro.core.weighted import weighted_negation_disclosure
from repro.core.witness import WorstCaseWitness, worst_case_witness
from repro.engine import (
    AdversaryModel,
    DisclosureEngine,
    ProbabilisticAdversary,
    SamplingAdversary,
    WeightedAdversary,
    available_adversaries,
    get_adversary,
    register_adversary,
)
from repro.errors import SearchError, UnknownAdversaryError

# ---------------------------------------------------------------------------
# Strategies (mirroring tests/test_properties.py)
# ---------------------------------------------------------------------------
small_bucketizations = st.lists(
    st.lists(st.sampled_from("abcde"), min_size=1, max_size=6),
    min_size=1,
    max_size=4,
).map(Bucketization.from_value_lists)

tiny_bucketizations = (
    st.lists(
        st.lists(st.sampled_from("abc"), min_size=1, max_size=3),
        min_size=1,
        max_size=2,
    )
    .filter(lambda lists: sum(len(x) for x in lists) <= 5)
    .map(Bucketization.from_value_lists)
)

small_k = st.integers(min_value=0, max_value=3)


@pytest.fixture
def engine() -> DisclosureEngine:
    return DisclosureEngine()


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_builtins_registered(self):
        assert set(available_adversaries()) >= {
            "implication",
            "negation",
            "weighted",
            "probabilistic",
            "sampling",
        }

    def test_get_adversary_by_name_and_instance(self):
        model = get_adversary("negation")
        assert model.name == "negation"
        assert get_adversary(model) is model

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownAdversaryError, match="registered models"):
            get_adversary("telepathy")

    def test_params_forwarded(self):
        model = get_adversary("sampling", samples=10, seed=3)
        assert (model.samples, model.seed) == (10, 3)

    def test_duplicate_name_rejected(self):
        class Rogue(AdversaryModel):
            name = "negation"

            def disclosure(self, bucketization, k, *, context):
                return 0.0  # pragma: no cover

        with pytest.raises(ValueError, match="already registered"):
            register_adversary(Rogue)

    def test_registration_requires_name(self):
        class Nameless(AdversaryModel):
            def disclosure(self, bucketization, k, *, context):
                return 0.0  # pragma: no cover

        with pytest.raises(ValueError, match="name"):
            register_adversary(Nameless)


# ---------------------------------------------------------------------------
# Model/legacy agreement
# ---------------------------------------------------------------------------
class TestLegacyAgreement:
    @settings(max_examples=25, deadline=None)
    @given(b=small_bucketizations, k=small_k)
    def test_implication_matches_max_disclosure(self, b, k):
        assert DisclosureEngine().evaluate(b, k) == max_disclosure(b, k)
        assert DisclosureEngine(exact=True).evaluate(b, k) == max_disclosure(
            b, k, exact=True
        )

    @settings(max_examples=25, deadline=None)
    @given(b=small_bucketizations, k=small_k)
    def test_negation_matches_max_disclosure_negations(self, b, k):
        assert DisclosureEngine().evaluate(
            b, k, model="negation"
        ) == max_disclosure_negations(b, k)
        assert DisclosureEngine(exact=True).evaluate(
            b, k, model="negation"
        ) == max_disclosure_negations(b, k, exact=True)

    @settings(max_examples=25, deadline=None)
    @given(
        b=small_bucketizations,
        k=small_k,
        wa=st.floats(min_value=0.1, max_value=5),
        wb=st.floats(min_value=0.1, max_value=5),
    )
    def test_weighted_matches_weighted_negation(self, b, k, wa, wb):
        weights = {"a": wa, "b": wb}
        model = WeightedAdversary(weights)
        assert DisclosureEngine().evaluate(
            b, k, model=model
        ) == weighted_negation_disclosure(b, k, weights)

    @settings(max_examples=10, deadline=None)
    @given(
        b=tiny_bucketizations,
        q=st.sampled_from([Fraction(0), Fraction(1, 2), Fraction(9, 10), Fraction(1)]),
    )
    def test_probabilistic_matches_jeffrey(self, b, q):
        model = ProbabilisticAdversary(confidence=q)
        assert DisclosureEngine(exact=True).evaluate(
            b, 1, model=model
        ) == max_jeffrey_disclosure_single(b, q)

    @settings(max_examples=10, deadline=None)
    @given(b=small_bucketizations)
    def test_sampling_matches_sample_disclosure_risk(self, b):
        model = SamplingAdversary(samples=300, seed=11)
        expected = sample_disclosure_risk(b, None, samples=300, seed=11)
        assert DisclosureEngine().evaluate(b, 0, model=model) == expected.estimate

    def test_sampling_k_conditions_on_negation_witness(self, figure3):
        model = SamplingAdversary(samples=500, seed=5)
        witness = negation_witness(figure3, 2)
        negated = frozenset(witness.negated_values)
        expected = sample_disclosure_risk(
            figure3,
            lambda world: world[witness.person] not in negated,
            samples=500,
            seed=5,
        )
        value = DisclosureEngine().evaluate(figure3, 2, model=model)
        assert value == expected.estimate

    def test_figure3_byte_identical_both_modes(self, figure3):
        for exact in (False, True):
            engine = DisclosureEngine(exact=exact)
            for k in range(5):
                assert engine.evaluate(figure3, k) == max_disclosure(
                    figure3, k, exact=exact
                )
                assert engine.evaluate(
                    figure3, k, model="negation"
                ) == max_disclosure_negations(figure3, k, exact=exact)

    def test_weighted_uniform_default_equals_negation(self, figure3):
        engine = DisclosureEngine()
        for k in range(4):
            assert engine.evaluate(figure3, k, model="weighted") == pytest.approx(
                engine.evaluate(figure3, k, model="negation")
            )

    def test_exact_engine_returns_fractions(self, figure3):
        engine = DisclosureEngine(exact=True)
        assert isinstance(engine.evaluate(figure3, 2), Fraction)
        assert isinstance(engine.evaluate(figure3, 2, model="negation"), Fraction)
        tiny = Bucketization.from_value_lists([["a", "a", "b", "c"]])
        assert isinstance(
            engine.evaluate(tiny, 1, model="probabilistic"), Fraction
        )


# ---------------------------------------------------------------------------
# Engine semantics: cache, batching, uniform queries
# ---------------------------------------------------------------------------
class TestEngineCache:
    def test_hit_on_equal_signature_multiset(self, engine, figure3):
        clone = Bucketization.from_value_lists(
            [
                ["Flu", "Flu", "Breast Cancer", "Ovarian Cancer", "Heart Disease"],
                ["Flu", "Flu", "Lung Cancer", "Lung Cancer", "Mumps"],
            ]
        )
        engine.evaluate(figure3, 2)
        assert engine.stats.cache_hits == 0
        engine.evaluate(clone, 2)
        assert engine.stats.cache_hits == 1
        assert engine.stats.evaluations == 2

    def test_cache_shared_across_models_not_per_model(self, engine):
        clone = Bucketization.from_value_lists(
            [list("aabbc"), list("aabcd")]
        )
        original = Bucketization.from_value_lists(
            [list("aabcd"), list("aabbc")]
        )
        for model in ("implication", "negation", "weighted"):
            engine.evaluate(original, 1, model=model)
        assert engine.stats.cache_hits == 0
        for model in ("implication", "negation", "weighted"):
            engine.evaluate(clone, 1, model=model)
        # One hit per model from one shared dict: same key structure,
        # disjoint per-model entries, no per-model caches.
        assert engine.stats.cache_hits == 3
        assert engine.cache_size() == 3

    def test_models_never_share_values(self, engine, figure3):
        implication = engine.evaluate(figure3, 0)
        negation = engine.evaluate(figure3, 0, model="negation")
        assert implication == negation  # k=0 coincides...
        sampled = engine.evaluate(figure3, 0, model="sampling")
        assert sampled != implication  # ...but the estimator stays distinct

    def test_weighted_cache_distinguishes_value_content(self, engine):
        # Same signature multiset {(2,1)}, different values: non-uniform
        # weights make the answers differ, so they must not share an entry.
        weights = {"hiv": 10.0}
        model = WeightedAdversary(weights)
        cheap = Bucketization.from_value_lists([["flu", "flu", "cold"]])
        costly = Bucketization.from_value_lists([["hiv", "hiv", "cold"]])
        assert engine.evaluate(cheap, 1, model=model) == pytest.approx(1.0)
        assert engine.evaluate(costly, 1, model=model) == pytest.approx(10.0)
        assert engine.stats.cache_hits == 0
        # Uniform weights still coalesce by shape.
        uniform = WeightedAdversary()
        engine.evaluate(cheap, 1, model=uniform)
        engine.evaluate(costly, 1, model=uniform)
        assert engine.stats.cache_hits == 1

    def test_differently_parameterized_models_distinct(self, engine, figure3):
        a = engine.evaluate(figure3, 1, model=SamplingAdversary(samples=100, seed=0))
        b = engine.evaluate(figure3, 1, model=SamplingAdversary(samples=100, seed=1))
        assert engine.stats.cache_hits == 0
        assert a != b

    def test_series_fills_cache_for_single_evaluations(self, engine, figure3):
        series = engine.series(figure3, range(5))
        assert engine.stats.cache_hits == 0
        for k in range(5):
            assert engine.evaluate(figure3, k) == series[k]
        assert engine.stats.cache_hits == 5


class TestEngineBatch:
    def test_series_matches_legacy_series(self, engine, figure3):
        assert engine.series(figure3, range(6)) == max_disclosure_series(
            figure3, range(6)
        )

    def test_series_partial_cache_merge(self, engine, figure3):
        engine.evaluate(figure3, 2)
        series = engine.series(figure3, [0, 2, 4])
        assert engine.stats.cache_hits == 1
        assert series == max_disclosure_series(figure3, [0, 2, 4])

    def test_evaluate_many(self, engine, figure3):
        other = Bucketization.from_value_lists([list("aabbccdd")])
        results = engine.evaluate_many([figure3, other], [0, 1, 2])
        assert results[0] == max_disclosure_series(figure3, [0, 1, 2])
        assert results[1] == max_disclosure_series(other, [0, 1, 2])

    def test_compare_is_figure5(self, engine, figure3):
        comparison = engine.compare(figure3, range(4))
        assert set(comparison) == {"implication", "negation"}
        for k in range(4):
            assert comparison["implication"][k] == max_disclosure(figure3, k)
            assert comparison["negation"][k] == max_disclosure_negations(
                figure3, k
            )

    def test_series_rejects_negative_k(self, engine, figure3):
        with pytest.raises(ValueError):
            engine.series(figure3, [-1, 0])


class TestEngineQueries:
    def test_witness_uniform_disclosure_attribute(self, engine, figure3):
        implication = engine.witness(figure3, 2)
        negation = engine.witness(figure3, 2, model="negation")
        assert isinstance(implication, WorstCaseWitness)
        assert isinstance(negation, NegationWitness)
        assert implication.disclosure == worst_case_witness(figure3, 2).disclosure
        assert negation.disclosure == negation_witness(figure3, 2).disclosure

    def test_witness_unsupported_model_raises(self, engine, figure3):
        with pytest.raises(NotImplementedError, match="sampling"):
            engine.witness(figure3, 1, model="sampling")

    def test_weighted_thresholds_use_cost_scale(self, engine):
        # Cost-weighted disclosure is not a probability: thresholds above 1
        # must be legal for this model (and still illegal for probability
        # models).
        model = WeightedAdversary({"hiv": 10.0})
        b = Bucketization.from_value_lists([["hiv", "hiv", "cold", "flu"]])
        assert not engine.is_safe(b, 5.0, 1, model=model)
        assert engine.is_safe(b, 12.0, 1, model=model)
        with pytest.raises(ValueError, match=r"\(0, 1\]"):
            engine.is_safe(b, 5.0, 1, model="implication")
        checker = SafetyChecker(5.0, 1, model=model)
        assert not checker.is_safe(b)
        with pytest.raises(ValueError):
            SafetyChecker(5.0, 1)  # implication stays probability-bounded
        result = suppress_to_safety(b, 5.0, 1, model=model)
        assert result.bucketization is not None
        assert result.disclosure < 5.0

    def test_compare_disambiguates_parameterized_duplicates(self, engine, figure3):
        cheap = WeightedAdversary({"Flu": 2.0})
        costly = WeightedAdversary({"Flu": 5.0})
        comparison = engine.compare(figure3, [1], models=(cheap, costly))
        assert set(comparison) == {"weighted", "weighted#2"}
        assert comparison["weighted"][1] != comparison["weighted#2"][1]

    def test_is_safe_matches_is_ck_safe(self, engine, figure3):
        for c in (0.3, 0.5, 0.9, 1.0):
            for k in range(3):
                assert engine.is_safe(figure3, c, k) == is_ck_safe(figure3, c, k)

    def test_min_k_to_breach_matches_legacy(self, engine, figure3):
        from repro.core.disclosure import min_k_to_breach

        for level in (0.5, 0.9, 1.0):
            assert engine.min_k_to_breach(figure3, level) == min_k_to_breach(
                figure3, level
            )

    def test_min_k_to_breach_unreachable_raises(self):
        # The probabilistic attacker's power is flat in k; a level above its
        # best cannot be breached and must say so instead of looping.
        tiny = Bucketization.from_value_lists([["a", "a", "b", "c"]])
        engine = DisclosureEngine(exact=True)
        model = ProbabilisticAdversary(confidence=Fraction(1, 2))
        best = max(engine.evaluate(tiny, k, model=model) for k in range(3))
        assert best < 1
        with pytest.raises(SearchError, match="never reaches"):
            engine.min_k_to_breach(tiny, 1.0, model=model)

    def test_worst_bucket_default_and_override(self, engine, figure3):
        # Men bucket (index 0) has the skewed histogram (2,2,1) over 5 people;
        # both models should point somewhere attaining the worst case.
        index = engine.worst_bucket(figure3, 1)
        single = Bucketization([figure3.buckets[index]])
        assert max_disclosure(single, 1) == max_disclosure(figure3, 1)
        index = engine.worst_bucket(figure3, 1, model="negation")
        single = Bucketization([figure3.buckets[index]])
        assert max_disclosure_negations(single, 1) == max_disclosure_negations(
            figure3, 1
        )


# ---------------------------------------------------------------------------
# Monotonicity under merging (what adversary-parametric lattice search needs)
# ---------------------------------------------------------------------------
class TestMergeMonotonicity:
    """Theorem 14 is proved for the implication family; the searches prune on
    the same property for whichever model they are given, so the built-in
    alternates must honour it too."""

    @settings(max_examples=30, deadline=None)
    @given(
        b=small_bucketizations,
        k=st.integers(min_value=0, max_value=4),
        data=st.data(),
    )
    def test_negation_monotone_under_merge(self, b, k, data):
        if len(b) < 2:
            coarser = b
        else:
            i = data.draw(st.integers(min_value=0, max_value=len(b) - 1))
            j = data.draw(st.integers(min_value=0, max_value=len(b) - 1))
            if i == j:
                j = (j + 1) % len(b)
            coarser = b.merge_buckets([i, j])
        assert max_disclosure_negations(
            coarser, k, exact=True
        ) <= max_disclosure_negations(b, k, exact=True)

    @settings(max_examples=20, deadline=None)
    @given(
        b=small_bucketizations,
        k=st.integers(min_value=0, max_value=3),
        data=st.data(),
    )
    def test_weighted_monotone_under_merge(self, b, k, data):
        weights = {"a": 2.0, "b": 0.5}
        if len(b) < 2:
            coarser = b
        else:
            i = data.draw(st.integers(min_value=0, max_value=len(b) - 1))
            j = data.draw(st.integers(min_value=0, max_value=len(b) - 1))
            if i == j:
                j = (j + 1) % len(b)
            coarser = b.merge_buckets([i, j])
        assert (
            weighted_negation_disclosure(coarser, k, weights)
            <= weighted_negation_disclosure(b, k, weights) + 1e-12
        )


# ---------------------------------------------------------------------------
# Exact/float mode resolution (the max_disclosure_series satellite fix)
# ---------------------------------------------------------------------------
class TestExactModeResolution:
    def test_series_exact_flag_yields_fractions(self, figure3):
        series = max_disclosure_series(figure3, range(4), exact=True)
        assert all(isinstance(v, Fraction) for v in series.values())
        for k in range(4):
            assert series[k] == max_disclosure(figure3, k, exact=True)

    def test_series_conflicting_solver_raises(self, figure3):
        from repro.core.minimize1 import Minimize1Solver

        float_solver = Minimize1Solver(exact=False)
        with pytest.raises(ValueError, match="conflicts"):
            max_disclosure_series(figure3, range(3), exact=True, solver=float_solver)

    def test_single_conflicting_solver_raises(self, figure3):
        from repro.core.minimize1 import Minimize1Solver

        exact_solver = Minimize1Solver(exact=True)
        with pytest.raises(ValueError, match="conflicts"):
            max_disclosure(figure3, 1, exact=False, solver=exact_solver)

    def test_min_ratio_table_conflicting_solver_raises(self, figure3):
        from repro.core.minimize1 import Minimize1Solver
        from repro.core.minimize2 import min_ratio_table

        signatures = [b.signature for b in figure3.buckets]
        float_solver = Minimize1Solver(exact=False)
        with pytest.raises(ValueError, match="conflicts"):
            min_ratio_table(signatures, 2, solver=float_solver, exact=True)
        table = min_ratio_table(signatures, 2, exact=True)
        assert all(isinstance(v, Fraction) for v in table)

    def test_default_inherits_solver_mode(self, figure3):
        from repro.core.minimize1 import Minimize1Solver

        exact_solver = Minimize1Solver(exact=True)
        value = max_disclosure(figure3, 1, solver=exact_solver)
        assert isinstance(value, Fraction)
        series = max_disclosure_series(figure3, range(3), solver=exact_solver)
        assert all(isinstance(v, Fraction) for v in series.values())

    @settings(max_examples=15, deadline=None)
    @given(b=small_bucketizations, k=small_k)
    def test_series_and_single_agree_in_exact_mode(self, b, k):
        series = max_disclosure_series(b, [k], exact=True)
        assert series[k] == max_disclosure(b, k, exact=True)


# ---------------------------------------------------------------------------
# Rewired consumers
# ---------------------------------------------------------------------------
class TestRewiredConsumers:
    def test_safety_checker_negation_model(self, figure3):
        checker = SafetyChecker(0.7, 2, model="negation")
        assert checker.disclosure(figure3) == max_disclosure_negations(figure3, 2)
        assert checker.is_safe(figure3) == (
            max_disclosure_negations(figure3, 2) < 0.7
        )

    def test_safety_checkers_share_engine_cache(self, figure3):
        engine = DisclosureEngine()
        first = SafetyChecker(0.7, 2, engine=engine)
        second = SafetyChecker(0.9, 2, engine=engine)
        first.disclosure(figure3)
        second.disclosure(figure3)
        assert second.cache_hits == 1  # same model, same k, same shapes

    def test_suppression_negation_model_reaches_safety(self):
        b = Bucketization.from_value_lists(
            [["flu"] * 4 + ["cold"], list("abcde")]
        )
        result = suppress_to_safety(b, 0.75, 1, model="negation")
        assert result.bucketization is not None
        assert max_disclosure_negations(result.bucketization, 1) < 0.75

    def test_suppression_default_matches_implication_model(self):
        b = Bucketization.from_value_lists(
            [["flu"] * 4 + ["cold"], list("abcde")]
        )
        default = suppress_to_safety(b, 0.75, 1)
        explicit = suppress_to_safety(b, 0.75, 1, model="implication")
        assert default.suppressed == explicit.suppressed
        assert default.disclosure == explicit.disclosure

    def test_engine_lattice_search(self, small_adult, adult_lattice):
        from repro.generalization.search import (
            SearchStats,
            find_minimal_safe_nodes,
            node_safety_predicate,
        )

        engine = DisclosureEngine()
        minimal = engine.find_minimal_safe_nodes(
            small_adult, adult_lattice, 0.9, 1, model="negation"
        )
        checker = SafetyChecker(0.9, 1, model="negation")
        stats = SearchStats()
        expected = find_minimal_safe_nodes(
            adult_lattice,
            node_safety_predicate(small_adult, adult_lattice, checker),
            stats=stats,
        )
        assert sorted(minimal) == sorted(expected)
        for node in minimal:
            from repro.generalization.apply import bucketize_at

            bucketization = bucketize_at(small_adult, adult_lattice, node)
            assert max_disclosure_negations(bucketization, 1) < 0.9

    def test_engine_binary_search_chain(self, small_adult, adult_lattice):
        engine = DisclosureEngine()
        bottom = (0,) * len(adult_lattice.attributes)
        top = adult_lattice.top
        chain = [bottom, top]
        node = engine.binary_search_chain(
            small_adult, adult_lattice, chain, 0.99, 1, model="negation"
        )
        assert node in chain

    def test_fig5_engine_param_and_identical_rows(self, small_adult):
        from repro.experiments.fig5 import run_figure5

        engine = DisclosureEngine()
        first = run_figure5(small_adult, ks=range(4), engine=engine)
        second = run_figure5(small_adult, ks=range(4))
        assert first.rows == second.rows
        assert engine.stats.cache_hits > 0 or engine.stats.evaluations > 0

    def test_fig5_fixture_byte_identical_to_legacy_both_modes(self, small_adult):
        from repro.core.negation import max_disclosure_negations_series
        from repro.data.adult import ADULT_SCHEMA
        from repro.data.hierarchies import adult_hierarchies
        from repro.experiments.fig5 import FIG5_NODE
        from repro.generalization.apply import bucketize_at
        from repro.generalization.lattice import GeneralizationLattice

        lattice = GeneralizationLattice(
            adult_hierarchies(), ADULT_SCHEMA.quasi_identifiers
        )
        bucketization = bucketize_at(small_adult, lattice, FIG5_NODE)
        ks = range(6)
        for exact in (False, True):
            engine = DisclosureEngine(exact=exact)
            comparison = engine.compare(bucketization, ks)
            assert comparison["implication"] == max_disclosure_series(
                bucketization, ks, exact=exact
            )
            assert comparison["negation"] == max_disclosure_negations_series(
                bucketization, ks, exact=exact
            )

    def test_fig6_model_param(self, small_adult):
        from repro.experiments.fig6 import run_figure6

        result = run_figure6(small_adult, ks=(1, 3), model="negation")
        assert set(result.ks) == {1, 3}
        for record in result.nodes:
            assert 0 < record.disclosure[1] <= record.disclosure[3] <= 1
