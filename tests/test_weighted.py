"""Cost-based (weighted) disclosure: closed forms, bounds, and the oracle."""

from __future__ import annotations

import random

import pytest

from repro.bucketization import Bucketization
from repro.core.disclosure import max_disclosure
from repro.core.negation import max_disclosure_negations
from repro.core.weighted import (
    exact_weighted_disclosure,
    weighted_baseline_disclosure,
    weighted_implication_bounds,
    weighted_negation_disclosure,
)


@pytest.fixture
def clinic():
    # "hiv" is rare but catastrophic to disclose; "flu" is common and benign.
    return Bucketization.from_value_lists(
        [["flu", "flu", "flu", "hiv"], ["flu", "cold", "hiv"]]
    )


WEIGHTS = {"flu": 0.1, "cold": 0.2, "hiv": 1.0}


class TestBaseline:
    def test_weighted_k0(self, clinic):
        # Unweighted would pick flu at 3/4; weights make hiv (1.0 * 1/4) win
        # over flu (0.1 * 3/4).
        assert weighted_baseline_disclosure(clinic, WEIGHTS) == pytest.approx(
            1.0 * 1 / 3
        )

    def test_uniform_weights_recover_standard(self, clinic):
        uniform = {v: 1.0 for v in ("flu", "cold", "hiv")}
        assert weighted_baseline_disclosure(clinic, uniform) == pytest.approx(
            max_disclosure(clinic, 0)
        )

    def test_missing_values_default_to_one(self, clinic):
        # flu is down-weighted to 0.5 (3/4 -> 0.375); cold and hiv keep the
        # implicit weight 1, so flu's weighted 0.375 still wins over 1/3.
        assert weighted_baseline_disclosure(clinic, {"flu": 0.5}) == (
            pytest.approx(0.375)
        )

    def test_validation(self, clinic):
        with pytest.raises(ValueError):
            weighted_baseline_disclosure(clinic, {})
        with pytest.raises(ValueError):
            weighted_baseline_disclosure(clinic, {"flu": -1})


class TestNegations:
    def test_weighted_negation_closed_form(self, clinic):
        # Bucket {flu:3, hiv:1}, target hiv, eliminate flu: 1/(4-3) = 1.
        assert weighted_negation_disclosure(clinic, 1, WEIGHTS) == pytest.approx(
            1.0
        )

    def test_uniform_recovers_standard(self, clinic):
        uniform = {v: 1.0 for v in ("flu", "cold", "hiv")}
        for k in range(3):
            assert weighted_negation_disclosure(
                clinic, k, uniform
            ) == pytest.approx(float(max_disclosure_negations(clinic, k)))

    def test_monotone_in_k(self, clinic):
        values = [
            weighted_negation_disclosure(clinic, k, WEIGHTS) for k in range(4)
        ]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_negative_k_rejected(self, clinic):
        with pytest.raises(ValueError):
            weighted_negation_disclosure(clinic, -1, WEIGHTS)


class TestBounds:
    def test_bounds_bracket_oracle(self):
        rng = random.Random(5)
        for _ in range(6):
            lists = [
                [rng.choice("abc") for _ in range(rng.randint(1, 3))]
                for _ in range(rng.randint(1, 2))
            ]
            b = Bucketization.from_value_lists(lists)
            weights = {"a": 0.3, "b": 0.7, "c": 1.0}
            for k in (0, 1, 2):
                lower, upper = weighted_implication_bounds(b, k, weights)
                exact = exact_weighted_disclosure(b, k, weights)
                assert lower - 1e-9 <= exact <= upper + 1e-9, (lists, k)

    def test_bounds_collapse_for_uniform_weights(self, clinic):
        uniform = {v: 2.0 for v in ("flu", "cold", "hiv")}
        for k in (0, 1, 2):
            lower, upper = weighted_implication_bounds(clinic, k, uniform)
            expected = 2.0 * max_disclosure(clinic, k)
            # Lower uses negations only, so it may sit below; upper is exact.
            assert upper == pytest.approx(expected)
            assert lower <= upper + 1e-12

    def test_ordering(self, clinic):
        lower, upper = weighted_implication_bounds(clinic, 2, WEIGHTS)
        assert lower <= upper

    def test_rounding_scale_inversion_clamped(self, clinic, monkeypatch):
        """An epsilon-scale lower > upper (uniform weights computed along two
        float paths) is clamped to a degenerate bracket, not reordered."""
        import repro.core.weighted as weighted

        uniform = {v: 1.0 for v in ("flu", "cold", "hiv")}
        true_upper = weighted.max_disclosure(clinic, 2)
        monkeypatch.setattr(
            weighted, "max_disclosure", lambda b, k: true_upper * (1 - 1e-14)
        )
        real_lower = weighted_negation_disclosure(clinic, 2, uniform)
        monkeypatch.setattr(
            weighted,
            "weighted_negation_disclosure",
            lambda b, k, w: true_upper,
        )
        lower, upper = weighted_implication_bounds(clinic, 2, uniform)
        assert lower == upper  # clamped to the (correct) upper value
        assert upper == pytest.approx(true_upper)
        assert real_lower <= true_upper  # sanity: the real numbers do bracket

    def test_genuine_inversion_raises_instead_of_swapping(
        self, clinic, monkeypatch
    ):
        """A real lower > upper gap means one side is wrong; the old
        unconditional min/max swap silently produced a bracket that brackets
        nothing. It must raise."""
        import repro.core.weighted as weighted

        monkeypatch.setattr(weighted, "max_disclosure", lambda b, k: 0.1)
        with pytest.raises(ValueError, match="inverted"):
            weighted_implication_bounds(clinic, 2, WEIGHTS)


class TestExactOracle:
    def test_weights_change_the_argmax(self):
        b = Bucketization.from_value_lists([["flu", "flu", "hiv"]])
        # Unweighted k=0 risk targets flu (2/3); hiv weight flips it.
        assert exact_weighted_disclosure(b, 0, {"flu": 1, "hiv": 1}) == (
            pytest.approx(2 / 3)
        )
        assert exact_weighted_disclosure(b, 0, {"flu": 0.1, "hiv": 1}) == (
            pytest.approx(1 / 3)
        )

    def test_k1_can_exceed_weighted_k0(self):
        b = Bucketization.from_value_lists([["flu", "flu", "hiv"]])
        w = {"flu": 0.1, "hiv": 1.0}
        k0 = exact_weighted_disclosure(b, 0, w)
        k1 = exact_weighted_disclosure(b, 1, w)
        assert k1 >= k0
        # Ruling out flu for a person makes hiv certain: weighted 1.0.
        assert k1 == pytest.approx(1.0)
