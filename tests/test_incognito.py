"""Multi-phase Incognito vs. the single-phase sweep: same answers."""

from __future__ import annotations

import pytest

from repro.anonymity import is_k_anonymous
from repro.core.kernel import numpy_available
from repro.core.safety import SafetyChecker
from repro.generalization.apply import bucketize_at
from repro.generalization.incognito import (
    IncognitoStats,
    incognito_minimal_safe_nodes,
)
from repro.generalization.search import find_minimal_safe_nodes


@pytest.mark.parametrize("c, k", [(0.9, 1), (0.7, 2), (0.6, 3)])
def test_matches_single_phase_sweep(small_adult, adult_lattice, c, k):
    checker = SafetyChecker(c, k)
    multi = incognito_minimal_safe_nodes(
        small_adult, adult_lattice, checker.is_safe
    )
    single = find_minimal_safe_nodes(
        adult_lattice,
        lambda node: checker.is_safe(
            bucketize_at(small_adult, adult_lattice, node)
        ),
    )
    assert set(multi) == set(single)


def test_works_for_k_anonymity_too(small_adult, adult_lattice):
    # The phases only need merge-monotonicity, which k-anonymity has.
    k = 25
    multi = incognito_minimal_safe_nodes(
        small_adult, adult_lattice, lambda b: is_k_anonymous(b, k)
    )
    single = find_minimal_safe_nodes(
        adult_lattice,
        lambda node: is_k_anonymous(
            bucketize_at(small_adult, adult_lattice, node), k
        ),
    )
    assert set(multi) == set(single)


def test_subset_pruning_saves_final_phase_checks(small_adult, adult_lattice):
    # With a strict threshold, many fine nodes are unsafe; their projections
    # flag them before the final phase evaluates them.
    checker = SafetyChecker(0.55, 3)
    stats = IncognitoStats()
    incognito_minimal_safe_nodes(
        small_adult, adult_lattice, checker.is_safe, stats=stats
    )
    final = stats.phases[-1]
    assert final.attributes == adult_lattice.attributes
    assert final.nodes == 72
    assert final.pruned_unsafe_projection > 0
    assert final.evaluated < 72


def test_phase_structure(small_adult, adult_lattice):
    stats = IncognitoStats()
    checker = SafetyChecker(0.8, 1)
    incognito_minimal_safe_nodes(
        small_adult, adult_lattice, checker.is_safe, stats=stats
    )
    # 4 singleton phases + 6 pairs + 4 triples + 1 full = 15 phases.
    assert len(stats.phases) == 15
    sizes = [len(phase.attributes) for phase in stats.phases]
    assert sizes == sorted(sizes)
    assert stats.evaluated >= stats.final_phase_evaluated


@pytest.mark.skipif(
    not numpy_available(),
    reason="the synthetic Adult generator needs numpy (repro[fast])",
)
def test_randomized_thresholds_always_match(adult_lattice):
    # Sweep a grid of thresholds and attacker powers on a small table: the
    # two searches must agree everywhere, including the no-safe-node and
    # everything-safe extremes.
    from repro.data.adult import generate_adult

    table = generate_adult(400, seed=23)
    for c in (0.2, 0.45, 0.6, 0.8, 0.95):
        for k in (0, 1, 4):
            checker = SafetyChecker(c, k)
            multi = incognito_minimal_safe_nodes(
                table, adult_lattice, checker.is_safe
            )
            single = find_minimal_safe_nodes(
                adult_lattice,
                lambda node: checker.is_safe(
                    bucketize_at(table, adult_lattice, node)
                ),
            )
            assert set(multi) == set(single), (c, k)


def test_returned_nodes_are_safe_and_minimal(small_adult, adult_lattice):
    checker = SafetyChecker(0.7, 2)
    nodes = incognito_minimal_safe_nodes(
        small_adult, adult_lattice, checker.is_safe
    )
    for node in nodes:
        assert checker.is_safe(bucketize_at(small_adult, adult_lattice, node))
        for child in adult_lattice.children(node):
            assert not checker.is_safe(
                bucketize_at(small_adult, adult_lattice, child)
            )
