"""The public API surface: everything advertised resolves and works."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.data",
            "repro.bucketization",
            "repro.knowledge",
            "repro.core",
            "repro.generalization",
            "repro.anonymity",
            "repro.utility",
            "repro.experiments",
            "repro.cli",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_lazy_generalization_attributes(self):
        import repro.generalization as g

        assert callable(g.bucketize_at)
        assert callable(g.incognito_minimal_safe_nodes)
        with pytest.raises(AttributeError):
            g.not_a_real_name  # noqa: B018

    def test_every_public_callable_has_a_docstring(self):
        undocumented = [
            name
            for name in repro.__all__
            if callable(getattr(repro, name))
            and not (getattr(repro, name).__doc__ or "").strip()
        ]
        assert undocumented == []

    def test_errors_hierarchy(self):
        from repro import errors

        for name in errors.__all__:
            exc = getattr(errors, name)
            assert issubclass(exc, Exception)
            if name != "ReproError":
                assert issubclass(exc, errors.ReproError)

    def test_quickstart_snippet_from_readme(self):
        from repro import Bucketization, is_ck_safe, max_disclosure

        b = Bucketization.from_value_lists(
            [["Flu", "Flu", "Lung Cancer", "Lung Cancer", "Mumps"]]
        )
        assert round(max_disclosure(b, 1), 4) == 0.6667
        assert is_ck_safe(b, c=0.7, k=1)
