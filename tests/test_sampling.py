"""Monte Carlo estimation against the exact oracle."""

from __future__ import annotations

import pytest

from repro.bucketization import Bucketization
from repro.core.exact import exact_disclosure_risk, probability
from repro.core.sampling import (
    SampledProbability,
    sample_disclosure_risk,
    sample_probability,
)
from repro.errors import InconsistentWorldError
from repro.knowledge.atoms import Atom
from repro.knowledge.formulas import simple_implication


@pytest.fixture
def figure3_like():
    return Bucketization.from_value_lists(
        [
            ["Flu", "Flu", "Lung", "Lung", "Mumps"],
            ["Flu", "Flu", "Breast", "Ovarian", "Heart"],
        ]
    )


class TestSampleProbability:
    def test_unconditional_converges(self, figure3_like):
        result = sample_probability(
            figure3_like, Atom(3, "Flu"), samples=30_000, seed=1
        )
        exact = float(probability(figure3_like, Atom(3, "Flu")))
        assert result.estimate == pytest.approx(exact, abs=0.01)
        assert result.low <= exact <= result.high

    def test_conditional_converges(self, figure3_like):
        phi = simple_implication(6, "Flu", 0, "Flu")
        result = sample_probability(
            figure3_like, Atom(0, "Flu"), phi, samples=30_000, seed=2
        )
        exact = float(probability(figure3_like, Atom(0, "Flu"), phi))
        assert result.estimate == pytest.approx(exact, abs=0.015)
        assert result.low <= exact <= result.high

    def test_deterministic_per_seed(self, figure3_like):
        a = sample_probability(figure3_like, Atom(0, "Flu"), samples=500, seed=9)
        b = sample_probability(figure3_like, Atom(0, "Flu"), samples=500, seed=9)
        assert a == b

    def test_acceptance_rate_reported(self, figure3_like):
        phi = simple_implication(0, "Mumps", 1, "Flu")
        result = sample_probability(
            figure3_like, Atom(0, "Flu"), phi, samples=5_000, seed=3
        )
        assert 0 < result.acceptance_rate <= 1

    def test_impossible_condition_raises(self, figure3_like):
        with pytest.raises(InconsistentWorldError):
            sample_probability(
                figure3_like,
                Atom(0, "Flu"),
                Atom(0, "NotADisease"),
                samples=200,
                seed=0,
            )

    def test_sample_count_validated(self, figure3_like):
        with pytest.raises(ValueError):
            sample_probability(figure3_like, Atom(0, "Flu"), samples=0)

    def test_interval_is_wilson(self):
        # Degenerate certainty: interval stays inside [0, 1].
        b = Bucketization.from_value_lists([["x", "x"]])
        result = sample_probability(b, Atom(0, "x"), samples=100, seed=0)
        assert result.estimate == 1.0
        assert 0.9 < result.low <= 1.0 == result.high


class TestSampleDisclosureRisk:
    def test_matches_exact_risk(self, figure3_like):
        result = sample_disclosure_risk(figure3_like, samples=30_000, seed=4)
        exact = float(exact_disclosure_risk(figure3_like))
        assert result.estimate == pytest.approx(exact, abs=0.01)

    def test_with_knowledge(self, figure3_like):
        phi = simple_implication(0, "Lung", 0, "Flu")  # = NOT(p0=Lung)
        result = sample_disclosure_risk(
            figure3_like, phi, samples=30_000, seed=5
        )
        exact = float(exact_disclosure_risk(figure3_like, phi))
        assert result.estimate == pytest.approx(exact, abs=0.015)

    def test_scales_to_large_instances(self):
        # 40 buckets x 25 tuples: ~1e28 worlds — far beyond the oracle.
        lists = [[f"v{(i + j) % 9}" for j in range(25)] for i in range(40)]
        big = Bucketization.from_value_lists(lists)
        result = sample_disclosure_risk(big, samples=2_000, seed=6)
        assert isinstance(result, SampledProbability)
        assert 0 < result.estimate <= 1
