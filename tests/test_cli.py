"""The repro-wcbk command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.core.kernel import numpy_available
from repro.data.adult import ADULT_SCHEMA
from repro.data.loader import load_csv


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_node_parsing(self):
        args = build_parser().parse_args(["fig5", "--node", "1,2,0,1"])
        assert args.node == (1, 2, 0, 1)

    def test_bad_node_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--node", "a,b"])


# Every command here runs against the synthetic Adult table (even the
# csv-input test generates its fixture file first).
@pytest.mark.skipif(
    not numpy_available(),
    reason="the synthetic Adult generator needs numpy (repro[fast])",
)
class TestCommands:
    def test_generate_writes_csv(self, tmp_path, capsys):
        out = tmp_path / "synthetic.csv"
        code = main(["generate", "--out", str(out), "--rows", "200"])
        assert code == 0
        table = load_csv(out, ADULT_SCHEMA)
        assert len(table) == 200
        assert "wrote 200 rows" in capsys.readouterr().out

    def test_fig5_prints_13_rows(self, capsys):
        code = main(["fig5", "--rows", "800"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert " 12  " in out

    def test_fig6_runs(self, capsys):
        code = main(["fig6", "--rows", "400"])
        assert code == 0
        assert "Figure 6" in capsys.readouterr().out

    def test_fig5_csv_export(self, tmp_path, capsys):
        out = tmp_path / "fig5.csv"
        code = main(["fig5", "--rows", "400", "--out", str(out)])
        assert code == 0
        lines = out.read_text().strip().splitlines()
        assert lines[0] == "k,implication,negation"
        assert len(lines) == 1 + 13

    def test_fig6_csv_export(self, tmp_path, capsys):
        out = tmp_path / "fig6.csv"
        code = main(["fig6", "--rows", "400", "--out", str(out)])
        assert code == 0
        lines = out.read_text().strip().splitlines()
        assert lines[0] == "k,min_entropy,least_max_disclosure"
        assert len(lines) > 6  # at least one envelope point per k

    def test_disclosure_command(self, capsys):
        code = main(
            ["disclosure", "--rows", "500", "--node", "3,2,1,1", "--k", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "implications" in out and "negations" in out

    def test_search_command(self, capsys):
        code = main(["search", "--rows", "500", "--c", "0.9", "--k", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "minimal safe" in out
        assert "best by precision" in out

    def test_search_with_impossible_threshold(self, capsys):
        # c close to 0 is unsatisfiable: even full suppression disclosures
        # more than a sliver.
        code = main(["search", "--rows", "300", "--c", "0.01", "--k", "1"])
        assert code == 1

    def test_witness_command(self, capsys):
        code = main(["witness", "--rows", "400", "--k", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "->" in out and "disclosure" in out

    def test_csv_input_flows_through(self, tmp_path, capsys):
        out = tmp_path / "data.csv"
        assert main(["generate", "--out", str(out), "--rows", "300"]) == 0
        code = main(["disclosure", "--csv", str(out), "--k", "1"])
        assert code == 0

    def test_search_incognito_matches_sweep(self, capsys):
        assert main(["search", "--rows", "500", "--c", "0.8", "--k", "1"]) == 0
        sweep_out = capsys.readouterr().out
        assert (
            main(
                ["search", "--rows", "500", "--c", "0.8", "--k", "1",
                 "--incognito"]
            )
            == 0
        )
        incognito_out = capsys.readouterr().out
        sweep_nodes = {ln for ln in sweep_out.splitlines() if "node (" in ln}
        incognito_nodes = {
            ln for ln in incognito_out.splitlines() if "node (" in ln
        }
        assert sweep_nodes == incognito_nodes

    def test_breach_command(self, capsys):
        code = main(["breach", "--rows", "500", "--level", "0.9"])
        assert code == 0
        assert "suffice to reach" in capsys.readouterr().out

    def test_estimate_command_unconditional(self, capsys):
        code = main(
            ["estimate", "--rows", "300", "--atom", "t[5] = Sales",
             "--samples", "500"]
        )
        assert code == 0
        assert "95% CI" in capsys.readouterr().out

    def test_disclosure_adversary_negation(self, capsys):
        code = main(
            ["disclosure", "--rows", "500", "--k", "2",
             "--adversary", "negation"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "negation adversary, k=2" in out
        assert "implications" not in out  # single-model output

    def test_disclosure_adversary_weighted_runs(self, capsys):
        code = main(
            ["disclosure", "--rows", "400", "--k", "1",
             "--adversary", "weighted"]
        )
        assert code == 0
        assert "weighted adversary" in capsys.readouterr().out

    def test_disclosure_rejects_unknown_adversary(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["disclosure", "--adversary", "telepathy"]
            )

    def test_backend_flag_parsed_with_pool_default(self):
        args = build_parser().parse_args(["fig6", "--workers", "2"])
        assert args.backend == "pool"
        args = build_parser().parse_args(
            ["search", "--backend", "persistent", "--workers", "2"]
        )
        assert args.backend == "persistent"

    def test_backend_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig6", "--backend", "threads"])

    @pytest.mark.parametrize("backend", ["serial", "pool", "persistent"])
    def test_disclosure_runs_on_every_backend(self, backend, capsys):
        code = main(
            ["disclosure", "--rows", "300", "--k", "2",
             "--backend", backend, "--workers", "2", "--cache-stats"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "max disclosure" in out
        assert "parallel hits" in out  # the honest-stats counter is printed

    def test_fig6_persistent_backend_matches_pool(self, capsys):
        code = main(["fig6", "--rows", "200", "--workers", "2",
                     "--backend", "persistent"])
        assert code == 0
        persistent_out = capsys.readouterr().out
        code = main(["fig6", "--rows", "200", "--workers", "2",
                     "--backend", "pool"])
        assert code == 0
        assert capsys.readouterr().out == persistent_out

    def test_search_adversary_negation(self, capsys):
        code = main(
            ["search", "--rows", "500", "--c", "0.9", "--k", "1",
             "--adversary", "negation"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[negation]" in out
        assert "minimal safe" in out and "best by precision" in out

    def test_breach_adversary_negation(self, capsys):
        code = main(
            ["breach", "--rows", "500", "--level", "0.9",
             "--adversary", "negation"]
        )
        assert code == 0
        assert "negated atom(s) suffice to reach" in capsys.readouterr().out

    def test_witness_adversary_negation(self, capsys):
        code = main(
            ["witness", "--rows", "400", "--k", "2",
             "--adversary", "negation"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "NOT t[" in out and "disclosure" in out

    def test_witness_unsupported_adversary_fails_cleanly(self, capsys):
        code = main(
            ["witness", "--rows", "300", "--k", "1",
             "--adversary", "sampling"]
        )
        assert code == 2
        assert "sampling" in capsys.readouterr().err

    def test_estimate_command_with_formula(self, capsys):
        code = main(
            [
                "estimate",
                "--rows", "300",
                "--atom", "t[5] = Sales",
                "--formula", "t[2] = Sales -> t[5] = Sales",
                "--samples", "500",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "worlds accepted" in out
