"""Generalization hierarchies and the full-domain lattice."""

from __future__ import annotations

import pytest

from repro.data.adult import MARITAL_STATUSES, RACES, SEXES
from repro.data.hierarchies import adult_hierarchies
from repro.errors import HierarchyError, LatticeError
from repro.generalization.hierarchy import SUPPRESSED, Hierarchy
from repro.generalization.lattice import GeneralizationLattice


class TestHierarchy:
    def test_interval_levels(self):
        h = Hierarchy.from_intervals("age", [5, 10, 20, 40], origin=0)
        assert h.num_levels == 6
        assert h.generalize(27, 0) == 27
        assert h.generalize(27, 1) == "[25-29]"
        assert h.generalize(27, 2) == "[20-29]"
        assert h.generalize(27, 3) == "[20-39]"
        assert h.generalize(27, 4) == "[0-39]"
        assert h.generalize(27, 5) == SUPPRESSED

    def test_interval_widths_must_nest(self):
        with pytest.raises(HierarchyError):
            Hierarchy.from_intervals("x", [4, 6])  # 6 not a multiple of 4
        with pytest.raises(HierarchyError):
            Hierarchy.from_intervals("x", [10, 5])  # not non-decreasing
        with pytest.raises(HierarchyError):
            Hierarchy.from_intervals("x", [0])

    def test_grouping(self):
        h = Hierarchy.from_grouping(
            "m", [{"a": "G1", "b": "G1", "c": "G2"}]
        )
        assert h.generalize("a", 1) == "G1"
        assert h.generalize("c", 1) == "G2"
        assert h.generalize("a", 2) == SUPPRESSED
        with pytest.raises(HierarchyError):
            h.generalize("unknown", 1)

    def test_identity_or_suppress(self):
        h = Hierarchy.identity_or_suppress("sex")
        assert h.num_levels == 2
        assert h.generalize("M", 0) == "M"
        assert h.generalize("M", 1) == SUPPRESSED

    def test_level_out_of_range(self):
        h = Hierarchy.identity_or_suppress("sex")
        with pytest.raises(HierarchyError):
            h.generalize("M", 2)
        with pytest.raises(HierarchyError):
            h.generalize("M", -1)

    def test_consistency_validation_passes_for_adult(self):
        hierarchies = adult_hierarchies()
        hierarchies["age"].validate_consistency(range(17, 91))
        hierarchies["marital_status"].validate_consistency(MARITAL_STATUSES)
        hierarchies["race"].validate_consistency(RACES)
        hierarchies["sex"].validate_consistency(SEXES)

    def test_consistency_validation_catches_bad_levels(self):
        bad = Hierarchy(
            "x",
            [
                lambda v: v,
                lambda v: v % 2,  # merges 0,2 and 1,3
                lambda v: v % 3,  # splits them differently: inconsistent
            ],
        )
        with pytest.raises(HierarchyError):
            bad.validate_consistency(range(4))

    def test_needs_levels(self):
        with pytest.raises(HierarchyError):
            Hierarchy("x", [])


class TestAdultLattice:
    def test_paper_dimensions(self, adult_lattice):
        assert adult_lattice.size == 72  # 6 x 3 x 2 x 2
        assert adult_lattice.bottom == (0, 0, 0, 0)
        assert adult_lattice.top == (5, 2, 1, 1)
        assert adult_lattice.max_height == 9

    def test_parents_children(self, adult_lattice):
        assert set(adult_lattice.parents((0, 0, 0, 0))) == {
            (1, 0, 0, 0),
            (0, 1, 0, 0),
            (0, 0, 1, 0),
            (0, 0, 0, 1),
        }
        assert adult_lattice.children((0, 0, 0, 0)) == []
        assert adult_lattice.parents((5, 2, 1, 1)) == []
        assert len(adult_lattice.children((5, 2, 1, 1))) == 4

    def test_order(self, adult_lattice):
        assert adult_lattice.is_ancestor_or_equal((1, 0, 0, 0), (3, 2, 1, 1))
        assert not adult_lattice.is_ancestor_or_equal((1, 2, 0, 0), (3, 0, 1, 1))

    def test_nodes_by_height_partitions_all(self, adult_lattice):
        seen = [node for level in adult_lattice.nodes_by_height() for node in level]
        assert len(seen) == 72
        assert len(set(seen)) == 72
        heights = [sum(node) for node in seen]
        assert heights == sorted(heights)

    def test_minimal_elements(self, adult_lattice):
        nodes = [(3, 2, 1, 1), (3, 1, 1, 1), (4, 0, 1, 1), (5, 2, 1, 1)]
        assert set(adult_lattice.minimal_elements(nodes)) == {
            (3, 1, 1, 1),
            (4, 0, 1, 1),
        }

    def test_default_chain_is_maximal(self, adult_lattice):
        chain = adult_lattice.default_chain()
        assert chain[0] == adult_lattice.bottom
        assert chain[-1] == adult_lattice.top
        assert len(chain) == adult_lattice.max_height + 1
        for lower, upper in zip(chain, chain[1:]):
            assert sum(upper) == sum(lower) + 1
            assert adult_lattice.is_ancestor_or_equal(lower, upper)

    def test_validate(self, adult_lattice):
        with pytest.raises(LatticeError):
            adult_lattice.validate((0, 0, 0))
        with pytest.raises(LatticeError):
            adult_lattice.validate((6, 0, 0, 0))
        with pytest.raises(LatticeError):
            adult_lattice.validate((0, 0, 0, -1))

    def test_generalize_value(self, adult_lattice):
        assert adult_lattice.generalize_value("age", 27, (3, 0, 0, 0)) == "[20-39]"
        assert (
            adult_lattice.generalize_value("marital_status", "Divorced", (0, 1, 0, 0))
            == "Was-married"
        )

    def test_missing_hierarchy_rejected(self):
        with pytest.raises(LatticeError):
            GeneralizationLattice({}, ("age",))
        with pytest.raises(LatticeError):
            GeneralizationLattice(adult_hierarchies(), ())
