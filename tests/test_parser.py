"""The formula text parser."""

from __future__ import annotations

import pytest

from repro.knowledge.atoms import Atom
from repro.knowledge.parser import (
    ParseError,
    parse_atom,
    parse_conjunction,
    parse_implication,
)


class TestParseAtom:
    def test_basic(self):
        assert parse_atom("t[Ed] = Flu") == Atom("Ed", "Flu")

    def test_whitespace_insensitive(self):
        assert parse_atom("  t[ Ed ]=Flu  ") == Atom("Ed", "Flu")

    def test_values_keep_internal_spaces(self):
        assert parse_atom("t[Ed] = Lung Cancer") == Atom("Ed", "Lung Cancer")

    def test_rejects_non_atoms(self):
        for bad in ("Ed = Flu", "t[Ed]", "t[] = Flu", ""):
            with pytest.raises(ParseError):
                parse_atom(bad)


class TestParseImplication:
    def test_simple(self):
        imp = parse_implication("t[H] = flu -> t[C] = flu")
        assert imp.is_simple
        assert imp.antecedents == (Atom("H", "flu"),)
        assert imp.consequents == (Atom("C", "flu"),)

    def test_conjunctive_antecedent_disjunctive_consequent(self):
        imp = parse_implication(
            "t[A] = x & t[B] = y -> t[C] = z & t[C] = w"
        )
        assert len(imp.antecedents) == 2
        assert len(imp.consequents) == 2

    def test_missing_arrow(self):
        with pytest.raises(ParseError):
            parse_implication("t[A] = x")

    def test_double_arrow(self):
        with pytest.raises(ParseError):
            parse_implication("t[A] = x -> t[B] = y -> t[C] = z")

    def test_empty_side(self):
        with pytest.raises(ParseError):
            parse_implication("t[A] = x & -> t[B] = y")


class TestParseConjunction:
    def test_two_conjuncts(self):
        phi = parse_conjunction(
            "t[A] = x -> t[B] = y ; t[B] = y -> t[C] = z"
        )
        assert phi.k == 2

    def test_empty_is_true(self):
        phi = parse_conjunction("   ")
        assert phi.k == 0
        assert phi.holds_in({"anything": "at all"})

    def test_round_trip_semantics(self):
        # A parsed formula behaves like the hand-built one on worlds.
        phi = parse_conjunction("t[H] = flu -> t[C] = flu")
        assert phi.holds_in({"H": "flu", "C": "flu"})
        assert not phi.holds_in({"H": "flu", "C": "cold"})

    def test_parsed_formula_conditions_exact_engine(self, figure3):
        from fractions import Fraction

        from repro.core.exact import probability

        phi = parse_conjunction("t[Hannah] = Flu -> t[Charlie] = Flu")
        assert probability(figure3, Atom("Charlie", "Flu"), phi) == Fraction(
            10, 19
        )
