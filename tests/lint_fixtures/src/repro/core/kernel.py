"""CLEAN by exemption: core/kernel.py is the float path by design."""


def vector_disclosure(counts, exact=False):
    return [1.0 / (1.0 + c) for c in counts]
