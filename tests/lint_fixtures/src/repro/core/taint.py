"""REP001 fixtures: float taint on the exact path, plus clean guards."""

import math as m
from fractions import Fraction
from math import factorial, sqrt as root


def disclosure(counts, exact=False):
    # BAD: float literal on a path an exact=True caller can reach.
    total = 0.5 * sum(counts)
    return _helper(total)


def _helper(x):
    # BAD (reachable from `disclosure`): aliased math call and float().
    return m.sqrt(float(x))


def aliased_from_import(x, exact=False):
    # BAD: `from math import sqrt as root` must not hide the call.
    return root(x)


def exact_combinatorics(n, k, exact=False):
    # CLEAN: integer-exact math functions are allowed everywhere.
    return factorial(n) // factorial(k)


def guarded_ternary(ratio, exact=False):
    # CLEAN: the codebase's guard idiom — float confined to the non-exact arm.
    return Fraction(1, 1 + ratio) if exact else 1.0 / (1.0 + ratio)


def guarded_branches(ratio, exact=False):
    # CLEAN: if/else guard.
    if exact:
        return Fraction(1, 1 + ratio)
    else:
        return 1.0 / (1.0 + ratio)


def guarded_early_return(ratio, exact=False):
    # CLEAN: after the exact arm returns, only float mode remains.
    if exact:
        return Fraction(1, 1 + ratio)
    return 1.0 / (1.0 + ratio)


def unreachable_float_helper(x):
    # CLEAN: nothing on the exact path calls this.
    return 0.25 * x


def suppressed_sentinel(exact=False):
    # CLEAN: justified suppression.
    return 1e9  # repro: noqa[REP001] saturation sentinel is mode-neutral
