"""REP004 fixtures: a counter that never reaches /stats, a ghost increment."""


class LeakyStats:
    def __init__(self):
        self.requests_total = 0
        self.dropped = 0  # BAD: initialized but invisible in as_dict

    def as_dict(self):
        return {"requests_total": self.requests_total}


class CleanStats:
    def __init__(self):
        self.hits = 0
        self.started_at = None  # not a counter: no exposure required

    def as_dict(self):
        return {"hits": self.hits}


class _Server:
    def __init__(self):
        self._stats = LeakyStats()

    def handle(self):
        self._stats.requests_total += 1  # CLEAN: declared counter
        self._stats.ghost += 1  # BAD: no *Stats class declares `ghost`
