"""REP003 fixtures: a leaky cache key and a complete one."""


class AdversaryModel:
    def params_key(self):
        return ()

    def cache_key(self, bucketization):
        return (self.params_key(),)


def register_adversary(cls):
    return cls


@register_adversary
class LeakyAdversary(AdversaryModel):
    """BAD: `tilt` changes results but never reaches the key."""

    def __init__(self, tilt=None, scale=1):
        self.tilt = tilt
        self._scale = scale

    def params_key(self):
        return (self._scale,)  # `tilt` missing: stale-cache collision

    def evaluate(self, bucketization):
        return self.tilt


@register_adversary
class KeyedAdversary(AdversaryModel):
    """CLEAN: every constructor knob reaches the key."""

    def __init__(self, samples=100, seed=0):
        self.samples = samples
        self._seed = seed

    def params_key(self):
        return (self.samples, self._seed)


class InheritedKeyAdversary(KeyedAdversary):
    """CLEAN: relies on the parent's complete key for the same params."""

    def evaluate(self, bucketization):
        return self.samples
