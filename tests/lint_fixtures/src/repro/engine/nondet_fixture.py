"""REP005 fixtures: nondeterminism hazards and their deterministic twins."""

import json
import random
import random as rnd


def bad_randomness(items):
    # BAD: global PRNG — differs run to run.
    pick = random.choice(items)
    noise = rnd.random()
    return pick, noise


def bad_set_order(values):
    # BAD: hash-order feeds an ordered result.
    out = []
    for v in set(values):
        out.append(v)
    listed = [v for v in {1, 2, 3}]
    return out, listed


def bad_json_identity(payload):
    # BAD: serialized form depends on dict insertion order.
    return json.dumps(payload)


def good_determinism(values, payload, seed=0):
    # CLEAN: seeded instance, sorted iteration, sorted keys.
    rng = random.Random(seed)
    ordered = [v for v in sorted(set(values))]
    blob = json.dumps(payload, sort_keys=True)
    membership = 2 in set(values)  # CLEAN: membership, not iteration
    return rng.random(), ordered, blob, membership
