"""REP002 fixtures: blocking calls in coroutines, plus sanctioned escapes."""

import asyncio
import socket
import subprocess
import time
from http.client import HTTPConnection


async def bad_sleep(self):
    # BAD: stalls every in-flight request on this shard.
    time.sleep(0.1)


async def bad_io():
    # BAD: sync file, socket, subprocess and http.client use in a coroutine.
    with open("/tmp/payload") as fh:
        data = fh.read()
    conn = socket.create_connection(("localhost", 80))
    subprocess.run(["true"])
    HTTPConnection("localhost").request("GET", "/")
    return data, conn


async def good_async():
    # CLEAN: the async equivalents.
    await asyncio.sleep(0.1)
    await asyncio.create_subprocess_exec("true")


async def good_executor():
    # CLEAN: blocking work shipped off the loop is the sanctioned escape.
    loop = asyncio.get_running_loop()
    await loop.run_in_executor(None, lambda: time.sleep(1))
    await loop.run_in_executor(None, _blocking_helper)


def _blocking_helper():
    # CLEAN: sync function — its blocking is the point.
    time.sleep(1)


async def suppressed(self):
    time.sleep(0)  # repro: noqa[REP002] yields to OS scheduler on purpose
