"""REP004 link-3 anchor: the key sets the benchmark emissions must match."""

SERVICE_KEYS = {"requests_total", "coalesced_batches"}
