"""REP004 link-3 fixture: one covered stats key, one drifted one."""


def emit(router_stats):
    return {
        "requests_total": router_stats["requests_total"],  # CLEAN: covered
        "ghost_counter": router_stats["ghost_counter"],  # BAD: schema drift
        "config": {"shards": 4},  # CLEAN: not a stats subscript
    }
