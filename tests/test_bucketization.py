"""Buckets, bucketizations, and the Section-3.4 partial order."""

from __future__ import annotations

import math

import pytest

from repro.bucketization import Bucket, Bucketization
from repro.data.schema import Schema
from repro.data.table import Table
from repro.errors import EmptyTableError


class TestBucket:
    def test_paper_notation(self):
        b = Bucket.from_values(["Flu", "Flu", "Lung", "Lung", "Mumps"])
        assert b.size == 5
        assert b.frequency("Flu") == 2
        assert b.frequency("absent") == 0
        assert b.signature == (2, 2, 1)
        assert b.top_frequency == 2
        assert b.distinct_count == 3

    def test_values_by_frequency_deterministic_ties(self):
        b = Bucket.from_values(["b", "a", "a", "b"])
        # Equal counts break ties by repr: 'a' before 'b'.
        assert b.values_by_frequency == ("a", "b")

    def test_entropy(self):
        uniform = Bucket.from_values(["a", "b", "c", "d"])
        assert uniform.entropy() == pytest.approx(math.log(4))
        assert uniform.entropy(base=2) == pytest.approx(2.0)
        constant = Bucket.from_values(["a", "a"])
        assert constant.entropy() == 0.0

    def test_top_fraction(self):
        assert Bucket.from_values(["a", "a", "b"]).top_fraction() == pytest.approx(
            2 / 3
        )

    def test_merge(self):
        a = Bucket([0, 1], ["x", "y"])
        b = Bucket([2], ["x"])
        merged = a.merge(b)
        assert merged.size == 3 and merged.frequency("x") == 2

    def test_merge_rejects_shared_person(self):
        a = Bucket([0, 1], ["x", "y"])
        b = Bucket([1], ["x"])
        with pytest.raises(ValueError):
            a.merge(b)

    def test_validation(self):
        with pytest.raises(EmptyTableError):
            Bucket([], [])
        with pytest.raises(ValueError):
            Bucket([0, 1], ["x"])
        with pytest.raises(ValueError):
            Bucket([0, 0], ["x", "y"])

    def test_equality_uses_people_and_histogram(self):
        assert Bucket([0, 1], ["x", "y"]) == Bucket([0, 1], ["y", "x"])
        assert Bucket([0, 1], ["x", "y"]) != Bucket([0, 2], ["x", "y"])


class TestBucketization:
    def test_bucket_of(self, figure3):
        assert figure3.bucket_of("Ed").frequency("Mumps") == 1
        assert figure3.bucket_index_of("Karen") == 1

    def test_total_size_and_person_ids(self, figure3):
        assert figure3.total_size == 10
        assert len(figure3.person_ids) == 10

    def test_duplicate_person_rejected(self):
        with pytest.raises(ValueError):
            Bucketization([Bucket([0], ["x"]), Bucket([0], ["y"])])

    def test_empty_rejected(self):
        with pytest.raises(EmptyTableError):
            Bucketization([])

    def test_from_table_groups_by_qi(self):
        schema = Schema(("zip",), "d")
        table = Table(
            [
                {"zip": "1", "d": "x"},
                {"zip": "2", "d": "y"},
                {"zip": "1", "d": "z"},
            ],
            schema,
        )
        b = Bucketization.from_table(table)
        assert len(b) == 2
        assert b.bucket_of(0) is b.bucket_of(2)

    def test_from_value_lists_assigns_global_ids(self):
        b = Bucketization.from_value_lists([["x", "y"], ["z"]])
        assert b.buckets[0].person_ids == (0, 1)
        assert b.buckets[1].person_ids == (2,)

    def test_signature_multiset(self):
        b = Bucketization.from_value_lists([["x", "y"], ["a", "b"], ["c", "c"]])
        assert b.signature_multiset() == {(1, 1): 2, (2,): 1}

    def test_merge_buckets(self, figure3):
        merged = figure3.merge_buckets([0, 1])
        assert len(merged) == 1
        assert merged.total_size == 10
        assert figure3.refines(merged)
        assert not merged.refines(figure3)

    def test_merge_validation(self, figure3):
        with pytest.raises(ValueError):
            figure3.merge_buckets([0])
        with pytest.raises(IndexError):
            figure3.merge_buckets([0, 5])

    def test_refines_requires_same_people(self, figure3):
        other = Bucketization.from_value_lists([["x"]])
        with pytest.raises(ValueError):
            figure3.refines(other)

    def test_refines_reflexive(self, figure3):
        assert figure3.refines(figure3)

    def test_equality_ignores_bucket_order(self):
        a = Bucketization([Bucket([0], ["x"]), Bucket([1], ["y"])])
        b = Bucketization([Bucket([1], ["y"]), Bucket([0], ["x"])])
        assert a == b
