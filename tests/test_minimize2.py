"""MINIMIZE2: the cross-bucket DP over Formula (1)."""

from __future__ import annotations

from fractions import Fraction
from itertools import product

import pytest

from repro.core.minimize1 import Minimize1Solver
from repro.core.minimize2 import (
    MinRatioComputation,
    effective_signatures,
    min_ratio_table,
)


def brute_force_min_ratio(signatures, k):
    """Minimum of Formula (1) by enumerating every distribution of k
    antecedent atoms over buckets and every host bucket for A."""
    solver = Minimize1Solver(exact=True)
    buckets = list(signatures)
    best = None
    for counts in product(range(k + 1), repeat=len(buckets)):
        if sum(counts) != k:
            continue
        for host in range(len(buckets)):
            value = Fraction(1)
            for index, (signature, m) in enumerate(zip(buckets, counts)):
                if index == host:
                    n = sum(signature)
                    value *= solver.minimum(signature, m + 1) * Fraction(
                        n, signature[0]
                    )
                else:
                    value *= solver.minimum(signature, m)
            if best is None or value < best:
                best = value
    return best


class TestMinRatioTable:
    @pytest.mark.parametrize(
        "signatures",
        [
            [(2, 2, 1)],
            [(2, 2, 1), (2, 1, 1, 1)],
            [(3, 1), (1, 1), (2, 2)],
            [(1,), (1,)],
            [(5, 3, 2), (4, 4), (1, 1, 1, 1)],
        ],
    )
    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_matches_brute_force_distribution(self, signatures, k):
        table = min_ratio_table(signatures, k, exact=True)
        assert table[k] == brute_force_min_ratio(signatures, k)

    def test_k0_single_bucket(self):
        # ratio = (n - top)/top; disclosure = top/n.
        table = min_ratio_table([(2, 2, 1)], 0, exact=True)
        assert table[0] == Fraction(3, 2)

    def test_k0_picks_most_skewed_bucket(self):
        table = min_ratio_table([(2, 2, 1), (4, 1)], 0, exact=True)
        assert table[0] == Fraction(1, 4)  # (5-4)/4 from the skewed bucket

    def test_all_k_at_once_consistent_with_individual(self):
        signatures = [(3, 2, 1), (2, 2), (4,)]
        table = min_ratio_table(signatures, 4, exact=True)
        for k in range(5):
            single = min_ratio_table(signatures, k, exact=True)
            assert single[k] == table[k]

    def test_ratio_monotone_nonincreasing_in_k(self):
        table = min_ratio_table([(3, 2, 2, 1), (2, 2, 1)], 6, exact=True)
        assert all(a >= b for a, b in zip(table, table[1:]))

    def test_dedupe_changes_nothing(self):
        signatures = [(2, 1)] * 7 + [(3, 3)] * 5
        with_dedupe = min_ratio_table(signatures, 3, exact=True, dedupe=True)
        without = min_ratio_table(signatures, 3, exact=True, dedupe=False)
        assert with_dedupe == without

    def test_skewed_bucket_two_person_attack(self):
        # {x:8, y:1, z:1} next to a uniform bucket: the k=1 optimum is the
        # two-person implication (p1 = x) -> (p0 = x) inside the skewed
        # bucket: Pr(p0 != x and p1 != x) = (2/10)(1/9) = 1/45, boosted by
        # n/top = 10/8, giving ratio 1/36 (disclosure 36/37). Neither a
        # negation (same-person) nor a cross-bucket attack comes close.
        table = min_ratio_table([(1,) * 10, (8, 1, 1)], 1, exact=True)
        assert table[1] == Fraction(1, 36)

    def test_two_distinct_values_collapse_at_k1(self):
        # Any bucket with two distinct values is fully disclosed by a single
        # implication (the negation of the rarer value).
        table = min_ratio_table([(1,) * 10, (9, 1)], 1, exact=True)
        assert table[1] == 0

    def test_zero_ratio_when_certain(self):
        # Bucket {a:1, b:1}: one implication (negation) pins the value.
        table = min_ratio_table([(1, 1)], 1, exact=True)
        assert table[1] == 0

    def test_shared_solver_reused(self):
        solver = Minimize1Solver()
        min_ratio_table([(3, 2, 1)], 3, solver=solver)
        signatures_known = solver.known_signatures()
        min_ratio_table([(3, 2, 1)], 3, solver=solver)  # same shapes
        assert solver.known_signatures() == signatures_known

    def test_empty_bucketization_rejected(self):
        with pytest.raises(ValueError):
            min_ratio_table([], 1)

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            min_ratio_table([(2, 1)], -1)


class TestEffectiveSignatures:
    def test_caps_multiplicity(self):
        sigs = [(1, 1)] * 10 + [(2,)] * 2
        effective = effective_signatures(sigs, 3)
        assert effective.count((1, 1)) == 3
        assert effective.count((2,)) == 2

    def test_deterministic_order(self):
        a = effective_signatures([(2,), (1, 1), (2,)], 5)
        b = effective_signatures([(1, 1), (2,), (2,)], 5)
        assert a == b

    def test_positive_cap_required(self):
        with pytest.raises(ValueError):
            effective_signatures([(1,)], 0)


class TestMinRatioComputation:
    def test_tables_at_boundaries(self):
        solver = Minimize1Solver(exact=True)
        comp = MinRatioComputation([(2, 1), (3, 3)], 2, solver)
        fa_end, ff_end = comp.tables_at(2)
        assert fa_end[0] == 1
        assert ff_end[0] == float("inf")

    def test_ratio_bounds_checked(self):
        solver = Minimize1Solver(exact=True)
        comp = MinRatioComputation([(2, 1)], 2, solver)
        with pytest.raises(ValueError):
            comp.ratio(3)

    def test_ratios_list_matches_ratio(self):
        solver = Minimize1Solver(exact=True)
        comp = MinRatioComputation([(2, 1), (2, 2)], 3, solver)
        assert comp.ratios() == [comp.ratio(k) for k in range(4)]
