"""Property-based tests (hypothesis) for the core invariants.

These are the library's strongest guarantees, checked on randomized inputs:

1. DP == exact oracle (maximum disclosure, Definition 6).
2. Lemma 12's closed form == world enumeration.
3. The O(k^3) DP == partition enumeration (MINIMIZE1).
4. Theorem 14 monotonicity: merging buckets never increases disclosure.
5. Negation closed form == brute force over arbitrary negation sets.
6. Signature deduplication never changes MINIMIZE2's answer.
7. Disclosure is monotone in k and bounded in (0, 1].
8. Theorem 3 encoding is exact on every world.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import permutations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bucketization import Bucketization
from repro.core.disclosure import max_disclosure, max_disclosure_series
from repro.core.exact import (
    exact_max_disclosure_negations,
    exact_max_disclosure_simple,
)
from repro.core.minimize1 import (
    Minimize1Solver,
    lemma12_probability,
    minimize1_reference,
)
from repro.core.minimize2 import min_ratio_table
from repro.core.negation import max_disclosure_negations

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

# Signatures: non-increasing positive counts. Capped at 7 tuples in total so
# the enumeration-based checks (multiset permutations: up to 7! orderings)
# stay fast.
signatures = (
    st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=4)
    .filter(lambda counts: sum(counts) <= 7)
    .map(lambda counts: tuple(sorted(counts, reverse=True)))
)

# Tiny bucketizations over a 3-value alphabet (oracle-enumerable): at most
# five tuples in total so the exponential formula enumeration stays fast.
tiny_bucketizations = (
    st.lists(
        st.lists(st.sampled_from("abc"), min_size=1, max_size=3),
        min_size=1,
        max_size=2,
    )
    .filter(lambda lists: sum(len(x) for x in lists) <= 5)
    .map(Bucketization.from_value_lists)
)

# Slightly larger bucketizations for DP-only invariants (no oracle).
medium_bucketizations = st.lists(
    st.lists(st.sampled_from("abcde"), min_size=1, max_size=8),
    min_size=1,
    max_size=5,
).map(Bucketization.from_value_lists)

small_k = st.integers(min_value=0, max_value=2)


# ---------------------------------------------------------------------------
# 1-2-3: the exactness ladder
# ---------------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(b=tiny_bucketizations, k=small_k)
def test_dp_equals_exact_oracle(b, k):
    assert max_disclosure(b, k, exact=True) == exact_max_disclosure_simple(b, k)


@settings(max_examples=60, deadline=None)
@given(sig=signatures, data=st.data())
def test_lemma12_closed_form_equals_enumeration(sig, data):
    n = sum(sig)
    num_people = data.draw(st.integers(min_value=1, max_value=min(3, n)))
    parts = tuple(
        sorted(
            data.draw(
                st.lists(
                    st.integers(min_value=1, max_value=3),
                    min_size=num_people,
                    max_size=num_people,
                )
            ),
            reverse=True,
        )
    )
    closed = lemma12_probability(sig, parts, exact=True)

    values = []
    for index, count in enumerate(sig):
        values.extend([index] * count)
    worlds = set(permutations(values))
    good = sum(
        1
        for world in worlds
        if all(world[i] >= parts[i] for i in range(len(parts)))
    )
    assert closed == Fraction(good, len(worlds))


@settings(max_examples=60, deadline=None)
@given(sig=signatures, m=st.integers(min_value=0, max_value=5))
def test_minimize1_dp_equals_partition_enumeration(sig, m):
    solver = Minimize1Solver(exact=True)
    assert solver.minimum(sig, m) == minimize1_reference(sig, m, exact=True)


# ---------------------------------------------------------------------------
# 4: Theorem 14
# ---------------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(b=medium_bucketizations, k=st.integers(min_value=0, max_value=4), data=st.data())
def test_merging_never_increases_disclosure(b, k, data):
    if len(b) < 2:
        coarser = b
    else:
        i = data.draw(st.integers(min_value=0, max_value=len(b) - 1))
        j = data.draw(st.integers(min_value=0, max_value=len(b) - 1))
        if i == j:
            j = (j + 1) % len(b)
        coarser = b.merge_buckets([i, j])
    assert max_disclosure(coarser, k, exact=True) <= max_disclosure(
        b, k, exact=True
    )


# ---------------------------------------------------------------------------
# 5: negation worst case
# ---------------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(b=tiny_bucketizations, k=small_k)
def test_negation_closed_form_equals_brute_force(b, k):
    assert max_disclosure_negations(b, k, exact=True) == (
        exact_max_disclosure_negations(b, k)
    )


# ---------------------------------------------------------------------------
# 6-7: DP structure invariants
# ---------------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(b=medium_bucketizations, k=st.integers(min_value=0, max_value=5))
def test_dedupe_is_invisible(b, k):
    sigs = [bucket.signature for bucket in b.buckets]
    assert min_ratio_table(sigs, k, exact=True, dedupe=True) == min_ratio_table(
        sigs, k, exact=True, dedupe=False
    )


@settings(max_examples=40, deadline=None)
@given(b=medium_bucketizations)
def test_disclosure_monotone_in_k_and_bounded(b):
    series = max_disclosure_series(b, range(7), exact=True)
    values = [series[k] for k in range(7)]
    assert all(0 < v <= 1 for v in values)
    assert all(x <= y for x, y in zip(values, values[1:]))


@settings(max_examples=40, deadline=None)
@given(b=medium_bucketizations, k=st.integers(min_value=0, max_value=5))
def test_implications_dominate_negations_property(b, k):
    assert max_disclosure(b, k, exact=True) >= max_disclosure_negations(
        b, k, exact=True
    )


@settings(max_examples=40, deadline=None)
@given(b=medium_bucketizations, k=st.integers(min_value=0, max_value=4))
def test_disclosure_at_least_max_top_fraction(b, k):
    floor = max(
        Fraction(bucket.top_frequency, bucket.size) for bucket in b.buckets
    )
    assert max_disclosure(b, k, exact=True) >= floor


# ---------------------------------------------------------------------------
# 8: Theorem 3 encoding
# ---------------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(b=tiny_bucketizations, data=st.data())
def test_encoding_exact_on_all_worlds(b, data):
    from repro.core.exact import enumerate_worlds
    from repro.knowledge.completeness import encode_predicate

    worlds = list(enumerate_worlds(b))
    chosen = data.draw(
        st.sets(st.integers(min_value=0, max_value=len(worlds) - 1))
    )
    predicate = lambda w: worlds.index(w) in chosen
    phi = encode_predicate(worlds, predicate, ["a", "b", "c"])
    for index, world in enumerate(worlds):
        assert phi.holds_in(world) == (index in chosen)
