"""End-to-end tests for the sharded service tier.

The router's contract (ISSUE 5 acceptance criteria):

- a 3-shard deployment behind the plane-key hash router answers
  **bit-identically** to a direct single
  :class:`~repro.engine.engine.DisclosureEngine`, in both arithmetic
  modes, under >= 8 concurrent pooled keep-alive clients;
- batch requests are split by per-bucketization plane key and merged
  losslessly in the original order;
- routing is a *stable* function of the plane key — the same question
  always lands on the same shard (cache affinity);
- a killed shard process is restarted and the in-flight request replayed;
- ``/stats`` and ``/healthz`` aggregate across shards; shutdown persists
  one cache file pair per shard under the shared prefix.
"""

from __future__ import annotations

import os
import random
import re
import signal
import subprocess
import sys
import threading
from fractions import Fraction
from pathlib import Path

import pytest

from repro.bucketization import Bucketization
from repro.engine import DisclosureEngine, canonical_params, get_adversary
from repro.service import ServiceClient, ServiceError, ShardRouter
from repro.service.router import (
    BackgroundRouter,
    resolve_shard_mode,
    shard_key,
)

SHARDS = 3
CLIENTS = 8


def _random_bucketizations(count: int, seed: int) -> list[Bucketization]:
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        buckets = [
            [rng.choice("abcdef") for _ in range(rng.randint(3, 9))]
            for _ in range(rng.randint(1, 4))
        ]
        out.append(Bucketization.from_value_lists(buckets))
    return out


@pytest.fixture(scope="module", params=["inproc", "process"])
def router(request):
    """One shared 3-shard deployment per shard mode: every read-mostly
    test runs against embedded shards AND subprocess shards."""
    with BackgroundRouter(
        shards=SHARDS,
        shard_mode=request.param,
        backend="serial",
        batch_window=0.01,
    ) as bg:
        yield bg


@pytest.fixture(scope="module")
def client(router) -> ServiceClient:
    return router.client()


# ---------------------------------------------------------------------------
# The hash itself: stable, deterministic, key-sensitive
# ---------------------------------------------------------------------------
class TestShardKey:
    def test_stable_across_calls(self):
        b = Bucketization.from_value_lists([["a", "a", "b"], ["c", "d"]])
        sig = b.signature_items()
        assert shard_key("float", "implication", (3,), sig) == shard_key(
            "float", "implication", (3,), sig
        )

    def test_sensitive_to_every_component(self):
        b = Bucketization.from_value_lists([["a", "a", "b"], ["c", "d"]])
        sig = b.signature_items()
        base = shard_key("float", "implication", (3,), sig)
        assert base != shard_key("exact", "implication", (3,), sig)
        assert base != shard_key("float", "negation", (3,), sig)
        assert base != shard_key("float", "implication", (4,), sig)
        other = Bucketization.from_value_lists([["a", "b", "c", "d", "e"]])
        assert base != shard_key(
            "float", "implication", (3,), other.signature_items()
        )

    def test_same_shape_same_shard(self):
        """Cache affinity survives value renaming: the plane interns
        signatures, not values, and the router hashes the same way."""
        left = Bucketization.from_value_lists([["a", "a", "b"], ["c", "d"]])
        right = Bucketization.from_value_lists([["x", "x", "y"], ["p", "q"]])
        assert left.signature_items() == right.signature_items()
        assert shard_key(
            "float", "implication", (2,), left.signature_items()
        ) == shard_key("float", "implication", (2,), right.signature_items())


# ---------------------------------------------------------------------------
# Bit-identical answers through the sharded topology
# ---------------------------------------------------------------------------
class TestShardedEquivalence:
    @pytest.mark.parametrize("exact", [False, True])
    def test_concurrent_pooled_clients_bit_identical(self, router, exact):
        bs = _random_bucketizations(CLIENTS, seed=1400 + exact)
        models = ["implication", "negation", "distribution", "weighted"]
        ks = [0, 1, 2, 3]
        jobs = [
            (bs[i], models[i % len(models)], ks[i % len(ks)])
            for i in range(CLIENTS)
        ]
        shared = ServiceClient(router.host, router.port, pool_size=CLIENTS)
        results: list = [None] * len(jobs)
        errors: list = []
        barrier = threading.Barrier(len(jobs))

        def hit(index: int) -> None:
            try:
                barrier.wait(timeout=60)
                b, model, k = jobs[index]
                results[index] = shared.disclosure(
                    b, k, model=model, exact=exact
                )
            except BaseException as exc:  # surfaces in the main thread
                errors.append(exc)

        threads = [
            threading.Thread(target=hit, args=(i,)) for i in range(len(jobs))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        shared.close()
        assert not errors
        engine = DisclosureEngine(exact=exact)
        for (b, model, k), served in zip(jobs, results):
            assert served == engine.evaluate(b, k, model=model), (
                f"sharded value diverged for {model} k={k}"
            )

    def test_batch_split_and_merged_losslessly(self, router, client):
        bs = _random_bucketizations(12, seed=77)
        ks = [1, 3]
        before = client.stats()["router"]["split_batches"]
        served = client.disclosure_batch(bs, ks, exact=True)
        direct = DisclosureEngine(exact=True).evaluate_many(bs, ks)
        assert served == direct  # order preserved, bits preserved
        after = client.stats()["router"]["split_batches"]
        # 12 random shapes across 3 shards: the batch really was split.
        assert after == before + 1

    def test_single_shard_batch_forwarded_whole(self, router, client):
        """Every item hashing to one shard skips the split/merge machinery:
        the router forwards the original body and counts a whole batch."""
        # Same signature shape => same shard key (values are irrelevant).
        bs = [
            Bucketization.from_value_lists([[v, v, "other"], ["p", "q"]])
            for v in ("a", "b", "c", "d")
        ]
        ks = [1, 2]
        before = client.stats()["router"]
        served = client.disclosure_batch(bs, ks)
        direct = DisclosureEngine().evaluate_many(bs, ks)
        assert served == direct
        after = client.stats()["router"]
        assert after["whole_batches"] == before["whole_batches"] + 1
        assert after["split_batches"] == before["split_batches"]

    def test_safety_and_compare_and_witness_proxy(self, router, client):
        b = Bucketization.from_value_lists(
            [["Flu", "Flu", "Cancer"], ["Flu", "Mumps", "Cancer"]]
        )
        engine = DisclosureEngine()
        answer = client.safety(b, 0.9, 1)
        assert answer["safe"] == engine.is_safe(b, 0.9, 1)
        assert answer["value"] == engine.evaluate(b, 1)
        served = client.compare(b, [0, 1, 2])
        direct = engine.compare(b, [0, 1, 2])
        assert served == {name: dict(s) for name, s in direct.items()}
        witness = client.witness(b, 2, model="negation")
        assert witness["witness"]["disclosure"] == witness["value"]

    def test_models_proxied(self, router, client):
        from repro.engine import available_adversaries

        assert [m["name"] for m in client.models()] == list(
            available_adversaries()
        )


# ---------------------------------------------------------------------------
# Cache-affinity routing
# ---------------------------------------------------------------------------
class TestAffinity:
    def test_identical_requests_land_on_one_shard(self, router, client):
        b = Bucketization.from_value_lists(
            [["affinity", "affinity", "probe", "probe", "x"]]
        )
        before = {
            entry["shard"]: entry["service"]["single_requests"]
            for entry in client.stats()["shards"]
        }
        repeats = 6
        for _ in range(repeats):
            client.disclosure(b, 2, model="negation")
        after = {
            entry["shard"]: entry["service"]["single_requests"]
            for entry in client.stats()["shards"]
        }
        deltas = {index: after[index] - before[index] for index in after}
        grew = [index for index, delta in deltas.items() if delta > 0]
        assert len(grew) == 1, f"affinity broken: deltas {deltas}"
        assert deltas[grew[0]] == repeats
        # ...and the owning shard served the repeats from its cache —
        # either the engine cache proper or the serving-layer fast peek
        # over it (the router's inproc fast path and the shard's own
        # event-loop fast path both count in cache_fast_hits).
        owner = next(
            entry
            for entry in client.stats()["shards"]
            if entry["shard"] == grew[0]
        )
        hits = (
            owner["engines"]["float"]["stats"]["cache_hits"]
            + owner["service"]["cache_fast_hits"]
        )
        assert hits >= repeats - 1


# ---------------------------------------------------------------------------
# Parametric adversaries through the sharded topology
# ---------------------------------------------------------------------------
class TestParametricRouting:
    def test_params_join_the_shard_key(self):
        b = Bucketization.from_value_lists([["a", "a", "b"], ["c", "d"]])
        sig = b.signature_items()
        ordered = canonical_params({"weights": {"b": 1.0, "a": 2.0}})
        reordered = canonical_params({"weights": {"a": 2.0, "b": 1.0}})
        base = shard_key("float", "weighted", (2,), sig, ordered)
        # Request-side key order is irrelevant: one canonical identity.
        assert base == shard_key("float", "weighted", (2,), sig, reordered)
        assert base != shard_key(
            "float", "weighted", (2,), sig,
            canonical_params({"weights": {"a": 2.0, "b": 1.5}}),
        )
        # The legacy 4-arg call is the empty-params, tenantless key.
        assert shard_key("float", "implication", (3,), sig) == shard_key(
            "float", "implication", (3,), sig, (), None
        )
        assert base != shard_key("float", "weighted", (2,), sig, ordered, "t")

    def test_shard_key_is_a_pure_function_of_values(self):
        """Two canonicalizations of the same params built independently
        (fresh objects, fresh Fractions) must hash identically — the key
        may never depend on instance identity or repr-of-instance."""
        b = Bucketization.from_value_lists([["a", "a", "b"], ["c", "d"]])
        first = shard_key(
            "exact", "probabilistic", (1,), b.signature_items(),
            canonical_params({"confidence": Fraction(1, 3)}),
        )
        second = shard_key(
            "exact", "probabilistic", (1,),
            Bucketization.from_value_lists(
                [["a", "a", "b"], ["c", "d"]]
            ).signature_items(),
            canonical_params({"confidence": Fraction(2, 6)}),
        )
        assert first == second

    def test_parametric_singles_bit_identical(self, router, client):
        b = Bucketization.from_value_lists(
            [["a", "a", "b", "c"], ["a", "b", "d", "d"]]
        )
        engine = DisclosureEngine()
        low = client.disclosure(
            b, 1, model="probabilistic",
            params={"confidence": Fraction(1, 3)},
        )
        high = client.disclosure(
            b, 1, model="probabilistic",
            params={"confidence": Fraction(2, 3)},
        )
        assert low == engine.evaluate(
            b, 1, model=get_adversary("probabilistic", confidence=Fraction(1, 3))
        )
        assert high == engine.evaluate(
            b, 1, model=get_adversary("probabilistic", confidence=Fraction(2, 3))
        )
        assert low != high  # two param sets cannot share a cache entry
        weighted = client.disclosure(
            b, 2, model="weighted", params={"weights": {"a": 3.0}}
        )
        assert weighted == engine.evaluate(
            b, 2, model=get_adversary("weighted", weights={"a": 3.0})
        )
        sampled = client.disclosure(
            b, 2, model="sampling", params={"samples": 512, "seed": 9}
        )
        assert sampled == engine.evaluate(
            b, 2, model=get_adversary("sampling", samples=512, seed=9)
        )

    def test_parametric_requests_keep_cache_affinity(self, router, client):
        b = Bucketization.from_value_lists(
            [["route", "route", "probe", "x", "y"]]
        )
        params = {"weights": {"route": 2.0}}
        before = {
            entry["shard"]: entry["service"]["single_requests"]
            for entry in client.stats()["shards"]
        }
        repeats = 5
        for _ in range(repeats):
            client.disclosure(b, 2, model="weighted", params=params)
        after = {
            entry["shard"]: entry["service"]["single_requests"]
            for entry in client.stats()["shards"]
        }
        deltas = {index: after[index] - before[index] for index in after}
        grew = [index for index, delta in deltas.items() if delta > 0]
        assert len(grew) == 1, f"params affinity broken: deltas {deltas}"
        assert deltas[grew[0]] == repeats

    def test_parametric_route_stable_across_router_restarts(self):
        """The owning shard for an explicit-params request is a durable
        function of the question — a restarted router (fresh processes,
        fresh model instances) routes it to the same shard index."""
        b = Bucketization.from_value_lists(
            [["s", "s", "t", "a"], ["s", "t", "b", "b"]]
        )
        params = {"weights": {"s": 2.0, "t": 0.5}}

        def owning_shard() -> tuple[int, float]:
            with BackgroundRouter(
                shards=SHARDS,
                shard_mode="inproc",
                backend="serial",
                batch_window=0.0,
            ) as bg:
                client = bg.client()
                value = client.disclosure(
                    b, 1, model="weighted", params=params
                )
                counts = {
                    entry["shard"]: entry["service"]["single_requests"]
                    for entry in client.stats()["shards"]
                }
                (owner,) = [s for s, n in counts.items() if n > 0]
                return owner, value

        first_owner, first_value = owning_shard()
        second_owner, second_value = owning_shard()
        assert first_owner == second_owner
        assert first_value == second_value

    def test_unknown_tenant_rejected_before_routing(self, router, client):
        with pytest.raises(ServiceError) as excinfo:
            client.disclosure(
                Bucketization.from_value_lists([["a", "b"]]), 1,
                tenant="nope",
            )
        assert excinfo.value.status == 400
        assert "no tenants configured" in excinfo.value.message

    def test_bad_params_rejected_at_the_router(self, router, client):
        for payload in (
            {"buckets": [["a", "b"]], "k": 1, "params": 5},
            {"buckets": [["a", "b"]], "k": 1, "params": {"x": True}},
            {
                "buckets": [["a", "b"]],
                "k": 1,
                "model": "sampling",
                "params": {"samples": 0},
            },
        ):
            with pytest.raises(ServiceError) as excinfo:
                client.request("POST", "/disclosure", payload)
            assert excinfo.value.status == 400


# ---------------------------------------------------------------------------
# Multi-tenant topologies behind the router
# ---------------------------------------------------------------------------
ROUTER_TENANTS = {
    "acme": {"model": "weighted", "params": {"weights": {"p": 2.5}}},
    "globex": {"model": "sampling", "params": {"samples": 500, "seed": 7}},
}


class TestRouterTenants:
    @pytest.mark.parametrize("shard_mode", ["inproc", "process"])
    def test_tenants_served_and_isolated(self, tmp_path, shard_mode):
        prefix = tmp_path / "fleet"
        b = Bucketization.from_value_lists(
            [["p", "p", "q", "r"], ["p", "q", "s", "t"]]
        )
        engine = DisclosureEngine()
        with BackgroundRouter(
            shards=2,
            shard_mode=shard_mode,
            backend="serial",
            batch_window=0.0,
            cache_path=prefix,
            tenants=ROUTER_TENANTS,
        ) as bg:
            client = bg.client()
            acme = client.disclosure(b, 2, tenant="acme")
            globex = client.disclosure(b, 2, tenant="globex")
            plain = client.disclosure(b, 2)
            assert acme == engine.evaluate(
                b, 2, model=get_adversary("weighted", weights={"p": 2.5})
            )
            assert globex == engine.evaluate(
                b, 2, model=get_adversary("sampling", samples=500, seed=7)
            )
            assert plain == engine.evaluate(b, 2)
            assert acme != plain  # tenant defaults engaged through routing
            stats = client.stats()
            assert set(stats["tenants"]) == {"acme", "globex"}
            assert stats["tenants"]["acme"]["requests"] >= 1
            assert stats["tenants"]["globex"]["requests"] >= 1
            # Each tenant's questions live in that tenant's engines only.
            tenant_entries = {
                tenant: sum(
                    entry["tenants"][tenant]["engines"]["float"][
                        "cache_entries"
                    ]
                    for entry in stats["shards"]
                )
                for tenant in ROUTER_TENANTS
            }
            assert tenant_entries["acme"] >= 1
            assert tenant_entries["globex"] >= 1
        # One cache file per (tenant, shard, mode) under the shared prefix.
        for index in range(2):
            for mode in ("float", "exact"):
                assert (tmp_path / f"fleet.shard{index}.{mode}.pkl").exists()
                for tenant in ROUTER_TENANTS:
                    assert (
                        tmp_path / f"fleet.{tenant}.shard{index}.{mode}.pkl"
                    ).exists()

    def test_tenants_file_cli_topology(self, tmp_path):
        """``repro serve --shards 2 --tenants FILE`` — the subprocess-shard
        topology reads the same JSON file the router validated."""
        if not hasattr(signal, "SIGTERM"):
            pytest.skip("needs POSIX signals")
        import json as json_module

        tenants_file = tmp_path / "tenants.json"
        tenants_file.write_text(
            json_module.dumps(ROUTER_TENANTS), encoding="utf-8"
        )
        repo_root = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo_root / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--port",
                "0",
                "--shards",
                "2",
                "--shard-mode",
                "process",
                "--backend",
                "serial",
                "--tenants",
                str(tenants_file),
                "--cache-file",
                str(tmp_path / "fleet"),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
            cwd=repo_root,
        )
        try:
            port_line = process.stdout.readline()
            process.stdout.readline()  # topology line
            match = re.search(r"http://[^:]+:(\d+)", port_line)
            assert match, f"no port in {port_line!r}"
            client = ServiceClient("127.0.0.1", int(match.group(1)))
            b = Bucketization.from_value_lists(
                [["p", "p", "q", "r"], ["p", "q", "s", "t"]]
            )
            engine = DisclosureEngine()
            assert client.disclosure(b, 2, tenant="acme") == engine.evaluate(
                b, 2, model=get_adversary("weighted", weights={"p": 2.5})
            )
            assert client.stats()["tenants"]["acme"]["requests"] >= 1
            client.close()
        finally:
            process.send_signal(signal.SIGTERM)
            _, err = process.communicate(timeout=120)
        assert process.returncode == 0, err

    def test_bad_tenants_file_fails_boot(self, tmp_path):
        with pytest.raises(ValueError, match="unknown model"):
            ShardRouter(
                shards=2, tenants={"t": {"model": "martian"}}
            )


# ---------------------------------------------------------------------------
# Shard modes and the routing hot path
# ---------------------------------------------------------------------------
class TestShardModes:
    def test_resolve_shard_mode(self, monkeypatch):
        assert resolve_shard_mode("process", 8) == "process"
        assert resolve_shard_mode("inproc", 1) == "inproc"
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert resolve_shard_mode("auto", 4) == "process"
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        assert resolve_shard_mode("auto", 4) == "inproc"
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert resolve_shard_mode("auto", 2) == "inproc"
        with pytest.raises(ValueError):
            resolve_shard_mode("martian", 2)

    def test_zero_reparse_memo_and_inproc_fast_path(self):
        """Byte-identical repeats are routed without JSON parsing
        (route_memo_hits / reparse_avoided) and, on in-process shards,
        answered straight from the cache peek (fast_hits) — bit-identical
        to the engine the whole way."""
        b = Bucketization.from_value_lists(
            [["m", "m", "e", "m", "o"], ["f", "a", "s", "t"]]
        )
        expect = DisclosureEngine().evaluate(b, 2)
        with BackgroundRouter(
            shards=2, shard_mode="inproc", backend="serial", batch_window=0.0
        ) as bg:
            client = bg.client()
            repeats = 5
            for _ in range(repeats):
                assert client.disclosure(b, 2) == expect
            stats = client.stats()
            router = stats["router"]
            assert router["shard_mode"] == "inproc"
            assert router["route_memo_hits"] >= repeats - 1
            assert router["reparse_avoided"] >= repeats - 1
            assert router["fast_hits"] >= repeats - 1
            assert stats["totals"]["cache_fast_hits"] >= repeats - 1

    def test_router_coalesces_concurrent_singles_upstream(self):
        """Concurrent identical singles bound for one process shard cost
        the socket one upstream batch, not N round trips."""
        b = Bucketization.from_value_lists(
            [["c", "o", "a", "l"], ["e", "s", "c", "e"]]
        )
        expect = DisclosureEngine().evaluate(b, 3, model="negation")
        with BackgroundRouter(
            shards=2,
            shard_mode="process",
            backend="serial",
            batch_window=0.02,
        ) as bg:
            workers = 6
            shared = ServiceClient(bg.host, bg.port, pool_size=workers)
            barrier = threading.Barrier(workers)
            results: list = [None] * workers
            errors: list = []

            def hit(index: int) -> None:
                try:
                    barrier.wait(timeout=60)
                    results[index] = shared.disclosure(b, 3, model="negation")
                except BaseException as exc:
                    errors.append(exc)

            threads = [
                threading.Thread(target=hit, args=(i,))
                for i in range(workers)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            shared.close()
            assert not errors
            assert all(value == expect for value in results)
            router = bg.client().stats()["router"]
            assert router["shard_mode"] == "process"
            assert router["coalesced_batches"] >= 1
            assert router["coalesced_singles"] >= 2


# ---------------------------------------------------------------------------
# Validation and aggregation
# ---------------------------------------------------------------------------
class TestRouterEndpoints:
    def test_bad_bodies_are_400_at_the_router(self, router, client):
        for payload in (
            {"buckets": [], "k": 1},
            {"buckets": [["a"]], "k": "three"},
            {"buckets": [["a"]], "k": 1, "model": "martian"},
            {"bucketizations": [], "ks": [1]},
            {"bucketizations": [[["a"]]], "ks": []},
        ):
            with pytest.raises(ServiceError) as excinfo:
                client.request("POST", "/disclosure", payload)
            assert excinfo.value.status == 400

    def test_shard_400_proxied_back(self, router, client):
        with pytest.raises(ServiceError) as excinfo:
            client.disclosure(
                Bucketization.from_value_lists([["a", "b"]]), -1
            )
        assert excinfo.value.status == 400

    def test_healthz_aggregates_all_shards(self, router, client):
        health = client.health()
        assert health["ok"] is True
        assert len(health["shards"]) == SHARDS
        assert all(entry["ok"] for entry in health["shards"])

    def test_stats_aggregates_router_and_shards(self, router, client):
        client.disclosure(
            Bucketization.from_value_lists([["s", "t", "a", "t"]]), 1
        )
        stats = client.stats()
        assert {"router", "totals", "shards"} <= set(stats)
        assert stats["router"]["shards"] == SHARDS
        assert stats["router"]["proxied"] >= 1
        assert "connections" in stats["router"]
        assert len(stats["shards"]) == SHARDS
        assert stats["totals"]["single_requests"] >= 1
        for entry in stats["shards"]:
            assert {"service", "engines", "shard"} <= set(entry)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ShardRouter(shards=0)
        with pytest.raises(ValueError):
            ShardRouter(shards=2, forward_timeout=0)
        with pytest.raises(ValueError):
            ShardRouter(shards=2, health_interval=-1)


# ---------------------------------------------------------------------------
# Supervision: restart-and-replay, and per-shard cache persistence
# ---------------------------------------------------------------------------
class TestSupervision:
    def test_killed_shards_restart_and_replay(self):
        bs = _random_bucketizations(6, seed=9)
        engine = DisclosureEngine()
        with BackgroundRouter(
            shards=SHARDS,
            shard_mode="process",  # only subprocess shards can be killed
            backend="serial",
            batch_window=0.0,
            health_interval=0.2,
        ) as bg:
            client = bg.client()
            for b in bs:
                assert client.disclosure(b, 2) == engine.evaluate(b, 2)
            for shard in bg.service.shards:
                shard.process.kill()
            # Every request after the massacre still gets the right bits:
            # its target shard is revived on demand and the request replayed.
            for b in bs:
                assert client.disclosure(b, 2) == engine.evaluate(b, 2)
            stats = client.stats()
            assert stats["router"]["restarts"] >= 1
            assert stats["router"]["replays"] >= 1
            # The health sweep (0.2s) plus on-demand restarts revive all.
            health = client.health()
            assert health["ok"] is True

    @pytest.mark.skipif(
        not hasattr(signal, "SIGTERM"), reason="needs POSIX signals"
    )
    @pytest.mark.parametrize("shard_mode", ["process", "inproc"])
    def test_cli_sharded_serve_lifecycle(self, tmp_path, shard_mode):
        """``repro serve --shards 2 --shard-mode MODE`` boots a router
        process, serves with the right bits, and on SIGTERM shuts every
        shard down gracefully (exit 0, one persisted cache pair per
        shard) — in both shard modes."""
        repo_root = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo_root / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--port",
                "0",
                "--shards",
                "2",
                "--shard-mode",
                shard_mode,
                "--backend",
                "serial",
                "--cache-file",
                str(tmp_path / "fleet"),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
            cwd=repo_root,
        )
        try:
            port_line = process.stdout.readline()
            topology_line = process.stdout.readline()
            match = re.search(r"http://[^:]+:(\d+)", port_line)
            assert match, f"no port in {port_line!r}"
            if shard_mode == "process":
                assert "2 shards on ports" in topology_line
            else:
                assert "2 in-process shards" in topology_line
            client = ServiceClient("127.0.0.1", int(match.group(1)))
            b = Bucketization.from_value_lists([["a", "a", "b"], ["c", "d"]])
            assert client.disclosure(b, 2) == DisclosureEngine().evaluate(b, 2)
            health = client.health()
            assert health["ok"] is True and len(health["shards"]) == 2
            client.close()
        finally:
            process.send_signal(signal.SIGTERM)
            _, err = process.communicate(timeout=120)
        assert process.returncode == 0, err
        for index in range(2):
            for mode in ("float", "exact"):
                assert (tmp_path / f"fleet.shard{index}.{mode}.pkl").exists()

    @pytest.mark.parametrize("shard_mode", ["inproc", "process"])
    def test_per_shard_cache_persistence(self, tmp_path, shard_mode):
        prefix = tmp_path / "fleet"
        b = Bucketization.from_value_lists(
            [["p", "p", "q", "r"], ["p", "q", "s", "t"]]
        )
        with BackgroundRouter(
            shards=SHARDS,
            shard_mode=shard_mode,
            backend="serial",
            batch_window=0.0,
            cache_path=prefix,
        ) as bg:
            first = bg.client().disclosure(b, 3)
        for index in range(SHARDS):
            for mode in ("float", "exact"):
                assert (tmp_path / f"fleet.shard{index}.{mode}.pkl").exists()
        with BackgroundRouter(
            shards=SHARDS,
            shard_mode=shard_mode,
            backend="serial",
            batch_window=0.0,
            cache_path=prefix,
        ) as bg:
            client = bg.client()
            loaded = [
                entry["engines"]["float"]["loaded_entries"]
                for entry in client.stats()["shards"]
            ]
            assert sum(loaded) >= 1  # the owning shard reloaded its slice
            assert client.disclosure(b, 3) == first
            hits = [
                entry["engines"]["float"]["stats"]["cache_hits"]
                + entry["service"]["cache_fast_hits"]
                for entry in client.stats()["shards"]
            ]
            assert sum(hits) >= 1  # answered from the reloaded cache
