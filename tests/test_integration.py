"""End-to-end pipelines: from microdata to a certified publication."""

from __future__ import annotations

import pytest

from repro import (
    ADULT_SCHEMA,
    GeneralizationLattice,
    SafetyChecker,
    adult_hierarchies,
    bucketize_at,
    generate_adult,
    max_disclosure,
    worst_case_witness,
)
from repro.anonymity import is_k_anonymous, max_k_anonymity
from repro.bucketization import anatomize
from repro.core.kernel import numpy_available
from repro.core.negation import max_disclosure_negations
from repro.data.loader import load_csv, save_csv
from repro.generalization.search import (
    binary_search_chain,
    find_minimal_safe_nodes,
)
from repro.utility.metrics import precision


# Every pipeline here starts from the synthetic Adult table.
pytestmark = pytest.mark.skipif(
    not numpy_available(),
    reason="the synthetic Adult generator needs numpy (repro[fast])",
)


@pytest.fixture(scope="module")
def table():
    return generate_adult(2500, seed=11)


@pytest.fixture(scope="module")
def lattice():
    return GeneralizationLattice(
        adult_hierarchies(), ADULT_SCHEMA.quasi_identifiers
    )


class TestPublishPipeline:
    def test_search_then_verify_publication(self, table, lattice):
        c, k = 0.8, 2
        checker = SafetyChecker(c, k)
        minimal = find_minimal_safe_nodes(
            lattice,
            lambda node: checker.is_safe(bucketize_at(table, lattice, node)),
        )
        assert minimal, "a threshold of 0.8 must be satisfiable"
        best = max(minimal, key=lambda node: precision(lattice, node))
        published = bucketize_at(table, lattice, best)

        # The certificate: disclosure strictly below c for any k implications.
        assert max_disclosure(published, k) < c
        # And therefore for any k negated atoms too.
        assert max_disclosure_negations(published, k) < c
        # And for any smaller attacker.
        for smaller in range(k):
            assert max_disclosure(published, smaller) < c

    def test_binary_search_agrees_with_sweep_on_chain(self, table, lattice):
        checker = SafetyChecker(0.75, 2)
        chain = lattice.default_chain()

        def is_safe(node):
            return checker.is_safe(bucketize_at(table, lattice, node))

        by_binary = binary_search_chain(chain, is_safe)
        by_scan = next(node for node in chain if is_safe(node))
        assert by_binary == by_scan

    def test_csv_round_trip_preserves_disclosure(self, table, lattice, tmp_path):
        path = tmp_path / "published.csv"
        save_csv(table, path)
        reloaded = load_csv(path, ADULT_SCHEMA)
        node = (3, 1, 1, 0)
        original = max_disclosure(bucketize_at(table, lattice, node), 3)
        recovered = max_disclosure(bucketize_at(reloaded, lattice, node), 3)
        assert original == recovered


class TestAnatomyPipeline:
    def test_anatomized_publication_certified(self, table):
        bucketization = anatomize(table, 4)
        assert is_k_anonymous(bucketization, 4)
        # Distinct buckets of 4: zero-knowledge disclosure is 1/4 except for
        # residue-extended buckets.
        assert max_disclosure(bucketization, 0) <= 0.5
        # But implications erode it fast; quantify instead of assuming.
        k3 = max_disclosure(bucketization, 3)
        assert 0 < k3 <= 1

    def test_anatomy_beats_chunking_for_safety(self, table):
        from repro.bucketization import partition_into_chunks

        anatomized = anatomize(table, 4)
        chunked = partition_into_chunks(table, 4)
        assert max_disclosure(anatomized, 1) <= max_disclosure(chunked, 1)


class TestWitnessRoundTrip:
    def test_witness_on_generalized_adult(self, table, lattice):
        published = bucketize_at(table, lattice, (4, 2, 1, 1))
        witness = worst_case_witness(published, 2)
        assert witness.k == 2
        assert witness.disclosure == pytest.approx(
            max_disclosure(published, 2)
        )
        # Witness people must exist in the published data.
        people = set(published.person_ids)
        assert witness.consequent.person in people

    def test_kanonymity_alone_fails_where_cksafety_warns(self, table, lattice):
        # Find a k-anonymous node whose (c,k)-safe disclosure is high: the
        # paper's core motivation (k-anonymity says nothing about knowledge).
        node = (1, 0, 0, 0)
        published = bucketize_at(table, lattice, node)
        anonymity = max_k_anonymity(published)
        disclosure = max_disclosure(published, 2)
        assert anonymity >= 1  # trivially k-anonymous at some level
        assert disclosure == 1.0  # yet fully disclosing against 2 implications
