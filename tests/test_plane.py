"""The signature plane, the bounded cache, and parallel batch evaluation.

Four layers of guarantees:

1. **Plane semantics**: interning is stable, encode/decode round-trips, and
   a synthetically rebuilt bucketization is evaluation-equivalent to the
   original for every signature-decomposable model (property-based).
2. **Parallel == serial**: ``evaluate_many`` over a process pool returns
   bit-for-bit what the serial path returns, in float and exact modes, with
   warm-back populating the shared cache; non-decomposable models fall back
   to the serial path.
3. **Cache policy**: the LRU bound holds, evictions are counted, pinned
   entries survive eviction, and a bounded Figure-6 sweep stays within its
   limit while reporting evictions.
4. **Persistence**: save/load round-trips entries across engines (plane ids
   re-interned), and arithmetic-mode mismatches are rejected.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bucketization import Bucket, Bucketization
from repro.engine import (
    CachePolicy,
    DisclosureEngine,
    SamplingAdversary,
    SignaturePlane,
    get_adversary,
)
from repro.core.kernel import numpy_available
from repro.experiments.fig6 import run_figure6
from repro.experiments.runner import default_adult_table

requires_numpy = pytest.mark.skipif(
    not numpy_available(),
    reason="the synthetic Adult generator needs numpy (repro[fast])",
)

small_bucketizations = st.lists(
    st.lists(st.sampled_from("abcde"), min_size=1, max_size=6),
    min_size=1,
    max_size=4,
).map(Bucketization.from_value_lists)

#: Models whose answers are functions of the signature multiset alone.
DECOMPOSABLE = ("implication", "negation", "distribution")


def _random_bucketizations(count: int, seed: int = 11) -> list[Bucketization]:
    rng = random.Random(seed)
    result = []
    for _ in range(count):
        value_lists = [
            [rng.choice("abcdefg") for _ in range(rng.randint(2, 8))]
            for _ in range(rng.randint(1, 5))
        ]
        result.append(Bucketization.from_value_lists(value_lists))
    return result


# ---------------------------------------------------------------------------
# 1. Plane semantics
# ---------------------------------------------------------------------------
class TestSignaturePlane:
    def test_intern_is_stable_and_dense(self):
        plane = SignaturePlane()
        assert plane.intern((2, 1)) == 0
        assert plane.intern((3,)) == 1
        assert plane.intern((2, 1)) == 0  # same signature, same id
        assert plane.signature(1) == (3,)
        assert len(plane) == 2
        assert (2, 1) in plane and (9,) not in plane

    def test_encode_counts_multiplicity(self):
        plane = SignaturePlane()
        b = Bucketization.from_value_lists([["a", "a", "b"], ["x", "x", "y"]])
        assert plane.encode(b) == ((0, 2),)
        assert plane.decode(plane.encode(b)) == (((2, 1), 2),)

    @given(small_bucketizations)
    @settings(max_examples=40, deadline=None)
    def test_encode_decode_round_trip(self, bucketization):
        plane = SignaturePlane()
        key = plane.encode(bucketization)
        assert plane.encode_counts(plane.decode(key)) == key
        # A different plane re-interns to (possibly) different ids but the
        # decoded raw multiset is identical.
        other = SignaturePlane()
        other.intern((99,))  # shift id assignment
        assert other.decode(other.encode(bucketization)) == plane.decode(key)

    @given(small_bucketizations)
    @settings(max_examples=25, deadline=None)
    def test_synthetic_rebuild_is_evaluation_equivalent(self, bucketization):
        rebuilt = Bucketization.from_signature_counts(
            dict(bucketization.signature_items())
        )
        assert rebuilt.signature_items() == bucketization.signature_items()
        ks = [0, 1, 2]
        for exact in (False, True):
            engine = DisclosureEngine(exact=exact)
            fresh = DisclosureEngine(exact=exact)
            for model in DECOMPOSABLE:
                assert engine.series(
                    bucketization, ks, model=model
                ) == fresh.series(rebuilt, ks, model=model)

    def test_bucket_from_signature_validates(self):
        assert Bucket.from_signature((3, 2, 2)).signature == (3, 2, 2)
        with pytest.raises(ValueError):
            Bucket.from_signature((1, 2))

    def test_from_signature_counts_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Bucketization.from_signature_counts({(2, 1): 0})


class TestSignaturesSince:
    """The delta contract behind the persistent backend's plane mirrors:
    a mirror that has replayed the first ``start`` signatures agrees with
    the source plane on every id below ``start``, and appending
    ``signatures_since(start)`` in order extends the agreement."""

    def test_empty_plane_and_caught_up_mirror_yield_empty_delta(self):
        plane = SignaturePlane()
        assert plane.signatures_since(0) == ()
        plane.intern((2, 1))
        plane.intern((3,))
        assert plane.signatures_since(len(plane)) == ()
        # Re-interning known signatures assigns no new ids: still empty.
        plane.intern((2, 1))
        assert plane.signatures_since(2) == ()

    def test_delta_replay_catches_a_mirror_up(self):
        source = SignaturePlane()
        mirror = SignaturePlane()
        for sig in ((2, 1), (3,), (1, 1, 1)):
            source.intern(sig)
        for sig in source.signatures_since(0):
            mirror.intern(sig)
        baseline = len(mirror)
        source.intern((3,))  # known: no delta growth
        source.intern((4, 4))
        source.intern((5,))
        delta = source.signatures_since(baseline)
        assert delta == ((4, 4), (5,))
        for sig in delta:
            mirror.intern(sig)
        assert len(mirror) == len(source)
        assert all(
            mirror.signature(i) == source.signature(i)
            for i in range(len(source))
        )

    def test_interleaved_interning_from_two_engines(self):
        """Two engines intern overlapping signatures in different orders;
        each plane's delta stream replays into an id-exact mirror of *that*
        plane, even though the shared signatures carry different ids in the
        two planes."""
        shared = Bucketization.from_value_lists([["a", "a", "b"]])
        only_one = Bucketization.from_value_lists([["x", "y", "z"]])
        only_two = Bucketization.from_value_lists([["p", "p", "q", "q"]])
        one, two = DisclosureEngine(), DisclosureEngine()
        mirrors = {id(one): SignaturePlane(), id(two): SignaturePlane()}
        baselines = {id(one): 0, id(two): 0}

        def sync(engine):
            mirror = mirrors[id(engine)]
            for sig in engine.plane.signatures_since(baselines[id(engine)]):
                mirror.intern(sig)
            baselines[id(engine)] = len(engine.plane)

        # Interleave: one sees its private shapes first, two sees shared
        # first — the id orders diverge but each delta stream is faithful.
        one.evaluate(only_one, 1)
        sync(one)
        two.evaluate(shared, 1)
        sync(two)
        one.evaluate(shared, 1)
        two.evaluate(only_two, 1)
        sync(one)
        sync(two)

        for engine in (one, two):
            mirror = mirrors[id(engine)]
            assert len(mirror) == len(engine.plane)
            assert all(
                mirror.signature(i) == engine.plane.signature(i)
                for i in range(len(engine.plane))
            )
        # The shared signature exists in both planes under different ids.
        shared_sig = (2, 1)
        assert shared_sig in one.plane and shared_sig in two.plane
        assert one.plane.intern(shared_sig) != two.plane.intern(shared_sig)

    def test_post_load_cache_baseline_excludes_loaded_signatures(
        self, tmp_path
    ):
        """A worker spawned after ``load_cache`` snapshots its baseline at
        the warm plane's length: the first delta it ships contains only
        signatures interned *after* the load, never the reloaded corpus."""
        warm_b = _random_bucketizations(4, seed=3)
        donor = DisclosureEngine()
        donor.evaluate_many(warm_b, [1] * len(warm_b))
        path = tmp_path / "warm.pkl"
        donor.save_cache(path)

        engine = DisclosureEngine()
        assert engine.load_cache(path) > 0
        baseline = len(engine.plane)
        assert baseline == len(donor.plane)
        assert engine.plane.signatures_since(baseline) == ()

        engine.evaluate(warm_b[0], 1)  # already loaded: no new ids
        assert engine.plane.signatures_since(baseline) == ()
        fresh = Bucketization.from_value_lists([["n1", "n2", "n2", "n3"]])
        engine.evaluate(fresh, 2)
        delta = engine.plane.signatures_since(baseline)
        assert delta and all(
            sig not in donor.plane for sig in delta
        )


# ---------------------------------------------------------------------------
# 2. Parallel == serial
# ---------------------------------------------------------------------------
class TestParallelEvaluateMany:
    def test_parallel_equals_serial_bit_for_bit(self):
        """The property behind BENCH_parallel: on a pool of random
        bucketizations, the parallel path returns exactly the serial result
        for every decomposable model, float and exact."""
        bucketizations = _random_bucketizations(10)
        ks = [0, 1, 2, 3]
        for exact in (False, True):
            for model in DECOMPOSABLE:
                serial = DisclosureEngine(exact=exact).evaluate_many(
                    bucketizations, ks, model=model, workers=1
                )
                parallel_engine = DisclosureEngine(exact=exact, workers=2)
                parallel = parallel_engine.evaluate_many(
                    bucketizations, ks, model=model
                )
                assert parallel == serial, (model, exact)
                assert parallel_engine.stats.parallel_tasks > 0

    def test_warm_back_populates_shared_cache(self):
        bucketizations = _random_bucketizations(6, seed=3)
        ks = [1, 2]
        engine = DisclosureEngine(workers=2)
        engine.evaluate_many(bucketizations, ks)
        # Everything the assembly looked up arrived via warm-back.
        assert engine.stats.misses == 0
        hits = engine.stats.cache_hits
        engine.evaluate_many(bucketizations, ks, workers=1)
        assert engine.stats.misses == 0
        assert engine.stats.cache_hits > hits

    def test_non_decomposable_model_falls_back_to_serial(self):
        bucketizations = _random_bucketizations(4, seed=5)
        model = SamplingAdversary(samples=200, seed=1)
        assert not model.signature_decomposable()
        engine = DisclosureEngine(workers=2)
        parallel = engine.evaluate_many(bucketizations, [1], model=model)
        assert engine.stats.parallel_tasks == 0  # never hit the pool
        serial = DisclosureEngine().evaluate_many(
            bucketizations, [1], model=model, workers=1
        )
        assert parallel == serial

    def test_tight_cache_limit_still_uses_pool_results(self):
        """A max_entries smaller than the batch must not force serial
        recomputation: the assembly serves the pool's own results even after
        warm-back entries were evicted."""
        bucketizations = _random_bucketizations(12, seed=41)
        ks = [2, 3]
        serial = DisclosureEngine().evaluate_many(
            bucketizations, ks, workers=1
        )
        engine = DisclosureEngine(
            policy=CachePolicy(max_entries=3), workers=2
        )
        result = engine.evaluate_many(bucketizations, ks)
        assert result == serial
        assert engine.cache_size() <= 3
        assert engine.stats.parallel_tasks > 0
        # Every lookup was answered from the pool's shared results, not
        # recomputed serially after eviction.
        assert engine.stats.misses == 0

    def test_workers_one_never_uses_pool(self):
        engine = DisclosureEngine(workers=1)
        engine.evaluate_many(_random_bucketizations(4, seed=9), [1, 2])
        assert engine.stats.parallel_tasks == 0

    def test_unpicklable_plugin_degrades_to_serial(self):
        """A model defined in a local scope cannot cross process boundaries;
        evaluate_many must still answer (serially)."""
        implication = get_adversary("implication")

        class LocalModel(type(implication)):  # unpicklable: local class
            name = "implication"  # reuse registered name; not re-registered

        model = LocalModel()
        bucketizations = _random_bucketizations(4, seed=2)
        engine = DisclosureEngine(workers=2)
        result = engine.evaluate_many(bucketizations, [1], model=model)
        serial = DisclosureEngine().evaluate_many(
            bucketizations, [1], workers=1
        )
        assert result == serial


# ---------------------------------------------------------------------------
# 3. Cache policy: LRU bound, eviction stats, pinning
# ---------------------------------------------------------------------------
class TestCachePolicy:
    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            CachePolicy(max_entries=0)

    def test_lru_bound_and_eviction_stats(self):
        bucketizations = _random_bucketizations(8, seed=13)
        engine = DisclosureEngine(policy=CachePolicy(max_entries=3))
        for b in bucketizations:
            engine.evaluate(b, 2)
        assert engine.cache_size() <= 3
        assert engine.stats.evictions > 0
        assert (
            engine.stats.evictions
            == engine.stats.misses - engine.cache_size()
        )

    def test_lru_evicts_least_recently_used(self):
        b1, b2, b3 = (
            Bucketization.from_value_lists([["a"] * n + ["b"]])
            for n in (1, 2, 3)
        )
        engine = DisclosureEngine(policy=CachePolicy(max_entries=2))
        engine.evaluate(b1, 1)
        engine.evaluate(b2, 1)
        engine.evaluate(b1, 1)  # refresh b1: b2 is now LRU
        engine.evaluate(b3, 1)  # evicts b2
        misses = engine.stats.misses
        engine.evaluate(b1, 1)  # still cached
        assert engine.stats.misses == misses
        engine.evaluate(b2, 1)  # was evicted: recomputed
        assert engine.stats.misses == misses + 1

    def test_pinned_entries_survive_eviction(self):
        bucketizations = _random_bucketizations(8, seed=17)
        engine = DisclosureEngine(policy=CachePolicy(max_entries=2))
        keep = bucketizations[0]
        with engine.pinned():
            engine.evaluate(keep, 1)
        assert engine.pinned_count() == 1
        for b in bucketizations[1:]:
            engine.evaluate(b, 1)
        misses = engine.stats.misses
        engine.evaluate(keep, 1)  # pinned: still a hit despite churn
        assert engine.stats.misses == misses
        engine.unpin_all()
        assert engine.pinned_count() == 0

    @requires_numpy
    def test_pin_sweeps_policy_pins_lattice_entries(self):
        table = default_adult_table(200)
        from repro.data.adult import ADULT_SCHEMA
        from repro.data.hierarchies import adult_hierarchies
        from repro.generalization.lattice import GeneralizationLattice

        lattice = GeneralizationLattice(
            adult_hierarchies(), ADULT_SCHEMA.quasi_identifiers
        )
        engine = DisclosureEngine(
            policy=CachePolicy(max_entries=100, pin_sweeps=True)
        )
        engine.find_minimal_safe_nodes(table, lattice, 0.9, 2)
        assert engine.pinned_count() > 0

    @requires_numpy
    def test_pin_sweeps_covers_parallel_prewarm(self):
        """The parallel prewarm inside find_minimal_safe_nodes must pin its
        warm-back entries too, so the sweep's cache fill survives churn."""
        table = default_adult_table(200)
        from repro.data.adult import ADULT_SCHEMA
        from repro.data.hierarchies import adult_hierarchies
        from repro.generalization.lattice import GeneralizationLattice

        lattice = GeneralizationLattice(
            adult_hierarchies(), ADULT_SCHEMA.quasi_identifiers
        )
        engine = DisclosureEngine(
            policy=CachePolicy(max_entries=100, pin_sweeps=True), workers=2
        )
        result = engine.find_minimal_safe_nodes(table, lattice, 0.9, 2)
        pinned = engine.pinned_count()
        assert pinned > 0
        # Churn with unpinned traffic: the sweep's entries must all survive.
        for b in _random_bucketizations(120, seed=31):
            engine.evaluate(b, 2)
        misses = engine.stats.misses
        rerun = engine.find_minimal_safe_nodes(
            table, lattice, 0.9, 2, workers=1
        )
        assert rerun == result
        assert engine.stats.misses == misses  # pure cache hits

    @requires_numpy
    def test_bounded_fig6_sweep_respects_limit_and_reports_evictions(self):
        """The acceptance scenario: a full Figure-6 sweep under an entry
        limit finishes within bound, with evictions > 0 in EngineStats."""
        table = default_adult_table(250)
        limit = 25
        engine = DisclosureEngine(policy=CachePolicy(max_entries=limit))
        result = run_figure6(table, ks=(1, 3), engine=engine)
        assert len(result.nodes) == 72
        assert engine.cache_size() <= limit
        assert engine.stats.evictions > 0
        # And the bounded sweep computed the same numbers as an unbounded one.
        unbounded = run_figure6(table, ks=(1, 3))
        assert result.nodes == unbounded.nodes


# ---------------------------------------------------------------------------
# 4. Persistence
# ---------------------------------------------------------------------------
class TestCachePersistence:
    def test_round_trip_across_engines(self, tmp_path):
        bucketizations = _random_bucketizations(5, seed=23)
        source = DisclosureEngine()
        expected = source.evaluate_many(
            bucketizations, [1, 2], model="implication", workers=1
        )
        source.evaluate_many(bucketizations, [1], model="negation", workers=1)
        path = tmp_path / "cache.pkl"
        saved = source.save_cache(path)
        assert saved == source.cache_size()

        fresh = DisclosureEngine()
        loaded = fresh.load_cache(path)
        assert loaded == saved
        # Every lookup is now a hit, and values are identical.
        result = fresh.evaluate_many(
            bucketizations, [1, 2], model="implication", workers=1
        )
        assert result == expected
        assert fresh.stats.misses == 0

    def test_load_respects_cache_policy(self, tmp_path):
        bucketizations = _random_bucketizations(6, seed=29)
        source = DisclosureEngine()
        source.evaluate_many(bucketizations, [1, 2], workers=1)
        path = tmp_path / "cache.pkl"
        source.save_cache(path)
        bounded = DisclosureEngine(policy=CachePolicy(max_entries=4))
        bounded.load_cache(path)
        assert bounded.cache_size() <= 4
        assert bounded.stats.evictions > 0

    def test_exact_mode_mismatch_rejected(self, tmp_path):
        b = Bucketization.from_value_lists([["a", "a", "b"]])
        source = DisclosureEngine(exact=True)
        source.evaluate(b, 1)
        path = tmp_path / "cache.pkl"
        source.save_cache(path)
        with pytest.raises(ValueError, match="exact"):
            DisclosureEngine(exact=False).load_cache(path)

    def test_format_version_checked(self, tmp_path):
        import pickle

        path = tmp_path / "cache.pkl"
        with open(path, "wb") as handle:
            pickle.dump({"format": 999, "exact": False, "entries": []}, handle)
        with pytest.raises(ValueError, match="format"):
            DisclosureEngine().load_cache(path)


# ---------------------------------------------------------------------------
# Consumers on the plane
# ---------------------------------------------------------------------------
@requires_numpy
class TestPlaneConsumers:
    def test_node_predicate_shares_signature_duplicates(self):
        """Two lattice nodes inducing the same signature multiset cost one
        threshold resolution (the predicate's signature memo)."""
        table = default_adult_table(150)
        from repro.data.adult import ADULT_SCHEMA
        from repro.data.hierarchies import adult_hierarchies
        from repro.generalization.lattice import GeneralizationLattice

        lattice = GeneralizationLattice(
            adult_hierarchies(), ADULT_SCHEMA.quasi_identifiers
        )
        engine = DisclosureEngine()
        predicate = engine.node_predicate(table, lattice, 0.9, 2)
        results = {node: predicate(node) for node in lattice.nodes()}
        # Consistency with direct evaluation.
        from repro.generalization.apply import bucketize_at

        threshold = engine.threshold(0.9)
        for node, safe in results.items():
            value = engine.evaluate(bucketize_at(table, lattice, node), 2)
            assert safe == (value < threshold)

    def test_parallel_search_prewarm_matches_serial(self):
        table = default_adult_table(150)
        from repro.data.adult import ADULT_SCHEMA
        from repro.data.hierarchies import adult_hierarchies
        from repro.generalization.lattice import GeneralizationLattice

        lattice = GeneralizationLattice(
            adult_hierarchies(), ADULT_SCHEMA.quasi_identifiers
        )
        serial = DisclosureEngine().find_minimal_safe_nodes(
            table, lattice, 0.8, 2
        )
        parallel_engine = DisclosureEngine(workers=2)
        parallel = parallel_engine.find_minimal_safe_nodes(
            table, lattice, 0.8, 2, workers=2
        )
        assert parallel == serial
        assert parallel_engine.stats.parallel_tasks > 0

    def test_search_prewarm_skipped_for_non_decomposable_models(self):
        """--workers on a non-decomposable model must keep the ordinary
        pruned serial sweep, not serially evaluate every node."""
        table = default_adult_table(100)
        from repro.data.adult import ADULT_SCHEMA
        from repro.data.hierarchies import adult_hierarchies
        from repro.generalization.lattice import GeneralizationLattice
        from repro.generalization.search import SearchStats

        lattice = GeneralizationLattice(
            adult_hierarchies(), ADULT_SCHEMA.quasi_identifiers
        )
        model = SamplingAdversary(samples=100, seed=0)
        engine = DisclosureEngine(workers=2)
        stats = SearchStats()
        engine.find_minimal_safe_nodes(
            table, lattice, 0.95, 1, model=model, stats=stats, workers=2
        )
        assert engine.stats.parallel_tasks == 0  # pool never used
        # Pruning intact: the sweep did not evaluate the whole lattice.
        assert engine.stats.evaluations < lattice.size

    def test_fig6_parallel_matches_serial(self):
        table = default_adult_table(150)
        serial = run_figure6(table, ks=(1, 3))
        engine = DisclosureEngine(workers=2)
        parallel = run_figure6(table, ks=(1, 3), engine=engine, workers=2)
        assert parallel.nodes == serial.nodes
