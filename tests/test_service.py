"""End-to-end tests for the disclosure service layer.

Covers the acceptance criteria of the serving layer:

- full process lifecycle: ``repro serve`` boots, loads its cache, serves,
  and on SIGTERM saves the cache and exits 0 — and a restarted service
  answers from the reloaded cache;
- N concurrent clients receive **bit-identical** answers to direct
  :class:`~repro.engine.engine.DisclosureEngine` calls, in both float and
  exact arithmetic;
- concurrent single requests are coalesced into one engine batch
  (observable through ``/stats``);
- malformed requests surface as 4xx JSON errors, never 500s or hangs.
"""

from __future__ import annotations

import json
import os
import random
import re
import signal
import subprocess
import sys
import threading
import time
from fractions import Fraction
from http.client import HTTPConnection
from pathlib import Path

import pytest

from repro.bucketization import Bucketization
from repro.engine import DisclosureEngine, available_adversaries, get_adversary
from repro.service import BackgroundService, ServiceClient, ServiceError
from repro.service.server import load_tenants

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def figure3_like() -> Bucketization:
    return Bucketization.from_value_lists(
        [
            ["Flu", "Flu", "Lung Cancer", "Lung Cancer", "Mumps"],
            ["Flu", "Flu", "Breast Cancer", "Ovarian Cancer", "Heart Disease"],
        ]
    )


@pytest.fixture(scope="module")
def service():
    """One shared background service for the read-mostly endpoint tests."""
    with BackgroundService(backend="serial", batch_window=0.0) as bg:
        yield bg


@pytest.fixture(scope="module")
def client(service) -> ServiceClient:
    return service.client()


# ---------------------------------------------------------------------------
# Endpoints against direct engine calls
# ---------------------------------------------------------------------------
class TestEndpoints:
    def test_health(self, client):
        assert client.health()["ok"] is True

    def test_models_lists_whole_registry(self, client):
        models = client.models()
        assert [m["name"] for m in models] == list(available_adversaries())
        for record in models:
            assert {
                "name",
                "supports_exact",
                "supports_witness",
                "unbounded_scale",
                "monotone",
                "signature_decomposable",
            } <= set(record)

    @pytest.mark.parametrize("exact", [False, True])
    def test_single_disclosure_bit_identical(self, client, figure3_like, exact):
        engine = DisclosureEngine(exact=exact)
        for model in ("implication", "negation", "distribution"):
            for k in (0, 1, 3):
                served = client.disclosure(
                    figure3_like, k, model=model, exact=exact
                )
                direct = engine.evaluate(figure3_like, k, model=model)
                assert served == direct
                if exact:
                    assert isinstance(served, Fraction)

    def test_batch_matches_evaluate_many(self, client, figure3_like):
        merged = figure3_like.merge_buckets([0, 1])
        ks = [1, 2, 4]
        served = client.disclosure_batch(
            [figure3_like, merged], ks, exact=True
        )
        direct = DisclosureEngine(exact=True).evaluate_many(
            [figure3_like, merged], ks
        )
        assert served == direct

    def test_safety_matches_engine(self, client, figure3_like):
        engine = DisclosureEngine()
        answer = client.safety(figure3_like, 0.9, 1)
        assert answer["safe"] == engine.is_safe(figure3_like, 0.9, 1)
        assert answer["value"] == engine.evaluate(figure3_like, 1)

    def test_compare_matches_engine(self, client, figure3_like):
        ks = [0, 1, 2]
        served = client.compare(
            figure3_like, ks, models=("implication", "negation")
        )
        direct = DisclosureEngine().compare(
            figure3_like, ks, models=("implication", "negation")
        )
        assert set(served) == set(direct)
        for name in direct:
            assert served[name] == direct[name]

    def test_witness_disclosure_matches_value(self, client, figure3_like):
        answer = client.witness(figure3_like, 2, model="negation")
        assert answer["witness"]["type"] == "NegationWitness"
        assert answer["witness"]["disclosure"] == answer["value"]

    def test_witness_unsupported_model_is_400(self, client, figure3_like):
        with pytest.raises(ServiceError) as excinfo:
            client.witness(figure3_like, 2, model="weighted")
        assert excinfo.value.status == 400

    def test_stats_shape(self, client, figure3_like):
        client.disclosure(figure3_like, 1)  # ensure non-zero counters
        stats = client.stats()
        assert {"service", "engines"} <= set(stats)
        assert stats["service"]["requests_total"] >= 1
        for mode in ("float", "exact"):
            record = stats["engines"][mode]
            assert {
                "stats",
                "cache_entries",
                "pinned_entries",
                "plane_signatures",
                "loaded_entries",
                "backend",
            } <= set(record)
            assert record["backend"]["name"] == "serial"
        assert stats["engines"]["float"]["stats"]["evaluations"] >= 1


# ---------------------------------------------------------------------------
# Concurrency: bit-identical answers and coalescing
# ---------------------------------------------------------------------------
def _random_bucketizations(count: int, seed: int) -> list[Bucketization]:
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        buckets = [
            [rng.choice("abcdef") for _ in range(rng.randint(3, 9))]
            for _ in range(rng.randint(1, 4))
        ]
        out.append(Bucketization.from_value_lists(buckets))
    return out


class TestConcurrency:
    CLIENTS = 8

    @pytest.mark.parametrize("exact", [False, True])
    def test_concurrent_clients_bit_identical_to_engine(self, exact):
        bs = _random_bucketizations(self.CLIENTS, seed=42 + exact)
        models = ["implication", "negation", "distribution", "weighted"]
        ks = [0, 1, 2, 3]
        jobs = [
            (bs[i], models[i % len(models)], ks[i % len(ks)])
            for i in range(self.CLIENTS)
        ]
        results: list = [None] * len(jobs)
        errors: list = []
        with BackgroundService(backend="serial", batch_window=0.01) as bg:
            host, port = bg.host, bg.port

            def hit(index: int) -> None:
                try:
                    b, model, k = jobs[index]
                    results[index] = ServiceClient(host, port).disclosure(
                        b, k, model=model, exact=exact
                    )
                except BaseException as exc:  # surfaces in the main thread
                    errors.append(exc)

            threads = [
                threading.Thread(target=hit, args=(i,)) for i in range(len(jobs))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
        assert not errors
        engine = DisclosureEngine(exact=exact)
        for (b, model, k), served in zip(jobs, results):
            assert served == engine.evaluate(b, k, model=model), (
                f"served value diverged for {model} k={k}"
            )

    def test_concurrent_singles_coalesce_into_one_batch(self):
        bs = _random_bucketizations(self.CLIENTS, seed=7)
        with BackgroundService(backend="serial", batch_window=0.25) as bg:
            host, port = bg.host, bg.port
            barrier = threading.Barrier(self.CLIENTS)

            def hit(index: int) -> None:
                barrier.wait(timeout=60)
                ServiceClient(host, port).disclosure(bs[index], 2)

            threads = [
                threading.Thread(target=hit, args=(i,))
                for i in range(self.CLIENTS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            stats = bg.client().stats()["service"]
        assert stats["single_requests"] == self.CLIENTS
        # All singles arrived within the batch window, so at least one real
        # coalesced batch formed (and no request was dropped).
        assert stats["coalesced_batches"] >= 1
        assert stats["max_coalesced"] >= 2
        assert (
            stats["coalesced_singles"] + stats["single_requests"]
            >= self.CLIENTS
        )

    def test_coalesced_identical_requests_compute_once(self, figure3_like):
        """N concurrent identical singles: one unique plane key, so the
        engine evaluates once and everyone gets the same bits."""
        n = 6
        with BackgroundService(backend="serial", batch_window=0.25) as bg:
            host, port = bg.host, bg.port
            barrier = threading.Barrier(n)
            values: list = [None] * n

            def hit(index: int) -> None:
                barrier.wait(timeout=60)
                values[index] = ServiceClient(host, port).disclosure(
                    figure3_like, 3
                )

            threads = [
                threading.Thread(target=hit, args=(i,)) for i in range(n)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            engine_stats = bg.client().stats()["engines"]["float"]["stats"]
        direct = DisclosureEngine().evaluate(figure3_like, 3)
        assert values == [direct] * n
        # evaluate_many counts one evaluation per requested series entry,
        # but the unique-key dedup means the model ran at most twice (once
        # for any pre-window solo dispatch, once for the coalesced rest).
        assert engine_stats["misses"] <= 2


# ---------------------------------------------------------------------------
# Malformed requests: 4xx paths
# ---------------------------------------------------------------------------
def _raw_request(
    host: str, port: int, method: str, path: str, body: bytes | None = None
) -> tuple[int, dict]:
    connection = HTTPConnection(host, port, timeout=30)
    try:
        connection.request(
            method, path, body=body, headers={"Content-Type": "application/json"}
        )
        response = connection.getresponse()
        payload = json.loads(response.read() or b"{}")
        return response.status, payload
    finally:
        connection.close()


class TestMalformedRequests:
    def test_unknown_path_is_404(self, service):
        status, payload = _raw_request(service.host, service.port, "GET", "/nope")
        assert status == 404
        assert "error" in payload

    def test_wrong_method_is_405(self, service):
        status, payload = _raw_request(
            service.host, service.port, "GET", "/disclosure"
        )
        assert status == 405
        assert "error" in payload

    def test_invalid_json_is_400(self, service):
        status, payload = _raw_request(
            service.host, service.port, "POST", "/disclosure", b"{not json"
        )
        assert status == 400
        assert "error" in payload

    def test_non_object_body_is_400(self, service):
        status, _ = _raw_request(
            service.host, service.port, "POST", "/disclosure", b"[1, 2, 3]"
        )
        assert status == 400

    @pytest.mark.parametrize(
        "body",
        [
            {},  # missing everything
            {"buckets": [["a"]], "k": "three"},  # k wrong type
            {"buckets": [["a"]], "k": -1},  # negative power
            {"buckets": [["a"]], "k": True},  # bool is not an int
            {"buckets": [], "k": 1},  # empty bucketization
            {"buckets": [[]], "k": 1},  # empty bucket
            {"buckets": [[{"v": 1}]], "k": 1},  # non-scalar value
            {"buckets": [["a"]], "k": 1, "model": "martian"},  # unknown model
            {"buckets": [["a"]], "k": 1, "exact": "yes"},  # exact wrong type
            {"bucketizations": [[["a"]]], "ks": []},  # batch with empty ks
            {"bucketizations": [], "ks": [1]},  # empty batch
        ],
    )
    def test_bad_disclosure_bodies_are_400(self, service, body):
        status, payload = _raw_request(
            service.host,
            service.port,
            "POST",
            "/disclosure",
            json.dumps(body).encode(),
        )
        assert status == 400
        assert "error" in payload

    @pytest.mark.parametrize(
        "body",
        [
            {"buckets": [["a", "b"]], "k": 1, "c": 0.0},  # c out of range
            {"buckets": [["a", "b"]], "k": 1, "c": 1.5},  # c above bound
            {"buckets": [["a", "b"]], "k": 1},  # missing c
        ],
    )
    def test_bad_safety_bodies_are_400(self, service, body):
        status, _ = _raw_request(
            service.host,
            service.port,
            "POST",
            "/safety",
            json.dumps(body).encode(),
        )
        assert status == 400

    def test_bad_compare_models_is_400(self, service):
        status, _ = _raw_request(
            service.host,
            service.port,
            "POST",
            "/compare",
            json.dumps(
                {"buckets": [["a", "b"]], "ks": [1], "models": ["martian"]}
            ).encode(),
        )
        assert status == 400

    @pytest.mark.parametrize(
        "body",
        [
            # Unknown constructor kwarg -> TypeError -> 400, not 500.
            {
                "buckets": [["a", "b"]],
                "k": 1,
                "model": "probabilistic",
                "params": {"bogus": 1},
            },
            # Out-of-range value -> ValueError -> 400.
            {
                "buckets": [["a", "b"]],
                "k": 1,
                "model": "probabilistic",
                "params": {"confidence": "3/2"},
            },
            {
                "buckets": [["a", "b"]],
                "k": 1,
                "model": "sampling",
                "params": {"samples": 0},
            },
            # Malformed params field itself.
            {"buckets": [["a", "b"]], "k": 1, "params": 5},
            {"buckets": [["a", "b"]], "k": 1, "params": {"x": True}},
            {"buckets": [["a", "b"]], "k": 1, "params": {"q": "one/two"}},
            # Tenant routing on a tenant-less service.
            {"buckets": [["a", "b"]], "k": 1, "tenant": "nope"},
            {"buckets": [["a", "b"]], "k": 1, "tenant": 3},
        ],
    )
    def test_bad_params_and_tenant_bodies_are_400(self, service, body):
        status, payload = _raw_request(
            service.host,
            service.port,
            "POST",
            "/disclosure",
            json.dumps(body).encode(),
        )
        assert status == 400
        assert "error" in payload

    @pytest.mark.parametrize("path", ["/safety", "/compare"])
    def test_bad_params_rejected_on_every_threat_endpoint(self, service, path):
        body = {
            "buckets": [["a", "b"]],
            "k": 1,
            "c": 0.9,
            "ks": [1],
            "model": "probabilistic",
            "models": ["probabilistic"],
            "params": {"confidence": "3/2"},
        }
        status, payload = _raw_request(
            service.host, service.port, "POST", path, json.dumps(body).encode()
        )
        assert status == 400
        assert "error" in payload
        assert "probabilistic" in payload["error"]

    def test_errors_do_not_poison_the_service(self, service, figure3_like):
        client = service.client()
        with pytest.raises(ServiceError):
            client.disclosure(figure3_like, -1)
        # The engine thread and coalescer survive a failed request.
        assert client.disclosure(figure3_like, 1) == DisclosureEngine().evaluate(
            figure3_like, 1
        )


# ---------------------------------------------------------------------------
# Keep-alive connections and the pooled client
# ---------------------------------------------------------------------------
class TestKeepAlive:
    def test_one_connection_serves_many_requests(self, figure3_like):
        with BackgroundService(backend="serial", batch_window=0.0) as bg:
            connection = HTTPConnection(bg.host, bg.port, timeout=30)
            try:
                body = json.dumps(
                    {"buckets": [list(b.sensitive_values) for b in figure3_like]}
                    | {"k": 1}
                ).encode()
                for _ in range(3):
                    connection.request(
                        "POST",
                        "/disclosure",
                        body=body,
                        headers={"Content-Type": "application/json"},
                    )
                    response = connection.getresponse()
                    assert response.status == 200
                    assert not response.will_close  # server kept it open
                    response.read()
                connection.request("GET", "/stats")
                stats = json.loads(connection.getresponse().read())
            finally:
                connection.close()
        connections = stats["service"]["connections"]
        assert connections["total"] == 1
        assert connections["keepalive_requests"] == 3  # requests 2..4

    def test_connection_close_header_honored(self, figure3_like):
        with BackgroundService(backend="serial", batch_window=0.0) as bg:
            connection = HTTPConnection(bg.host, bg.port, timeout=30)
            try:
                connection.request(
                    "GET", "/healthz", headers={"Connection": "close"}
                )
                response = connection.getresponse()
                assert response.status == 200
                assert response.will_close  # server announced the close
                response.read()
            finally:
                connection.close()

    def test_pooled_client_reuses_one_connection(self, figure3_like):
        with BackgroundService(backend="serial", batch_window=0.0) as bg:
            client = ServiceClient(bg.host, bg.port, pool_size=2)
            for k in range(5):
                client.disclosure(figure3_like, k)
            connections = client.stats()["service"]["connections"]
            client.close()
        assert connections["total"] == 1
        assert connections["keepalive_requests"] >= 5

    def test_per_connection_client_opens_one_each(self, figure3_like):
        with BackgroundService(backend="serial", batch_window=0.0) as bg:
            client = ServiceClient(bg.host, bg.port, keep_alive=False)
            for k in range(3):
                client.disclosure(figure3_like, k)
            connections = client.stats()["service"]["connections"]
        assert connections["total"] == 4  # 3 singles + the /stats call
        assert connections["keepalive_requests"] == 0

    def test_stale_pooled_connection_replays_transparently(self, figure3_like):
        """An idle-timeout-closed server connection must not surface: the
        pooled client detects the stale socket and replays."""
        with BackgroundService(
            backend="serial", batch_window=0.0, request_timeout=0.3
        ) as bg:
            client = ServiceClient(bg.host, bg.port, pool_size=2)
            first = client.disclosure(figure3_like, 2)
            time.sleep(0.8)  # server idle-timeout reaps the pooled socket
            assert client.disclosure(figure3_like, 2) == first
            client.close()

    def test_max_connections_cap_is_503(self):
        with BackgroundService(
            backend="serial", batch_window=0.0, max_connections=1
        ) as bg:
            holder = HTTPConnection(bg.host, bg.port, timeout=30)
            try:
                holder.request("GET", "/healthz")
                assert holder.getresponse().status == 200
                # holder keeps the only slot; a second connection is refused.
                status, payload = _raw_request(
                    bg.host, bg.port, "GET", "/healthz"
                )
                assert status == 503
                assert "error" in payload
            finally:
                holder.close()
            # The slot frees once the server reaps the closed socket.
            for _ in range(100):
                status, _ = _raw_request(bg.host, bg.port, "GET", "/healthz")
                if status == 200:
                    break
                time.sleep(0.05)
            assert status == 200
            stats = bg.client().stats()["service"]
            assert stats["connections"]["rejected_over_cap"] == 1
            assert stats["max_connections"] == 1


# ---------------------------------------------------------------------------
# Process lifecycle: repro serve + SIGTERM + cache persistence
# ---------------------------------------------------------------------------
def _boot_serve(prefix: Path) -> tuple[subprocess.Popen, int, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            "0",
            "--backend",
            "serial",
            "--cache-file",
            str(prefix),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    try:
        port_line = process.stdout.readline()
        cache_line = process.stdout.readline()
        match = re.search(r"http://[^:]+:(\d+)", port_line)
        assert match, f"no port in {port_line!r}"
        return process, int(match.group(1)), cache_line
    except BaseException:
        process.kill()
        raise


@pytest.mark.skipif(
    not hasattr(signal, "SIGTERM"), reason="needs POSIX signals"
)
def test_serve_lifecycle_sigterm_persists_cache(tmp_path, figure3_like):
    prefix = tmp_path / "svc-cache"

    # Boot 1: empty cache, serve a couple of requests, SIGTERM.
    process, port, cache_line = _boot_serve(prefix)
    try:
        assert "loaded 0 float / 0 exact" in cache_line
        client = ServiceClient("127.0.0.1", port)
        float_value = client.disclosure(figure3_like, 2)
        exact_value = client.disclosure(figure3_like, 2, exact=True)
        assert float_value == DisclosureEngine().evaluate(figure3_like, 2)
        assert exact_value == DisclosureEngine(exact=True).evaluate(
            figure3_like, 2
        )
    finally:
        process.send_signal(signal.SIGTERM)
        out, err = process.communicate(timeout=60)
    assert process.returncode == 0, err
    assert "saved" in out
    assert (tmp_path / "svc-cache.float.pkl").exists()
    assert (tmp_path / "svc-cache.exact.pkl").exists()

    # Boot 2: the saved caches load, and the same question is a cache hit.
    process, port, cache_line = _boot_serve(prefix)
    try:
        assert re.search(r"loaded [1-9]\d* float / [1-9]\d* exact", cache_line)
        client = ServiceClient("127.0.0.1", port)
        stats = client.stats()
        assert stats["engines"]["float"]["loaded_entries"] >= 1
        assert stats["engines"]["exact"]["loaded_entries"] >= 1
        # A repeat question may be answered by the engine cache or by the
        # serving layer's event-loop fast peek — both are reloaded-cache
        # hits, so count them together.
        def _hits(s):
            return (
                s["engines"]["float"]["stats"]["cache_hits"]
                + s["service"]["cache_fast_hits"]
            )

        before = _hits(stats)
        assert client.disclosure(figure3_like, 2) == float_value
        after = _hits(client.stats())
        assert after == before + 1  # answered from the reloaded cache
    finally:
        process.send_signal(signal.SIGTERM)
        _, err = process.communicate(timeout=60)
    assert process.returncode == 0, err


# ---------------------------------------------------------------------------
# Parametric adversaries over the wire, and multi-tenant serving
# ---------------------------------------------------------------------------
PARAMETRIC_CASES = [
    ("weighted", {"weights": {"Flu": 2.5, "Mumps": 1.0}}),
    ("sampling", {"samples": 512, "seed": 9}),
    ("probabilistic", {"confidence": Fraction(1, 3)}),
]

TENANTS = {
    "acme": {
        "model": "weighted",
        "params": {"weights": {"Flu": 2.5, "Mumps": 1.0}},
    },
    "globex": {"model": "sampling", "params": {"samples": 500, "seed": 7}},
}


@pytest.fixture(scope="module")
def small_pair() -> Bucketization:
    """Small enough for the oracle-based probabilistic model (sub-second)."""
    return Bucketization.from_value_lists(
        [["a", "a", "b", "c"], ["a", "b", "d", "d"]]
    )


class TestParamsAndTenants:
    @pytest.mark.parametrize("name,params", PARAMETRIC_CASES)
    def test_parametric_request_bit_identical_to_engine(
        self, client, figure3_like, small_pair, name, params
    ):
        # The probabilistic oracle is exponential in instance size; give it
        # the small instance and the closed-form models the Figure-3 one.
        b = small_pair if name == "probabilistic" else figure3_like
        served = client.disclosure(b, 1, model=name, params=params)
        direct = DisclosureEngine().evaluate(
            b, 1, model=get_adversary(name, **params)
        )
        assert served == direct
        # The parametric instance answers differently from the default one
        # (otherwise this test would pass with params silently dropped).
        assert served != client.disclosure(b, 1, model=name)

    def test_exact_fraction_confidence_survives_the_wire(
        self, client, small_pair
    ):
        q = Fraction(10**9 + 7, 10**9 + 9)
        served = client.disclosure(
            small_pair, 1, model="probabilistic",
            params={"confidence": q}, exact=True,
        )
        direct = DisclosureEngine(exact=True).evaluate(
            small_pair, 1, model=get_adversary("probabilistic", confidence=q)
        )
        assert served == direct
        assert isinstance(served, Fraction)
        # q cannot survive a float round trip: bit-equality with the direct
        # exact engine means the Fraction crossed the wire untouched.
        assert Fraction(float(q)) != q

    def test_distinct_params_never_share_a_cache_entry(self, small_pair):
        with BackgroundService(backend="serial", batch_window=0.0) as bg:
            client = bg.client()
            low = client.disclosure(
                small_pair, 1, model="probabilistic",
                params={"confidence": Fraction(1, 3)},
            )
            high = client.disclosure(
                small_pair, 1, model="probabilistic",
                params={"confidence": Fraction(2, 3)},
            )
            entries = client.stats()["engines"]["float"]["cache_entries"]
            # Two param sets, one question: two cache entries, two values.
            assert entries == 2
            assert low != high
            # A repeat is answered from cache, not recomputed.
            before = client.stats()["engines"]["float"]["stats"]["misses"]
            assert (
                client.disclosure(
                    small_pair, 1, model="probabilistic",
                    params={"confidence": Fraction(1, 3)},
                )
                == low
            )
            stats = client.stats()
            after = stats["engines"]["float"]["stats"]["misses"]
            assert after == before
            assert stats["engines"]["float"]["cache_entries"] == 2

    def test_compare_applies_params_to_every_model(self, client, small_pair):
        ks = [0, 1]
        params = {"confidence": Fraction(1, 2)}
        served = client.compare(
            small_pair, ks, models=("probabilistic",), params=params
        )
        direct = DisclosureEngine().compare(
            small_pair,
            ks,
            models=(get_adversary("probabilistic", **params),),
        )
        assert served.keys() == direct.keys()
        for name in direct:
            assert served[name] == direct[name]

    def test_models_exposes_machine_usable_param_schema(self, client):
        records = {m["name"]: m for m in client.models()}
        for record in records.values():
            assert "params_key" not in record
            for spec in record["params"]:
                assert {"name", "type", "default"} <= set(spec)
        assert records["implication"]["params"] == []
        by_name = {
            s["name"]: s["default"] for s in records["sampling"]["params"]
        }
        assert by_name == {"samples": 20000, "seed": 0}
        assert [s["name"] for s in records["weighted"]["params"]] == ["weights"]
        assert records["weighted"]["params"][0]["default"] is None
        assert records["probabilistic"]["params"][0]["default"] == 1

    def test_param_schema_round_trips_through_get_adversary(self, client):
        for record in client.models():
            defaults = {
                spec["name"]: spec["default"]
                for spec in record["params"]
                if not isinstance(spec["default"], str)
            }
            rebuilt = get_adversary(record["name"], **defaults)
            assert rebuilt.params_key() == get_adversary(record["name"]).params_key()

    def test_tenant_defaults_engage_and_answers_match_engine(
        self, tmp_path, figure3_like
    ):
        with BackgroundService(
            backend="serial",
            batch_window=0.0,
            tenants=TENANTS,
            cache_path=tmp_path / "fleet",
        ) as bg:
            client = bg.client()
            acme = client.disclosure(figure3_like, 2, tenant="acme")
            globex = client.disclosure(figure3_like, 2, tenant="globex")
            plain = client.disclosure(figure3_like, 2)
            engine = DisclosureEngine()
            assert acme == engine.evaluate(
                figure3_like,
                2,
                model=get_adversary("weighted", weights={"Flu": 2.5, "Mumps": 1.0}),
            )
            assert globex == engine.evaluate(
                figure3_like,
                2,
                model=get_adversary("sampling", samples=500, seed=7),
            )
            assert plain == engine.evaluate(figure3_like, 2)
            assert acme != plain  # the tenant default actually engaged

            # An explicit model on a tenant request suppresses the tenant's
            # default params (they belong to the *default* model).
            assert client.disclosure(
                figure3_like, 2, model="implication", tenant="acme"
            ) == plain

            stats = client.stats()
            assert set(stats["tenants"]) == {"acme", "globex"}
            acme_stats = stats["tenants"]["acme"]
            assert acme_stats["model"] == "weighted"
            assert acme_stats["requests"] >= 2
            assert acme_stats["engines"]["float"]["cache_entries"] >= 1
            assert stats["tenants"]["globex"]["requests"] >= 1

        # Per-tenant engines persist to per-tenant cache files.
        assert (tmp_path / "fleet.float.pkl").exists()
        assert (tmp_path / "fleet.acme.float.pkl").exists()
        assert (tmp_path / "fleet.globex.float.pkl").exists()

    def test_tenants_share_nothing(self, tmp_path, figure3_like):
        """The same explicit question through two tenants lands in two
        engines and two cache files — no cross-tenant sharing."""
        prefix = tmp_path / "iso"
        with BackgroundService(
            backend="serial",
            batch_window=0.0,
            tenants=TENANTS,
            cache_path=prefix,
        ) as bg:
            client = bg.client()
            question = dict(model="negation", exact=False)
            a = client.disclosure(figure3_like, 1, tenant="acme", **question)
            b = client.disclosure(figure3_like, 1, tenant="globex", **question)
            assert a == b  # same bits, computed independently
            stats = client.stats()["tenants"]
            assert stats["acme"]["engines"]["float"]["cache_entries"] == 1
            assert stats["globex"]["engines"]["float"]["cache_entries"] == 1
        acme_file = prefix.parent / "iso.acme.float.pkl"
        globex_file = prefix.parent / "iso.globex.float.pkl"
        assert acme_file.exists() and globex_file.exists()

        # A restarted service reloads each tenant's entries into *its*
        # engine only.
        with BackgroundService(
            backend="serial",
            batch_window=0.0,
            tenants=TENANTS,
            cache_path=prefix,
        ) as bg:
            client = bg.client()
            stats = client.stats()["tenants"]
            assert stats["acme"]["engines"]["float"]["loaded_entries"] == 1
            assert stats["globex"]["engines"]["float"]["loaded_entries"] == 1
            assert (
                client.disclosure(figure3_like, 1, tenant="acme", **question)
                == a
            )

    @pytest.mark.parametrize(
        "raw,match",
        [
            ("not json at all", "not JSON"),
            ({}, "non-empty"),
            ({"bad tenant!": {}}, "tenant id"),
            ({"t": {"model": "martian"}}, "unknown model"),
            ({"t": {"model": "sampling", "params": {"samples": 0}}}, "invalid"),
            ({"t": {"surprise": 1}}, "unknown keys"),
            ({"t": ["implication"]}, "must be an object"),
        ],
    )
    def test_load_tenants_rejects_bad_topologies(self, tmp_path, raw, match):
        source = raw
        if isinstance(raw, str):
            path = tmp_path / "tenants.json"
            path.write_text(raw, encoding="utf-8")
            source = path
        with pytest.raises(ValueError, match=match):
            load_tenants(source)

    def test_load_tenants_missing_file(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            load_tenants(tmp_path / "nope.json")

    def test_tenant_entry_may_omit_params(self):
        tenants = load_tenants({"t": {"model": "negation"}})
        assert tenants["t"] == {
            "model": "negation",
            "params": {},
            "params_wire": None,
        }


def test_background_service_cache_roundtrip(tmp_path, figure3_like):
    """The in-process lifecycle: stop saves, a fresh service loads."""
    prefix = tmp_path / "bg-cache"
    with BackgroundService(
        backend="serial", batch_window=0.0, cache_path=prefix
    ) as bg:
        first = bg.client().disclosure(figure3_like, 3, model="negation")
    assert (tmp_path / "bg-cache.float.pkl").exists()
    with BackgroundService(
        backend="serial", batch_window=0.0, cache_path=prefix
    ) as bg:
        client = bg.client()
        stats = client.stats()
        assert stats["engines"]["float"]["loaded_entries"] >= 1
        assert client.disclosure(figure3_like, 3, model="negation") == first
        after = client.stats()
        assert (
            after["engines"]["float"]["stats"]["cache_hits"]
            + after["service"]["cache_fast_hits"]
            >= 1
        )
