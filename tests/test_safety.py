"""(c,k)-safety and the caching SafetyChecker."""

from __future__ import annotations

import pytest

from repro.bucketization import Bucketization
from repro.core.disclosure import max_disclosure
from repro.core.safety import SafetyChecker, is_ck_safe


@pytest.fixture
def mixed():
    return Bucketization.from_value_lists(
        [["a", "b", "c", "d", "e", "f"], ["a", "a", "b", "c"]]
    )


class TestIsCkSafe:
    def test_strict_threshold(self, mixed):
        disclosure = max_disclosure(mixed, 1)
        assert not is_ck_safe(mixed, disclosure, 1)  # strictly-less-than
        assert is_ck_safe(mixed, disclosure + 1e-9, 1)

    def test_k0_safety_is_top_fraction(self, mixed):
        assert is_ck_safe(mixed, 0.51, 0)
        assert not is_ck_safe(mixed, 0.5, 0)

    def test_more_power_needs_weaker_thresholds(self, mixed):
        # Safety for a given c can only be lost, never gained, as k grows.
        for c in (0.3, 0.6, 0.9):
            safeness = [is_ck_safe(mixed, c, k) for k in range(5)]
            assert all(x or not y for x, y in zip(safeness, safeness[1:])), (
                c,
                safeness,
            )

    def test_threshold_validation(self, mixed):
        with pytest.raises(ValueError):
            is_ck_safe(mixed, 0.0, 1)
        with pytest.raises(ValueError):
            is_ck_safe(mixed, 1.5, 1)
        with pytest.raises(ValueError):
            is_ck_safe(mixed, 0.5, -1)


class TestSafetyChecker:
    def test_matches_direct_computation(self, mixed):
        checker = SafetyChecker(0.7, 2)
        assert checker.disclosure(mixed) == max_disclosure(mixed, 2)
        assert checker.is_safe(mixed) == is_ck_safe(mixed, 0.7, 2)

    def test_cache_hits_on_equal_signature_multisets(self, mixed):
        checker = SafetyChecker(0.7, 2)
        checker.disclosure(mixed)
        # The same value lists with different person ids: identical shape.
        clone = Bucketization.from_value_lists(
            [["a", "a", "b", "c"], ["a", "b", "c", "d", "e", "f"]]
        )
        checker.disclosure(clone)
        assert checker.cache_hits == 1
        assert checker.checks == 2

    def test_callable_protocol(self, mixed):
        checker = SafetyChecker(0.99, 0)
        assert checker(mixed) is True

    def test_validation(self):
        with pytest.raises(ValueError):
            SafetyChecker(0, 1)
        with pytest.raises(ValueError):
            SafetyChecker(0.5, -1)

    def test_exact_mode(self, mixed):
        from fractions import Fraction

        checker = SafetyChecker(0.7, 1, exact=True)
        assert isinstance(checker.disclosure(mixed), Fraction)
