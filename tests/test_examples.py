"""Smoke test every script under ``examples/``.

The examples are the package's front door and used to rot silently: nothing
executed them in CI. Each one runs here in a subprocess with the repo's
``src/`` on ``PYTHONPATH``, from a scratch working directory (so scripts
that write artifacts cannot dirty the repo), and must exit 0.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert EXAMPLES, f"no example scripts found under {EXAMPLES_DIR}"


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs_clean(script: Path, tmp_path):
    source = script.read_text()
    if any(
        token in source for token in ("generate_adult", "default_adult_table")
    ):
        pytest.importorskip(
            "numpy", reason="this example generates synthetic Adult rows"
        )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, str(script)],
        cwd=tmp_path,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script.name} exited {result.returncode}\n"
        f"--- stdout ---\n{result.stdout[-2000:]}\n"
        f"--- stderr ---\n{result.stderr[-2000:]}"
    )
    # A clean demo prints something and never tracebacks.
    assert result.stdout.strip(), f"{script.name} printed nothing"
    assert "Traceback" not in result.stderr
