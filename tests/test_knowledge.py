"""Atoms, basic implications, conjunctions, and the language helpers."""

from __future__ import annotations

import pytest

from repro.knowledge.atoms import Atom
from repro.knowledge.formulas import (
    TRUE,
    BasicImplication,
    Conjunction,
    negation,
    simple_implication,
)
from repro.knowledge.language import (
    count_basic_implications,
    enumerate_atoms,
    enumerate_same_consequent_conjunctions,
    enumerate_simple_conjunctions,
    enumerate_simple_implications,
    is_in_lk_basic,
)


class TestAtom:
    def test_holds_in(self):
        atom = Atom("Ed", "Flu")
        assert atom.holds_in({"Ed": "Flu", "Bob": "Mumps"})
        assert not atom.holds_in({"Ed": "Mumps"})

    def test_missing_person_raises(self):
        with pytest.raises(KeyError):
            Atom("Ed", "Flu").holds_in({"Bob": "Flu"})

    def test_equality_and_hash(self):
        assert Atom("p", "s") == Atom("p", "s")
        assert len({Atom("p", "s"), Atom("p", "s"), Atom("p", "t")}) == 2

    def test_str(self):
        assert str(Atom("Ed", "Flu")) == "t[Ed] = Flu"


class TestBasicImplication:
    def test_truth_table(self):
        imp = BasicImplication(
            antecedents=(Atom("H", "flu"),), consequents=(Atom("C", "flu"),)
        )
        assert imp.holds_in({"H": "flu", "C": "flu"})
        assert not imp.holds_in({"H": "flu", "C": "cold"})
        assert imp.holds_in({"H": "cold", "C": "cold"})

    def test_conjunction_antecedent_disjunction_consequent(self):
        imp = BasicImplication(
            antecedents=(Atom("a", 1), Atom("b", 1)),
            consequents=(Atom("c", 1), Atom("c", 2)),
        )
        # Both antecedents true, second consequent true.
        assert imp.holds_in({"a": 1, "b": 1, "c": 2})
        # Both antecedents true, no consequent true.
        assert not imp.holds_in({"a": 1, "b": 1, "c": 3})
        # One antecedent false: vacuously true.
        assert imp.holds_in({"a": 1, "b": 2, "c": 3})

    def test_requires_nonempty_sides(self):
        with pytest.raises(ValueError):
            BasicImplication(antecedents=(), consequents=(Atom("a", 1),))
        with pytest.raises(ValueError):
            BasicImplication(antecedents=(Atom("a", 1),), consequents=())

    def test_is_simple(self):
        assert simple_implication("a", 1, "b", 2).is_simple
        assert not BasicImplication(
            antecedents=(Atom("a", 1), Atom("b", 1)),
            consequents=(Atom("c", 1),),
        ).is_simple

    def test_persons_and_atoms(self):
        imp = simple_implication("a", 1, "b", 2)
        assert imp.persons() == frozenset({"a", "b"})
        assert imp.atoms() == (Atom("a", 1), Atom("b", 2))


class TestNegationEncoding:
    def test_negation_is_equivalent_to_not_atom(self):
        # Over worlds where each person has exactly one value, the
        # implication encoding of NOT(t=s) matches the direct negation.
        imp = negation("p", "flu", witness_value="cold")
        for value in ("flu", "cold", "cancer"):
            world = {"p": value}
            assert imp.holds_in(world) == (value != "flu")

    def test_witness_must_differ(self):
        with pytest.raises(ValueError):
            negation("p", "flu", witness_value="flu")


class TestConjunction:
    def test_true_constant(self):
        assert TRUE.k == 0
        assert TRUE.holds_in({"anyone": "anything"})

    def test_conjunction_semantics(self):
        phi = Conjunction(
            (
                simple_implication("a", 1, "b", 1),
                simple_implication("b", 1, "c", 1),
            )
        )
        assert phi.holds_in({"a": 1, "b": 1, "c": 1})
        assert not phi.holds_in({"a": 1, "b": 1, "c": 2})
        assert phi.holds_in({"a": 2, "b": 2, "c": 2})

    def test_and_also(self):
        phi = TRUE.and_also(simple_implication("a", 1, "b", 1))
        assert phi.k == 1
        assert is_in_lk_basic(phi, 1)
        assert not is_in_lk_basic(phi, 2)

    def test_str_renders(self):
        phi = TRUE.and_also(simple_implication("a", 1, "b", 1))
        assert "->" in str(phi)
        assert str(TRUE) == "TRUE"


class TestEnumeration:
    def test_atom_count(self):
        atoms = enumerate_atoms(["p", "q"], ["s", "t", "u"])
        assert len(atoms) == 6

    def test_simple_implication_count_excludes_tautologies(self):
        implications = enumerate_simple_implications(["p"], ["s", "t"])
        # 2 atoms -> 4 ordered pairs - 2 tautologies = 2.
        assert len(implications) == 2
        with_trivial = enumerate_simple_implications(
            ["p"], ["s", "t"], allow_trivial=True
        )
        assert len(with_trivial) == 4

    def test_conjunction_enumeration_is_multisets(self):
        pool = enumerate_simple_implications(["p"], ["s", "t"])
        conjunctions = list(enumerate_simple_conjunctions(["p"], ["s", "t"], 2))
        # multisets of size 2 from a pool of 2: C(3,2) = 3.
        assert len(pool) == 2 and len(conjunctions) == 3

    def test_same_consequent_enumeration(self):
        pairs = list(
            enumerate_same_consequent_conjunctions(["p", "q"], ["s", "t"], 1)
        )
        for consequent, formula in pairs:
            assert all(
                imp.consequents == (consequent,)
                for imp in formula.implications
            )

    def test_count_basic_implications(self):
        # 1 person, 2 values -> 2 atoms; antecedent/consequent sets of size
        # <= 1: 2 * 2 = 4.
        assert count_basic_implications(1, 2, 1, 1) == 4
        # size <= 2: (2 + 1) * (2 + 1) = 9.
        assert count_basic_implications(1, 2, 2, 2) == 9
