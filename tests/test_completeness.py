"""Theorem 3: any predicate is a conjunction of basic implications."""

from __future__ import annotations

import random

import pytest

from repro.bucketization import Bucketization
from repro.core.exact import enumerate_worlds, probability
from repro.knowledge.atoms import Atom
from repro.knowledge.completeness import (
    encode_predicate,
    implication_excluding_world,
)


@pytest.fixture
def two_buckets():
    return Bucketization.from_value_lists([["flu", "flu", "cold"], ["flu", "cancer"]])


class TestWorldExclusion:
    def test_false_exactly_at_the_world(self, two_buckets):
        worlds = list(enumerate_worlds(two_buckets))
        target = worlds[0]
        imp = implication_excluding_world(target, ["flu", "cold", "cancer"])
        assert not imp.holds_in(target)
        for world in worlds[1:]:
            if world != target:
                assert imp.holds_in(world)

    def test_needs_two_domain_values(self):
        with pytest.raises(ValueError):
            implication_excluding_world({"p": "flu"}, ["flu"])

    def test_empty_world_rejected(self):
        with pytest.raises(ValueError):
            implication_excluding_world({}, ["a", "b"])


class TestEncodePredicate:
    def predicates(self):
        return [
            ("person 0 has flu", lambda w: w[0] == "flu"),
            ("0 and 3 share a value", lambda w: w[0] == w[3]),
            ("at most one flu among 0,3", lambda w: [w[0], w[3]].count("flu") <= 1),
            ("tautology", lambda w: True),
        ]

    def test_encoding_holds_exactly_on_satisfying_worlds(self, two_buckets):
        worlds = list(enumerate_worlds(two_buckets))
        domain = ["flu", "cold", "cancer"]
        for name, predicate in self.predicates():
            phi = encode_predicate(worlds, predicate, domain)
            for world in worlds:
                assert phi.holds_in(world) == predicate(world), name

    def test_conditioning_matches_raw_predicate(self, two_buckets):
        worlds = list(enumerate_worlds(two_buckets))
        domain = ["flu", "cold", "cancer"]
        event = Atom(0, "flu")
        for name, predicate in self.predicates():
            phi = encode_predicate(worlds, predicate, domain)
            assert probability(two_buckets, event, phi) == probability(
                two_buckets, event, predicate
            ), name

    def test_tautology_encodes_as_empty_conjunction(self, two_buckets):
        worlds = list(enumerate_worlds(two_buckets))
        phi = encode_predicate(worlds, lambda w: True, ["flu", "cold", "cancer"])
        assert phi.k == 0

    def test_conjunct_count_equals_violations(self, two_buckets):
        worlds = list(enumerate_worlds(two_buckets))
        predicate = lambda w: w[0] == "flu"
        phi = encode_predicate(worlds, predicate, ["flu", "cold", "cancer"])
        assert phi.k == sum(1 for w in worlds if not predicate(w))

    def test_random_predicates_round_trip(self, two_buckets):
        worlds = list(enumerate_worlds(two_buckets))
        domain = ["flu", "cold", "cancer"]
        rng = random.Random(11)
        for _ in range(10):
            chosen = frozenset(
                i for i in range(len(worlds)) if rng.random() < 0.5
            )
            predicate = lambda w, _c=chosen: worlds.index(w) in _c
            phi = encode_predicate(worlds, predicate, domain)
            for index, world in enumerate(worlds):
                assert phi.holds_in(world) == (index in chosen)
