"""Wong et al.'s distribution-based adversary (`distribution` plugin).

Checks the closed form, its documented properties (k=0 baseline,
monotonicity under bucket merging, growth in k, exact arithmetic), and the
plugin's reach: registry, engine caching on the signature plane, compare(),
witnesses, suppression, and the CLI's ``--adversary`` choices.
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bucketization import Bucketization
from repro.cli import build_parser
from repro.engine import (
    DisclosureEngine,
    DistributionAdversary,
    available_adversaries,
    get_adversary,
)
from repro.engine.models_distribution import DistributionWitness

small_bucketizations = st.lists(
    st.lists(st.sampled_from("abcde"), min_size=1, max_size=6),
    min_size=1,
    max_size=4,
).map(Bucketization.from_value_lists)


class TestClosedForm:
    def test_hand_computed_example(self):
        # Bucket [a, a, b, c]: n=4, top=2. r = k+1.
        b = Bucketization.from_value_lists([["a", "a", "b", "c"]])
        engine = DisclosureEngine(exact=True)
        assert engine.evaluate(b, 0, model="distribution") == Fraction(1, 2)
        # k=2 -> r=3: 3*2 / (3*2 + 2) = 3/4.
        assert engine.evaluate(b, 2, model="distribution") == Fraction(3, 4)

    def test_k0_equals_zero_knowledge_baseline(self):
        engine = DisclosureEngine()
        for values in (["a", "a", "b"], ["x", "y", "z", "z", "z"]):
            b = Bucketization.from_value_lists([values])
            assert engine.evaluate(b, 0, model="distribution") == engine.evaluate(
                b, 0, model="implication"
            )

    @given(small_bucketizations, st.integers(min_value=0, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_bounded_and_nondecreasing_in_k(self, bucketization, k):
        engine = DisclosureEngine()
        value = engine.evaluate(bucketization, k, model="distribution")
        assert 0 < value <= 1
        nxt = engine.evaluate(bucketization, k + 1, model="distribution")
        assert nxt >= value

    @given(small_bucketizations, st.integers(min_value=0, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_monotone_under_bucket_merging(self, bucketization, k):
        """Theorem-14-style monotonicity: merging buckets never increases
        the worst case, so lattice pruning stays sound."""
        if len(bucketization) < 2:
            return
        engine = DisclosureEngine(exact=True)
        merged = bucketization.merge_buckets(range(len(bucketization)))
        fine = engine.evaluate(bucketization, k, model="distribution")
        coarse = engine.evaluate(merged, k, model="distribution")
        assert coarse <= fine

    def test_fixed_tilt_parameter(self):
        b = Bucketization.from_value_lists([["a", "a", "b", "c"]])
        engine = DisclosureEngine(exact=True)
        fixed = DistributionAdversary(tilt=3)
        # Tilt fixed at 3 regardless of k.
        assert engine.evaluate(b, 0, model=fixed) == Fraction(3, 4)
        assert engine.evaluate(b, 7, model=fixed) == Fraction(3, 4)
        with pytest.raises(ValueError):
            DistributionAdversary(tilt=0.5)

    def test_params_key_distinguishes_tilts(self):
        engine = DisclosureEngine()
        b = Bucketization.from_value_lists([["a", "a", "b"]])
        default = engine.evaluate(b, 3, model="distribution")
        fixed = engine.evaluate(b, 3, model=DistributionAdversary(tilt=1))
        assert fixed == pytest.approx(2 / 3)
        assert default > fixed  # separate cache entries, separate answers


class TestPluginReach:
    def test_registered(self):
        assert "distribution" in available_adversaries()
        model = get_adversary("distribution")
        assert model.signature_decomposable()
        assert model.monotone

    def test_compare_includes_distribution(self):
        b = Bucketization.from_value_lists([["a", "a", "b", "c", "d"]])
        engine = DisclosureEngine()
        result = engine.compare(
            b, [0, 1, 2], models=("implication", "distribution")
        )
        assert set(result) == {"implication", "distribution"}

    def test_witness_matches_disclosure(self):
        b = Bucketization.from_value_lists(
            [["a", "a", "b"], ["x", "x", "x", "y"]]
        )
        engine = DisclosureEngine()
        witness = engine.witness(b, 2, model="distribution")
        assert isinstance(witness, DistributionWitness)
        assert witness.disclosure == engine.evaluate(b, 2, model="distribution")
        assert witness.bucket_index == 1  # the (3,1) bucket dominates
        assert witness.target_value == "x"
        assert witness.tilt == 3.0

    def test_suppression_accepts_distribution(self):
        from repro.bucketization import suppress_to_safety

        b = Bucketization.from_value_lists([["a", "a", "a", "b"]])
        result = suppress_to_safety(b, c=0.8, k=1, model="distribution")
        engine = DisclosureEngine()
        assert result.bucketization is not None
        assert engine.evaluate(result.bucketization, 1, model="distribution") < 0.8

    def test_cli_adversary_choice(self):
        parser = build_parser()
        args = parser.parse_args(
            ["search", "--adversary", "distribution", "--c", "0.9"]
        )
        assert args.adversary == "distribution"
