"""Every number and claim the paper states, replayed against this library.

This file is the reproduction's checklist: Section 1's Ed/Alice story,
Section 2.3's 10/19 example (and the documented discrepancy), Section 3.2's
Lemmas 10/11 on concrete instances, Theorem 9's special form, Theorem 14's
monotonicity, and the Section 3.3.2 single-bucket formula.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations

import pytest

from repro.bucketization import Bucketization
from repro.core.disclosure import max_disclosure
from repro.core.exact import (
    exact_disclosure_risk,
    exact_max_disclosure_simple,
    probability,
)
from repro.core.minimize1 import Minimize1Solver
from repro.knowledge.atoms import Atom
from repro.knowledge.formulas import Conjunction, negation, simple_implication


class TestSection1EdStory:
    """Alice attacks Ed with successively more knowledge (Introduction)."""

    def test_no_knowledge(self, figure3):
        assert probability(figure3, Atom("Ed", "Lung Cancer")) == Fraction(2, 5)

    def test_after_ruling_out_mumps(self, figure3):
        phi = negation("Ed", "Mumps", witness_value="Flu")
        assert probability(figure3, Atom("Ed", "Lung Cancer"), phi) == Fraction(
            1, 2
        )

    def test_after_also_ruling_out_flu(self, figure3):
        phi = Conjunction(
            (
                negation("Ed", "Mumps", witness_value="Flu"),
                negation("Ed", "Flu", witness_value="Lung Cancer"),
            )
        )
        assert probability(figure3, Atom("Ed", "Lung Cancer"), phi) == 1

    def test_charlie_hannah_flu_shot_story(self, figure3):
        # "This knowledge allows her to update her probability that Charlie
        # has the flu to 10/19."
        assert probability(figure3, Atom("Charlie", "Flu")) == Fraction(2, 5)
        phi = simple_implication("Hannah", "Flu", "Charlie", "Flu")
        assert probability(figure3, Atom("Charlie", "Flu"), phi) == Fraction(
            10, 19
        )


class TestSection23MaxDisclosureExample:
    """The paper says the L^1 max disclosure of Figure 3 is 10/19 via the
    cross-bucket flu implication. Its own Definitions admit same-person
    implications (the negation encoding of Section 2.2 IS one), and those
    reach 2/3 — which MINIMIZE1/2, brute force, and the exact engine all
    agree on. Documented in DESIGN.md."""

    def test_cross_bucket_formula_reaches_10_19(self, figure3):
        phi = simple_implication("Hannah", "Flu", "Charlie", "Flu")
        assert exact_disclosure_risk(figure3, phi) == Fraction(10, 19)

    def test_true_maximum_is_two_thirds(self, figure3):
        assert max_disclosure(figure3, 1, exact=True) == Fraction(2, 3)
        assert exact_max_disclosure_simple(figure3, 1) == Fraction(2, 3)

    def test_achieved_by_same_person_implication(self, figure3):
        phi = simple_implication("Ed", "Lung Cancer", "Ed", "Flu")
        assert exact_disclosure_risk(figure3, phi) == Fraction(2, 3)


class TestLemma10:
    """Replacing all consequents by the disclosed atom never lowers the
    conditional probability."""

    @pytest.mark.parametrize(
        "antecedents, consequents",
        [
            ((("Ed", "Flu"),), (("Charlie", "Flu"),)),
            ((("Hannah", "Flu"),), (("Gloria", "Flu"),)),
            ((("Dave", "Mumps"),), (("Karen", "Heart Disease"),)),
        ],
    )
    def test_consequent_replacement(self, figure3, antecedents, consequents):
        target = Atom("Bob", "Flu")
        original = Conjunction(
            tuple(
                simple_implication(a[0], a[1], b[0], b[1])
                for a, b in zip(antecedents, consequents)
            )
        )
        replaced = Conjunction(
            tuple(
                simple_implication(a[0], a[1], target.person, target.value)
                for a in antecedents
            )
        )
        p_original = probability(figure3, target, original)
        p_replaced = probability(figure3, target, replaced)
        assert p_replaced >= p_original


class TestLemma11:
    """Conjunctive antecedents can be replaced by single atoms without
    lowering the maximum: verify the stronger statement that for each
    conjunctive-antecedent formula some atomic-antecedent formula does at
    least as well."""

    def test_atomic_antecedent_dominates(self, figure3):
        from repro.knowledge.formulas import BasicImplication

        target = Atom("Ed", "Flu")
        conj = BasicImplication(
            antecedents=(Atom("Bob", "Mumps"), Atom("Charlie", "Lung Cancer")),
            consequents=(target,),
        )
        p_conj = probability(figure3, target, Conjunction((conj,)))
        atoms = [
            Atom(person, value)
            for person in figure3.person_ids
            for value in ("Flu", "Lung Cancer", "Mumps")
            if Atom(person, value) != target
        ]
        best_atomic = max(
            probability(
                figure3,
                target,
                Conjunction(
                    (
                        BasicImplication(
                            antecedents=(atom,), consequents=(target,)
                        ),
                    )
                ),
            )
            for atom in atoms
        )
        assert best_atomic >= p_conj


class TestTheorem9:
    """Among all sets of k simple implications, some same-consequent set
    attains the maximum (checked exhaustively on a small instance)."""

    def test_same_consequent_attains_max(self):
        bucketization = Bucketization.from_value_lists([["a", "a", "b"], ["c", "b"]])
        for k in (1, 2):
            free = exact_max_disclosure_simple(bucketization, k)
            restricted = exact_max_disclosure_simple(
                bucketization, k, same_consequent_only=True
            )
            assert restricted == free


class TestTheorem14Monotonicity:
    """Merging buckets (moving up the partial order) never increases the
    maximum disclosure."""

    @pytest.mark.parametrize("k", [0, 1, 2, 3, 5])
    def test_merge_never_increases(self, figure3, k):
        merged = figure3.merge_buckets([0, 1])
        assert max_disclosure(merged, k, exact=True) <= max_disclosure(
            figure3, k, exact=True
        )

    def test_full_merge_of_many_buckets(self, k=2):
        fine = Bucketization.from_value_lists(
            [["a", "b"], ["a", "c"], ["b", "c"], ["a", "a"]]
        )
        for indices in combinations(range(4), 2):
            coarser = fine.merge_buckets(indices)
            assert max_disclosure(coarser, k, exact=True) <= max_disclosure(
                fine, k, exact=True
            )
            assert fine.refines(coarser)


class TestSection332SingleBucketFormula:
    """min ratio within one bucket = MINIMIZE1(b, k+1) * n_b / n_b(s0)."""

    @pytest.mark.parametrize("signature", [(2, 2, 1), (3, 1, 1), (4, 2)])
    @pytest.mark.parametrize("k", [0, 1, 2])
    def test_formula(self, signature, k):
        from repro.core.minimize2 import min_ratio_table

        solver = Minimize1Solver(exact=True)
        expected = solver.minimum(signature, k + 1) * Fraction(
            sum(signature), signature[0]
        )
        assert min_ratio_table([signature], k, exact=True)[k] == expected


class TestFigure2Equivalence:
    """Under full identification information, the 5-anonymous generalized
    table (Figure 2) and the bucketization (Figure 3) carry the same
    information: grouping the original table by its generalized QI yields
    exactly the Figure 3 buckets."""

    def test_generalized_groups_match_buckets(self, figure1_table, figure3):
        # Figure 2 generalizes Zip->1485*, Age->2*, keeps Sex: buckets = Sex.
        groups = {}
        for record in figure1_table:
            groups.setdefault(record["Sex"], []).append(record["Name"])
        partition = frozenset(frozenset(v) for v in groups.values())
        assert partition == figure3.partition_frozen()
