"""Registry-wide adversary conformance suite.

Every test here is parametrized over **every** model in
:func:`repro.engine.base.available_adversaries` and asserts only the shared
:class:`~repro.engine.base.AdversaryModel` contract — gated exclusively by
the contract flags the models themselves declare (``supports_exact``,
``supports_witness``, ``unbounded_scale``, ``monotone``), never by model
name. A future plugin is therefore tested for free the moment it registers:
if it declares its flags honestly, this suite passes; if it violates the
contract behind a flag, this suite catches it.

The shared contract:

- disclosure values are finite, non-negative, and (for probability-scaled
  models) at most 1, at every attacker power;
- the worst case is monotone non-increasing under bucket merging (the
  Theorem 14 direction) for every model that declares ``monotone``;
- a model offering witnesses returns objects whose uniform ``disclosure``
  attribute matches the evaluated worst case; a model that does not offer
  them raises :class:`NotImplementedError` (so consumers can rely on the
  flag);
- exact (Fraction) and float evaluation agree within float tolerance for
  models that support exact arithmetic — and every model is consistent
  between the two engine modes regardless;
- cache keys are stable across a ``save_cache``/``load_cache`` round trip:
  a fresh engine that loads the file answers from the cache without
  recomputing.
"""

from __future__ import annotations

import math
from fractions import Fraction

import pytest

from repro.bucketization import Bucketization
from repro.engine import (
    DisclosureEngine,
    available_adversaries,
    canonical_params,
    get_adversary,
    param_schema,
)

#: Small enough for the oracle-based models — including on the *merged*
#: bucketization, whose single bucket drives the world count — yet skewed
#: and overlapping enough to be non-trivial for every registered model.
VALUE_LISTS = (
    ("Flu", "Flu", "Lung Cancer", "Mumps"),
    ("Flu", "Breast Cancer", "Heart Disease"),
)

KS = (0, 1, 3)

MODELS = available_adversaries()


@pytest.fixture(scope="module")
def bucketization() -> Bucketization:
    return Bucketization.from_value_lists([list(v) for v in VALUE_LISTS])


@pytest.fixture(scope="module")
def merged(bucketization) -> Bucketization:
    """The strictly coarser bucketization (one merged bucket)."""
    return bucketization.merge_buckets([0, 1])


# Module-scoped engines: the shared cache makes repeat evaluations across
# tests free (the persistence test builds its own engines on purpose).
@pytest.fixture(scope="module")
def float_engine() -> DisclosureEngine:
    return DisclosureEngine(exact=False)


@pytest.fixture(scope="module")
def exact_engine() -> DisclosureEngine:
    return DisclosureEngine(exact=True)


def test_registry_is_populated():
    # The suite is only meaningful if the registry import side effects ran.
    assert set(MODELS) >= {"implication", "negation"}


@pytest.mark.parametrize("name", MODELS)
class TestAdversaryConformance:
    def test_disclosure_bounded(self, name, bucketization, float_engine):
        engine = float_engine
        model = engine.model(name)
        for k in KS:
            value = engine.evaluate(bucketization, k, model=name)
            value = float(value)
            assert math.isfinite(value)
            assert value >= 0.0
            if not model.unbounded_scale:
                assert value <= 1.0 + 1e-12

    def test_monotone_under_bucket_merging(
        self, name, bucketization, merged, float_engine
    ):
        engine = float_engine
        model = engine.model(name)
        if not model.monotone:
            pytest.skip(f"{name} declares monotone=False (estimator noise)")
        for k in KS:
            fine = float(engine.evaluate(bucketization, k, model=name))
            coarse = float(engine.evaluate(merged, k, model=name))
            assert coarse <= fine + 1e-9, (
                f"{name}: merging buckets increased disclosure at k={k} "
                f"({fine} -> {coarse})"
            )

    def test_witness_contract(self, name, bucketization, float_engine):
        engine = float_engine
        model = engine.model(name)
        k = 2
        if not model.supports_witness:
            with pytest.raises(NotImplementedError):
                engine.witness(bucketization, k, model=name)
            return
        witness = engine.witness(bucketization, k, model=name)
        value = engine.evaluate(bucketization, k, model=name)
        assert hasattr(witness, "disclosure")
        assert float(witness.disclosure) == pytest.approx(
            float(value), abs=1e-9
        )

    def test_float_exact_agreement(
        self, name, bucketization, float_engine, exact_engine
    ):
        model = float_engine.model(name)
        for k in KS:
            float_value = float_engine.evaluate(bucketization, k, model=name)
            exact_value = exact_engine.evaluate(bucketization, k, model=name)
            assert isinstance(float_value, (int, float))
            if model.supports_exact:
                assert isinstance(exact_value, (Fraction, int))
            # Either way the two modes must describe the same worst case.
            assert float(exact_value) == pytest.approx(
                float(float_value), abs=1e-9
            )

    def test_cache_key_stable_across_persistence(
        self, name, bucketization, tmp_path
    ):
        writer = DisclosureEngine()
        values = {
            k: writer.evaluate(bucketization, k, model=name) for k in KS
        }
        path = tmp_path / f"{name}.cache.pkl"
        assert writer.save_cache(path) >= len(KS)

        reader = DisclosureEngine()
        assert reader.load_cache(path) >= len(KS)
        before = reader.stats.cache_hits
        for k in KS:
            assert reader.evaluate(bucketization, k, model=name) == values[k]
        # Every lookup must have been answered from the loaded cache: the
        # persisted key (plane- or raw-tagged) equals the freshly computed
        # one in a different engine with a different signature plane.
        assert reader.stats.cache_hits == before + len(KS)


@pytest.mark.parametrize("name", MODELS)
def test_engine_registry_instances_are_reused(name):
    """`engine.model(name)` must return one instance per name so default
    parameterizations share cache identity (part of the cache-key
    contract)."""
    engine = DisclosureEngine()
    assert engine.model(name) is engine.model(name)
    assert engine.model(name).name == name
    assert get_adversary(name).params_key() == engine.model(name).params_key()


# ---------------------------------------------------------------------------
# Parametric identity: exact params, the schema, and the engine's memo
# ---------------------------------------------------------------------------
class TestParametricIdentity:
    def test_probabilistic_exact_confidence_survives_untouched(self):
        """Regression: ``limit_denominator`` must only touch float inputs.

        An exact Fraction with a denominator past the float cap is a
        legitimate threat model; rounding it would silently evaluate a
        *different* adversary (and alias its cache identity)."""
        q = Fraction(10**9 + 7, 10**9 + 9)
        model = get_adversary("probabilistic", confidence=q)
        assert model.confidence == q
        assert model.params_key() == (q,)

    def test_probabilistic_float_confidence_is_denoised(self):
        # Floats carry binary-repr noise: 0.9 is not 9/10 — the cap turns
        # it back into the rational the caller meant.
        model = get_adversary("probabilistic", confidence=0.9)
        assert model.confidence == Fraction(9, 10)
        assert get_adversary(
            "probabilistic", confidence=Fraction(9, 10)
        ).params_key() == model.params_key()

    @pytest.mark.parametrize("name", MODELS)
    def test_param_schema_round_trips_through_get_adversary(self, name):
        schema = param_schema(name)
        for spec in schema:
            assert set(spec) == {"name", "type", "default"}
            assert spec["name"].isidentifier()
        defaults = {spec["name"]: spec["default"] for spec in schema}
        rebuilt = get_adversary(name, **defaults)
        assert rebuilt.params_key() == get_adversary(name).params_key()

    def test_canonical_params_is_order_insensitive(self):
        a = canonical_params({"weights": {"b": 1.0, "a": 2.0}, "x": 1})
        b = canonical_params({"x": 1, "weights": {"a": 2.0, "b": 1.0}})
        assert a == b
        assert canonical_params({}) == ()
        assert a != canonical_params({"weights": {"a": 2.0, "b": 1.5}, "x": 1})

    def test_engine_memoizes_by_canonical_params(self):
        engine = DisclosureEngine()
        first = engine.model("weighted", {"weights": {"b": 1.0, "a": 2.0}})
        second = engine.model("weighted", {"weights": {"a": 2.0, "b": 1.0}})
        assert first is second  # key-order in the request is irrelevant
        assert first is not engine.model("weighted")
        low = engine.model("probabilistic", {"confidence": Fraction(1, 3)})
        high = engine.model("probabilistic", {"confidence": Fraction(2, 3)})
        assert low is not high
        assert low is engine.model(
            "probabilistic", {"confidence": Fraction(1, 3)}
        )

    def test_engine_rejects_params_with_an_instance(self):
        engine = DisclosureEngine()
        instance = get_adversary("negation")
        assert engine.model(instance) is instance
        with pytest.raises(ValueError, match="model \\*name\\*"):
            engine.model(instance, {"x": 1})

    def test_distinct_params_get_distinct_cache_entries(self, bucketization):
        engine = DisclosureEngine()
        cheap = engine.evaluate(
            bucketization,
            1,
            model=engine.model("weighted", {"weights": {"Flu": 1.0}}),
        )
        dear = engine.evaluate(
            bucketization,
            1,
            model=engine.model("weighted", {"weights": {"Flu": 4.0}}),
        )
        assert engine.cache_size() == 2
        assert cheap != dear
