"""Utility metrics and entropy statistics."""

from __future__ import annotations

import math

import pytest

from repro.bucketization import Bucketization
from repro.utility.entropy import bucket_entropies, min_bucket_entropy
from repro.utility.metrics import (
    average_bucket_size,
    discernibility,
    generalization_height,
    precision,
)


@pytest.fixture
def buckets():
    return Bucketization.from_value_lists([["a", "b"], ["a", "b", "c", "c"]])


class TestMetrics:
    def test_discernibility(self, buckets):
        assert discernibility(buckets) == 4 + 16

    def test_discernibility_extremes(self):
        singletons = Bucketization.from_value_lists([["a"], ["b"], ["c"]])
        assert discernibility(singletons) == 3
        merged = Bucketization.from_value_lists([["a", "b", "c"]])
        assert discernibility(merged) == 9

    def test_average_bucket_size(self, buckets):
        assert average_bucket_size(buckets) == 3.0

    def test_generalization_height(self):
        assert generalization_height((3, 2, 1, 1)) == 7
        assert generalization_height((0, 0, 0, 0)) == 0

    def test_precision_adult(self, adult_lattice):
        assert precision(adult_lattice, (0, 0, 0, 0)) == 1.0
        assert precision(adult_lattice, (5, 2, 1, 1)) == 0.0
        # Half-generalized age only: 1 - (3/5)/4 = 0.85.
        assert precision(adult_lattice, (3, 0, 0, 0)) == pytest.approx(0.85)

    def test_precision_monotone_along_chain(self, adult_lattice):
        chain = adult_lattice.default_chain()
        values = [precision(adult_lattice, node) for node in chain]
        assert all(x >= y for x, y in zip(values, values[1:]))


class TestEntropy:
    def test_bucket_entropies(self, buckets):
        values = bucket_entropies(buckets)
        assert values[0] == pytest.approx(math.log(2))
        assert values[1] == pytest.approx(
            -(0.25 * math.log(0.25) * 2 + 0.5 * math.log(0.5))
        )

    def test_min_bucket_entropy(self, buckets):
        assert min_bucket_entropy(buckets) == pytest.approx(
            min(bucket_entropies(buckets))
        )

    def test_base_conversion(self, buckets):
        natural = min_bucket_entropy(buckets)
        bits = min_bucket_entropy(buckets, base=2)
        assert bits == pytest.approx(natural / math.log(2))

    def test_constant_bucket_zero_entropy(self):
        b = Bucketization.from_value_lists([["x", "x", "x"]])
        assert min_bucket_entropy(b) == 0.0

    def test_uniform_maximizes_entropy(self):
        uniform = Bucketization.from_value_lists([["a", "b", "c", "d"]])
        skewed = Bucketization.from_value_lists([["a", "a", "a", "b"]])
        assert min_bucket_entropy(uniform) > min_bucket_entropy(skewed)
