"""Property tests for the service wire format.

The wire's one promise is **losslessness**: any value an engine can
produce crosses JSON bit-identically (floats via repr round-trip,
Fractions as ``"num/den"`` strings) — and anything else is rejected with
a clear :class:`ValueError`, never silently corrupted. Non-finite floats
are the sharp edge: ``nan``/``inf`` survive Python's ``json`` emitter as
the non-standard ``NaN``/``Infinity`` tokens that strict JSON consumers
reject, so :func:`~repro.service.wire.encode_value` refuses them at
encode time and the endpoint layer turns that into a 400.
"""

from __future__ import annotations

import json
import struct
from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.service import BackgroundService, ServiceError
from repro.service.wire import (
    bucketization_from_payload,
    decode_params,
    decode_series,
    decode_value,
    encode_params,
    encode_series,
    encode_value,
)

finite_floats = st.floats(allow_nan=False, allow_infinity=False)
fractions = st.fractions()


def _bits(value: float) -> bytes:
    return struct.pack("<d", value)


# ---------------------------------------------------------------------------
# Round-trip properties (through a real JSON serialization, as on the wire)
# ---------------------------------------------------------------------------
class TestRoundTrip:
    @given(finite_floats)
    def test_floats_bit_identical(self, value):
        over_the_wire = json.loads(json.dumps(encode_value(value)))
        decoded = decode_value(over_the_wire)
        assert _bits(decoded) == _bits(value)

    @given(fractions)
    def test_fractions_exact(self, value):
        over_the_wire = json.loads(json.dumps(encode_value(value)))
        decoded = decode_value(over_the_wire)
        assert isinstance(decoded, Fraction)
        assert decoded == value

    @given(st.fractions(max_denominator=10**6))
    def test_negative_fractions_survive(self, value):
        assert decode_value(encode_value(-abs(value))) == -abs(value)

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=50),
            st.one_of(finite_floats, fractions),
            min_size=1,
            max_size=8,
        )
    )
    def test_series_round_trip(self, series):
        over_the_wire = json.loads(json.dumps(encode_series(series)))
        decoded = decode_series(over_the_wire)
        assert set(decoded) == set(series)
        for k, value in series.items():
            if isinstance(value, Fraction):
                assert decoded[k] == value
            else:
                assert _bits(decoded[k]) == _bits(value)

    def test_integer_payload_becomes_float(self):
        decoded = decode_value(1)
        assert isinstance(decoded, float) and decoded == 1.0


# ---------------------------------------------------------------------------
# Non-finite floats are rejected at encode time
# ---------------------------------------------------------------------------
class TestNonFinite:
    @pytest.mark.parametrize(
        "value", [float("nan"), float("inf"), float("-inf")]
    )
    def test_encode_rejects(self, value):
        with pytest.raises(ValueError, match="non-finite"):
            encode_value(value)

    @pytest.mark.parametrize(
        "value", [float("nan"), float("inf"), float("-inf")]
    )
    def test_decode_rejects(self, value):
        with pytest.raises(ValueError, match="non-finite"):
            decode_value(value)

    def test_endpoint_layer_maps_encode_error_to_400(self, monkeypatch):
        """A model that somehow produces nan must surface as a clean 400,
        not a 500 or a broken-JSON body."""
        import repro.service.server as server_module

        def bad_encode(value):
            raise ValueError("non-finite value nan cannot cross the wire")

        b = [["flu", "flu", "cold", "mumps"]]
        with BackgroundService(backend="serial", batch_window=0.0) as bg:
            client = bg.client()
            monkeypatch.setattr(server_module, "encode_value", bad_encode)
            with pytest.raises(ServiceError) as excinfo:
                client.request(
                    "POST", "/disclosure", {"buckets": b, "k": 1}
                )
            assert excinfo.value.status == 400
            assert "non-finite" in excinfo.value.message
            monkeypatch.undo()
            # The service is not poisoned: the same request now succeeds.
            answer = client.request(
                "POST", "/disclosure", {"buckets": b, "k": 1}
            )
            assert answer["value"] == 0.75


# ---------------------------------------------------------------------------
# Malformed payloads decode to clear errors
# ---------------------------------------------------------------------------
class TestMalformedPayloads:
    @pytest.mark.parametrize(
        "payload",
        [
            "not-a-fraction",
            "1/0",  # zero denominator must not raise ZeroDivisionError
            "one/two",
            "1/2/3",
            "",
            True,
            None,
            [1, 2],
            {"num": 1, "den": 2},
        ],
    )
    def test_decode_value_raises_value_error(self, payload):
        with pytest.raises(ValueError):
            decode_value(payload)

    def test_decode_series_bad_key(self):
        with pytest.raises(ValueError):
            decode_series({"not-an-int": 0.5})

    @pytest.mark.parametrize(
        "buckets",
        [
            "nope",
            [],
            [[]],
            [["a"], []],
            [[{"v": 1}]],
            [["a"], "b"],
        ],
    )
    def test_bucketization_from_payload_raises(self, buckets):
        with pytest.raises(ValueError):
            bucketization_from_payload(buckets)

    def test_valid_fraction_strings_still_decode(self):
        assert decode_value("3/4") == Fraction(3, 4)
        assert decode_value("-7/2") == Fraction(-7, 2)
        assert decode_value("5") == Fraction(5)


# ---------------------------------------------------------------------------
# The params codec: model constructor kwargs cross the wire losslessly
# ---------------------------------------------------------------------------
class TestParamsCodec:
    def test_exact_fraction_round_trips_untouched(self):
        # Denominator beyond any limit_denominator cap: the codec must not
        # approximate — an exact confidence IS the threat model.
        q = Fraction(10**9 + 7, 10**9 + 9)
        params = {"confidence": q}
        over_the_wire = json.loads(json.dumps(encode_params(params)))
        decoded = decode_params(over_the_wire)
        assert decoded == {"confidence": q}
        assert isinstance(decoded["confidence"], Fraction)

    @given(finite_floats)
    def test_float_params_bit_identical(self, value):
        over_the_wire = json.loads(json.dumps(encode_params({"x": value})))
        decoded = decode_params(over_the_wire)
        assert _bits(decoded["x"]) == _bits(value)

    def test_ints_stay_ints(self):
        decoded = decode_params(
            json.loads(json.dumps(encode_params({"samples": 512, "seed": 7})))
        )
        assert decoded == {"samples": 512, "seed": 7}
        assert isinstance(decoded["samples"], int)
        assert isinstance(decoded["seed"], int)

    def test_weight_maps_round_trip(self):
        params = {"weights": {"a": 2.5, "b": Fraction(1, 3), "c": 1}}
        decoded = decode_params(
            json.loads(json.dumps(encode_params(params)))
        )
        assert decoded["weights"]["a"] == 2.5
        assert decoded["weights"]["b"] == Fraction(1, 3)
        assert decoded["weights"]["c"] == 1

    def test_none_passes_through(self):
        assert decode_params(encode_params({"weights": None})) == {
            "weights": None
        }

    @pytest.mark.parametrize(
        "params",
        [
            {"flag": True},  # bools are ambiguous on the wire
            {"x": float("nan")},
            {"x": float("inf")},
            {"x": object()},
            {"x": [1, 2]},
        ],
    )
    def test_encode_rejects(self, params):
        with pytest.raises(ValueError):
            encode_params(params)

    def test_encode_rejects_non_mapping(self):
        with pytest.raises(ValueError):
            encode_params([("a", 1)])

    @pytest.mark.parametrize(
        "raw",
        [
            5,  # not an object
            [1, 2],
            "confidence=1/2",
            {"confidence": "one/two"},  # malformed fraction string
            {"confidence": "1/0"},  # zero denominator
            {"flag": True},
            {"x": [1, 2]},
            {"x": float("inf")},
        ],
    )
    def test_decode_rejects(self, raw):
        with pytest.raises(ValueError):
            decode_params(raw)
