"""The synthetic Adult generator and the CSV loaders."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.data.adult import (
    ADULT_SCHEMA,
    MARITAL_STATUSES,
    OCCUPATIONS,
    RACES,
    SEXES,
    generate_adult,
)
from repro.core.kernel import numpy_available
from repro.data.loader import load_adult_file, load_csv, save_csv
from repro.errors import SchemaError

requires_numpy = pytest.mark.skipif(
    not numpy_available(),
    reason="the synthetic Adult generator needs numpy (repro[fast])",
)


@requires_numpy
class TestGenerator:
    def test_deterministic(self):
        a = generate_adult(500, seed=3)
        b = generate_adult(500, seed=3)
        assert a == b

    def test_seed_changes_data(self):
        a = generate_adult(500, seed=3)
        b = generate_adult(500, seed=4)
        assert a != b

    def test_schema_and_domains(self, small_adult):
        assert small_adult.schema == ADULT_SCHEMA
        for record in small_adult:
            assert 17 <= record["age"] <= 90
            assert record["marital_status"] in MARITAL_STATUSES
            assert record["race"] in RACES
            assert record["sex"] in SEXES
            assert record["occupation"] in OCCUPATIONS

    def test_marginals_roughly_match_adult(self):
        table = generate_adult(20000, seed=1)
        n = len(table)
        sexes = Counter(r["sex"] for r in table)
        assert sexes["Male"] / n == pytest.approx(0.675, abs=0.02)
        races = Counter(r["race"] for r in table)
        assert races["White"] / n == pytest.approx(0.86, abs=0.02)
        marital = Counter(r["marital_status"] for r in table)
        assert marital["Married-civ-spouse"] / n == pytest.approx(0.45, abs=0.05)
        assert marital["Never-married"] / n == pytest.approx(0.33, abs=0.05)

    def test_age_occupation_correlation(self):
        # Young workers skew to service occupations (drives Figure 5's shape).
        table = generate_adult(20000, seed=1)
        young = [r for r in table if r["age"] < 25]
        prime = [r for r in table if 35 <= r["age"] < 50]
        young_service = sum(
            1 for r in young if r["occupation"] == "Other-service"
        ) / len(young)
        prime_service = sum(
            1 for r in prime if r["occupation"] == "Other-service"
        ) / len(prime)
        assert young_service > 2 * prime_service

    def test_age_marital_correlation(self):
        table = generate_adult(20000, seed=1)
        young = [r for r in table if r["age"] < 25]
        never = sum(
            1 for r in young if r["marital_status"] == "Never-married"
        ) / len(young)
        assert never > 0.8

    def test_all_fourteen_occupations_present_at_scale(self):
        table = generate_adult(45222)
        assert set(r["occupation"] for r in table) == set(OCCUPATIONS)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            generate_adult(0)


class TestCsvRoundTrip:
    def test_save_load(self, small_adult, tmp_path):
        path = tmp_path / "adult.csv"
        save_csv(small_adult, path)
        loaded = load_csv(path, ADULT_SCHEMA)
        assert loaded == small_adult

    def test_missing_column_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("age,sex\n30,Male\n")
        with pytest.raises(SchemaError):
            load_csv(path, ADULT_SCHEMA)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            load_csv(path, ADULT_SCHEMA)


class TestRawAdultFormat:
    RAW_ROW = (
        "39, State-gov, 77516, Bachelors, 13, Never-married, Adm-clerical,"
        " Not-in-family, White, Male, 2174, 0, 40, United-States, <=50K"
    )
    MISSING_ROW = (
        "52, Self-emp, 209642, HS-grad, 9, Married-civ-spouse, ?,"
        " Husband, White, Male, 0, 0, 45, United-States, >50K"
    )

    def test_parses_and_projects(self, tmp_path):
        path = tmp_path / "adult.data"
        path.write_text(self.RAW_ROW + "\n\n")
        table = load_adult_file(path)
        assert len(table) == 1
        record = table[0]
        assert record == {
            "age": 39,
            "marital_status": "Never-married",
            "race": "White",
            "sex": "Male",
            "occupation": "Adm-clerical",
        }

    def test_drops_rows_with_missing_values(self, tmp_path):
        path = tmp_path / "adult.data"
        path.write_text(self.RAW_ROW + "\n" + self.MISSING_ROW + "\n")
        table = load_adult_file(path)
        assert len(table) == 1

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "adult.data"
        path.write_text("1, 2, 3\n")
        with pytest.raises(SchemaError):
            load_adult_file(path)
