"""The ablation experiment helpers."""

from __future__ import annotations

from repro.experiments.ablation import (
    SingleBucketReport,
    dedupe_speedup,
    memo_reuse_ratio,
    single_bucket_gap,
)


class TestSingleBucketGap:
    def test_conjecture_holds_on_scan(self):
        report = single_bucket_gap(trials=150, seed=1)
        assert isinstance(report, SingleBucketReport)
        assert report.trials == 150
        # The observed property: no violations. If this ever fails, a
        # counterexample to the single-bucket concentration was found —
        # report it and update DESIGN.md.
        assert report.violations == 0
        assert report.max_gap == 0.0

    def test_deterministic(self):
        assert single_bucket_gap(trials=30, seed=2) == single_bucket_gap(
            trials=30, seed=2
        )


class TestDedupeSpeedup:
    def test_reports_consistent_counts(self, small_adult, adult_lattice):
        report = dedupe_speedup(
            small_adult, adult_lattice, (2, 1, 0, 0), k=5, repeats=1
        )
        assert report["distinct_signatures"] <= report["buckets"]
        assert report["seconds_with_dedupe"] > 0
        assert report["seconds_without_dedupe"] > 0
        assert report["speedup"] > 0


class TestMemoReuse:
    def test_shared_solver_never_stores_more_than_cold_total(
        self, small_adult, adult_lattice
    ):
        report = memo_reuse_ratio(small_adult, adult_lattice, ks=(1, 5))
        assert report["nodes"] == 72
        assert report["shared_states"] <= report["cold_states_total"]
        assert report["reuse_factor"] >= 1.0
        assert report["distinct_signatures"] > 0
