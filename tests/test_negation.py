"""Worst case for k negated atoms (the ℓ-diversity adversary)."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.bucketization import Bucket, Bucketization
from repro.core.exact import exact_max_disclosure_negations
from repro.core.negation import (
    NegationWitness,
    bucket_negation_disclosure,
    max_disclosure_negations,
    max_disclosure_negations_series,
    negation_witness,
)


class TestClosedFormAgainstBruteForce:
    """The closed form concentrates all negations on one person; the brute
    force ranges over every set of k atoms anywhere (other people, other
    buckets). They must agree — this is the same-person-optimality claim."""

    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_random_instances(self, seed, k):
        rng = random.Random(seed)
        lists = []
        for _ in range(rng.randint(1, 2)):
            size = rng.randint(1, 3)
            lists.append([rng.choice("abc") for _ in range(size)])
        bucketization = Bucketization.from_value_lists(lists)
        closed = max_disclosure_negations(bucketization, k, exact=True)
        brute = exact_max_disclosure_negations(bucketization, k)
        assert closed == brute, (lists, k)


class TestKnownValues:
    def test_figure3_negations(self, figure3):
        # k=0: 2/5. k=1: rule out lung cancer -> 2/3. k=2: certainty.
        assert max_disclosure_negations(figure3, 0, exact=True) == Fraction(2, 5)
        assert max_disclosure_negations(figure3, 1, exact=True) == Fraction(2, 3)
        assert max_disclosure_negations(figure3, 2, exact=True) == 1

    def test_certainty_at_distinct_minus_one(self):
        b = Bucketization.from_value_lists([["a", "b", "c", "d"]])
        assert max_disclosure_negations(b, 3, exact=True) == 1
        assert max_disclosure_negations(b, 2, exact=True) < 1

    def test_target_not_always_top_value(self):
        # {a:3, b:3, c:1}: with k=1 the best attack negates one of the top
        # values and targets the other: 3/(7-3) = 3/4.
        b = Bucketization.from_value_lists([["a"] * 3 + ["b"] * 3 + ["c"]])
        assert max_disclosure_negations(b, 1, exact=True) == Fraction(3, 4)

    def test_per_bucket_form(self):
        assert bucket_negation_disclosure((2, 2, 1), 1, exact=True) == Fraction(
            2, 3
        )
        assert bucket_negation_disclosure(
            Bucket.from_values(["x", "x", "y"]), 1, exact=True
        ) == 1


class TestInvariants:
    def test_monotone_in_k(self):
        b = Bucketization.from_value_lists([["a", "a", "b", "c", "d"]])
        series = max_disclosure_negations_series(b, range(6), exact=True)
        values = [series[k] for k in sorted(series)]
        assert all(x <= y for x, y in zip(values, values[1:]))

    def test_k0_equals_top_fraction(self):
        b = Bucketization.from_value_lists([["a", "a", "b"], ["c", "d", "d", "d"]])
        assert max_disclosure_negations(b, 0, exact=True) == Fraction(3, 4)

    def test_never_exceeds_one(self):
        rng = random.Random(3)
        for _ in range(20):
            values = [rng.choice("abcd") for _ in range(rng.randint(1, 6))]
            b = Bucketization.from_value_lists([values])
            for k in range(5):
                assert max_disclosure_negations(b, k, exact=True) <= 1

    def test_negative_k_rejected(self, figure3):
        with pytest.raises(ValueError):
            max_disclosure_negations(figure3, -1)


class TestWitness:
    def test_witness_achieves_reported_disclosure(self, figure3):
        from repro.core.exact import probability
        from repro.knowledge.atoms import Atom

        witness = negation_witness(figure3, 1, exact=True)
        assert isinstance(witness, NegationWitness)

        def phi(world):
            return all(
                world[witness.person] != value
                for value in witness.negated_values
            )

        achieved = probability(
            figure3, Atom(witness.person, witness.target_value), phi
        )
        assert achieved == witness.disclosure

    def test_witness_values_are_distinct_and_exclude_target(self, figure3):
        witness = negation_witness(figure3, 2, exact=True)
        assert witness.target_value not in witness.negated_values
        assert len(set(witness.negated_values)) == len(witness.negated_values)

    def test_witness_matches_max(self, figure3):
        for k in range(4):
            witness = negation_witness(figure3, k, exact=True)
            assert witness.disclosure == max_disclosure_negations(
                figure3, k, exact=True
            )
