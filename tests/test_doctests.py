"""Run every docstring example in the library as a test.

Keeps the documentation honest: the examples on public APIs (README-level
snippets included) execute on every test run.
"""

from __future__ import annotations

import doctest
import importlib

import pytest

MODULES = [
    "repro",
    "repro.data.schema",
    "repro.data.table",
    "repro.data.adult",
    "repro.data.hierarchies",
    "repro.bucketization.bucket",
    "repro.bucketization.bucketization",
    "repro.bucketization.swapping",
    "repro.bucketization.mondrian",
    "repro.knowledge.atoms",
    "repro.knowledge.formulas",
    "repro.knowledge.completeness",
    "repro.knowledge.parser",
    "repro.core.disclosure",
    "repro.core.safety",
    "repro.engine.engine",
    "repro.generalization.hierarchy",
    "repro.generalization.lattice",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_doctests(module_name):
    if module_name == "repro.data.adult":
        pytest.importorskip(
            "numpy", reason="the adult doctests generate synthetic rows"
        )
    module = importlib.import_module(module_name)
    results = doctest.testmod(
        module, optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS
    )
    assert results.failed == 0, f"{module_name}: {results.failed} doctest failures"


def test_doctest_coverage_is_nontrivial():
    """At least a core of the modules actually carries runnable examples."""
    total = 0
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        finder = doctest.DocTestFinder()
        total += sum(
            len(t.examples) for t in finder.find(module)
        )
    assert total >= 25
