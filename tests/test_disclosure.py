"""Maximum disclosure (Definition 6): the DP against the exact oracle."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.bucketization import Bucketization
from repro.core.disclosure import (
    max_disclosure,
    max_disclosure_series,
    min_formula1_ratio,
)
from repro.core.exact import exact_max_disclosure_simple
from repro.core.minimize1 import Minimize1Solver
from repro.core.negation import max_disclosure_negations


def random_bucketization(rng, max_buckets=2, max_size=3, values="abc"):
    lists = []
    for _ in range(rng.randint(1, max_buckets)):
        size = rng.randint(1, max_size)
        lists.append([rng.choice(values) for _ in range(size)])
    return Bucketization.from_value_lists(lists)


class TestAgainstExactOracle:
    """The central correctness property: DP == brute force (Definition 6
    restricted to simple implications, which Theorem 9 proves sufficient)."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_instances(self, seed):
        rng = random.Random(seed)
        bucketization = random_bucketization(rng)
        for k in range(3):
            dp = max_disclosure(bucketization, k, exact=True)
            brute = exact_max_disclosure_simple(bucketization, k)
            assert dp == brute, (bucketization, k)

    def test_same_consequent_restriction_suffices(self):
        # Theorem 9: restricting brute force to same-consequent families
        # does not lower the maximum.
        bucketization = Bucketization.from_value_lists([["a", "a", "b"], ["b", "c"]])
        for k in (1, 2):
            free = exact_max_disclosure_simple(bucketization, k)
            restricted = exact_max_disclosure_simple(
                bucketization, k, same_consequent_only=True
            )
            assert free == restricted == max_disclosure(bucketization, k, exact=True)


class TestKnownValues:
    def test_figure3_values(self, figure3):
        assert max_disclosure(figure3, 0, exact=True) == Fraction(2, 5)
        assert max_disclosure(figure3, 1, exact=True) == Fraction(2, 3)
        assert max_disclosure(figure3, 2, exact=True) == 1

    def test_uniform_bucket(self):
        b = Bucketization.from_value_lists([["a", "b", "c", "d"]])
        assert max_disclosure(b, 0, exact=True) == Fraction(1, 4)
        assert max_disclosure(b, 1, exact=True) == Fraction(1, 3)
        assert max_disclosure(b, 3, exact=True) == 1

    def test_homogeneous_bucket_discloses_fully_at_k0(self):
        b = Bucketization.from_value_lists([["a", "a", "a"]])
        assert max_disclosure(b, 0, exact=True) == 1

    def test_skewed_bucket_two_person_implication(self):
        b = Bucketization.from_value_lists(
            [list("abcdefghij"), ["x"] * 8 + ["y", "z"]]
        )
        # Best k=1 attack: (p1 = x) -> (p0 = x) inside the skewed bucket,
        # a genuinely implication-only attack (no negation expresses it).
        assert max_disclosure(b, 1, exact=True) == Fraction(36, 37)
        from repro.core.negation import max_disclosure_negations

        assert max_disclosure_negations(b, 1, exact=True) == Fraction(8, 9)


class TestInvariants:
    def test_monotone_in_k(self):
        b = Bucketization.from_value_lists([["a", "a", "b", "c"], ["a", "b"]])
        series = max_disclosure_series(b, range(6), exact=True)
        values = [series[k] for k in range(6)]
        assert all(x <= y for x, y in zip(values, values[1:]))

    def test_bounded_by_one_and_reaches_one(self):
        b = Bucketization.from_value_lists([["a", "b", "c"]])
        series = max_disclosure_series(b, range(5), exact=True)
        assert all(0 < v <= 1 for v in series.values())
        assert series[2] == 1  # two negations pin the third value

    def test_at_least_top_fraction(self):
        b = Bucketization.from_value_lists([["a", "a", "a", "b", "c"]])
        for k in range(4):
            assert max_disclosure(b, k, exact=True) >= Fraction(3, 5)

    def test_implications_dominate_negations(self):
        rng = random.Random(42)
        for _ in range(10):
            b = random_bucketization(rng, max_buckets=3, max_size=5)
            for k in range(4):
                assert max_disclosure(b, k, exact=True) >= (
                    max_disclosure_negations(b, k, exact=True)
                )

    def test_series_equals_pointwise(self):
        b = Bucketization.from_value_lists([["a", "a", "b"], ["c", "d"]])
        series = max_disclosure_series(b, [0, 2, 4], exact=True)
        for k, value in series.items():
            assert value == max_disclosure(b, k, exact=True)

    def test_float_tracks_exact(self, figure3):
        for k in range(4):
            approx = max_disclosure(figure3, k)
            exact = max_disclosure(figure3, k, exact=True)
            assert approx == pytest.approx(float(exact), abs=1e-12)


class TestPlumbing:
    def test_min_ratio_relation(self, figure3):
        for k in range(3):
            ratio = min_formula1_ratio(figure3, k, exact=True)
            assert max_disclosure(figure3, k, exact=True) == Fraction(1) / (
                1 + ratio
            )

    def test_negative_k_rejected(self, figure3):
        with pytest.raises(ValueError):
            max_disclosure(figure3, -1)

    def test_empty_ks_empty_series(self, figure3):
        assert max_disclosure_series(figure3, []) == {}

    def test_shared_solver_across_bucketizations(self, figure3):
        solver = Minimize1Solver(exact=True)
        first = max_disclosure(figure3, 2, solver=solver)
        merged = figure3.merge_buckets([0, 1])
        second = max_disclosure(merged, 2, solver=solver)
        assert first >= second  # Theorem 14 while sharing the memo
