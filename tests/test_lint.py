"""The invariant linter (`repro lint`, REP001–REP005) tested on itself.

Three layers:

- fixture tests: each rule fires on its planted violation under
  ``tests/lint_fixtures/`` and stays quiet on the clean counterparts
  (the `exact`-guard idiom, the executor escape hatch, a complete key);
- framework tests: suppressions, baseline round-trip, parse errors,
  reporters, CLI exit codes;
- mutation tests (the acceptance criteria): dropping a model's
  ``__init__`` parameter from its cache key, or adding ``time.sleep`` to
  a coroutine in ``service/``, turns the *real* tree's files red.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    Finding,
    Project,
    available_rules,
    get_rules,
    render_text,
    run_rules,
)
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"


def lint(*argv: str) -> tuple[int, str]:
    """Run `repro lint` in-process, returning (exit code, stdout)."""
    import io
    from contextlib import redirect_stdout

    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(["lint", *argv])
    return code, buffer.getvalue()


def lint_json(*argv: str) -> tuple[int, dict]:
    code, out = lint(*argv, "--format", "json")
    return code, json.loads(out)


# ---------------------------------------------------------------- fixtures

EXPECTED_FIXTURE_HITS = {
    "REP001": [
        ("src/repro/core/taint.py", "float literal 0.5"),
        ("src/repro/core/taint.py", "float() conversion"),
        ("src/repro/core/taint.py", "use of math.sqrt"),
        ("src/repro/core/taint.py", "call to math.sqrt"),
    ],
    "REP002": [
        ("src/repro/service/blocking.py", "time.sleep()"),
        ("src/repro/service/blocking.py", "builtin open()"),
        ("src/repro/service/blocking.py", "socket.create_connection"),
        ("src/repro/service/blocking.py", "subprocess.run"),
        ("src/repro/service/blocking.py", "http.client.HTTPConnection"),
    ],
    "REP003": [
        ("src/repro/engine/models_fixture.py", "`tilt` of model `LeakyAdversary`"),
    ],
    "REP004": [
        ("src/repro/engine/stats_fixture.py", "counter `dropped` of `LeakyStats`"),
        ("src/repro/engine/stats_fixture.py", "no *Stats class declares `ghost`"),
        ("benchmarks/bench_drift.py", "stats key `ghost_counter`"),
    ],
    "REP005": [
        ("src/repro/engine/nondet_fixture.py", "random.choice()"),
        ("src/repro/engine/nondet_fixture.py", "random.random()"),
        # both the `for ... in set(...)` loop and the set comprehension
        ("src/repro/engine/nondet_fixture.py", "iteration directly over a set"),
        ("src/repro/engine/nondet_fixture.py", "iteration directly over a set"),
        ("src/repro/engine/nondet_fixture.py", "json.dumps without sort_keys"),
    ],
}


@pytest.mark.parametrize("rule", sorted(EXPECTED_FIXTURE_HITS))
def test_rule_fires_on_planted_fixture(rule):
    code, report = lint_json(
        "--root", str(FIXTURES), "--no-baseline", "--rules", rule
    )
    assert code == 1
    findings = report["findings"]
    assert findings and all(f["rule"] == rule for f in findings)
    for path, fragment in EXPECTED_FIXTURE_HITS[rule]:
        assert any(
            f["path"] == path and fragment in f["message"] for f in findings
        ), f"expected {rule} hit {fragment!r} in {path}"


def test_clean_patterns_stay_clean():
    code, report = lint_json("--root", str(FIXTURES), "--no-baseline")
    assert code == 1  # the planted violations
    messages = [
        (f["path"], f["message"], f["rule"]) for f in report["findings"]
    ]
    # The guard idiom, the exempt kernel, executor/async escapes, the
    # complete and inherited keys, the non-counter attr, the justified
    # suppressions: none may appear.
    for path, message, rule in messages:
        assert "guarded_" not in message
        assert "exact_combinatorics" not in message
        assert "unreachable_float_helper" not in message
        assert "suppressed" not in message
        assert path != "src/repro/core/kernel.py"
        assert "good_async" not in message
        assert "good_executor" not in message
        assert "_blocking_helper" not in message
        assert "KeyedAdversary" not in message
        assert "InheritedKeyAdversary" not in message
        assert "CleanStats" not in message
        assert "good_determinism" not in message
        assert rule not in ("REP000", "REP999")
    # And the totals are exactly the planted set: any extra finding is a
    # false positive the fixtures are designed to catch.
    assert len(messages) == sum(
        len(v) for v in EXPECTED_FIXTURE_HITS.values()
    )


def test_real_tree_is_clean_modulo_baseline():
    code, out = lint("--root", str(REPO_ROOT))
    assert code == 0, f"repro lint flagged the real tree:\n{out}"


def test_committed_baseline_is_loadable():
    baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
    assert isinstance(baseline.entries, set)


# ------------------------------------------------- suppressions & baseline


def _mini_tree(tmp_path: Path, rel: str, source: str) -> Path:
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return tmp_path


def test_justified_line_suppression_silences(tmp_path):
    _mini_tree(
        tmp_path,
        "src/repro/engine/x.py",
        "import random\n"
        "def f():\n"
        "    return random.random()"
        "  # repro: noqa[REP005] fixture generator, never on result path\n",
    )
    code, _ = lint("--root", str(tmp_path), "--no-baseline")
    assert code == 0


def test_bare_suppression_is_its_own_finding(tmp_path):
    _mini_tree(
        tmp_path,
        "src/repro/engine/x.py",
        "import random\n"
        "def f():\n"
        "    return random.random()  # repro: noqa[REP005]\n",
    )
    code, report = lint_json("--root", str(tmp_path), "--no-baseline")
    assert code == 1
    assert [f["rule"] for f in report["findings"]] == ["REP000"]


def test_file_scope_suppression(tmp_path):
    _mini_tree(
        tmp_path,
        "src/repro/engine/x.py",
        "# repro: noqa-file[REP005] deliberately-chaotic demo module\n"
        "import random\n"
        "def f():\n"
        "    return random.random() + random.random()\n",
    )
    code, _ = lint("--root", str(tmp_path), "--no-baseline")
    assert code == 0


def test_parse_error_is_rep999(tmp_path):
    _mini_tree(tmp_path, "src/repro/engine/x.py", "def broken(:\n")
    code, report = lint_json("--root", str(tmp_path), "--no-baseline")
    assert code == 1
    assert [f["rule"] for f in report["findings"]] == ["REP999"]


def test_baseline_roundtrip(tmp_path):
    _mini_tree(
        tmp_path,
        "src/repro/engine/x.py",
        "import random\ndef f():\n    return random.random()\n",
    )
    code, _ = lint("--root", str(tmp_path))
    assert code == 1
    code, out = lint("--root", str(tmp_path), "--write-baseline")
    assert code == 0 and "1 grandfathered" in out
    # Grandfathered: reported as baselined, not a failure.
    code, report = lint_json("--root", str(tmp_path))
    assert code == 0
    assert len(report["baselined"]) == 1 and report["clean"]
    # A *new* violation still fails, and only the new one is active.
    _mini_tree(
        tmp_path,
        "src/repro/engine/y.py",
        "import random\ndef g():\n    return random.choice([1])\n",
    )
    code, report = lint_json("--root", str(tmp_path))
    assert code == 1
    assert [f["path"] for f in report["findings"]] == ["src/repro/engine/y.py"]
    assert len(report["baselined"]) == 1


def test_baseline_fingerprint_survives_line_drift(tmp_path):
    _mini_tree(
        tmp_path,
        "src/repro/engine/x.py",
        "import random\ndef f():\n    return random.random()\n",
    )
    lint("--root", str(tmp_path), "--write-baseline")
    # Shift the violation down three lines: same fingerprint, still covered.
    _mini_tree(
        tmp_path,
        "src/repro/engine/x.py",
        "import random\n# pad\n# pad\n# pad\n"
        "def f():\n    return random.random()\n",
    )
    code, _ = lint("--root", str(tmp_path))
    assert code == 0


# ------------------------------------------------------ framework plumbing


def test_unknown_rule_id_is_a_clean_cli_error(tmp_path, capsys):
    code = main(["lint", "--root", str(tmp_path), "--rules", "REP042"])
    assert code == 1
    assert "unknown lint rule" in capsys.readouterr().err


def test_all_five_rules_registered():
    assert set(available_rules()) >= {
        "REP001",
        "REP002",
        "REP003",
        "REP004",
        "REP005",
    }
    assert len(get_rules()) == len(available_rules())


def test_text_reporter_shows_rule_file_line_and_contract():
    finding = Finding(
        rule="REP001",
        path="src/repro/core/x.py",
        line=7,
        message="float literal 0.5",
        contract="exact mode returns true Fractions",
    )
    text = render_text([finding], [])
    assert "src/repro/core/x.py:7: REP001 float literal 0.5" in text
    assert "contract: exact mode returns true Fractions" in text


def test_project_skips_pycache_and_relativizes(tmp_path):
    _mini_tree(tmp_path, "src/repro/core/a.py", "x = 1\n")
    _mini_tree(tmp_path, "src/repro/__pycache__/junk.py", "x = 2\n")
    project = Project(tmp_path)
    assert [f.rel for f in project.files] == ["src/repro/core/a.py"]


# ------------------------------------- acceptance-criteria mutation tests


def test_dropping_model_param_from_key_fails_lint(tmp_path):
    """Remove DistributionAdversary.params_key from the *real* source:
    REP003 must flag `tilt` — the ROADMAP stale-cache bug, pre-empted."""
    source = (REPO_ROOT / "src/repro/engine/models_distribution.py").read_text()
    assert "def params_key" in source
    mutated = source.replace("def params_key", "def _detached_params_key")
    _mini_tree(tmp_path, "src/repro/engine/models_distribution.py", mutated)
    code, report = lint_json(
        "--root", str(tmp_path), "--no-baseline", "--rules", "REP003"
    )
    assert code == 1
    assert any(
        "`tilt` of model `DistributionAdversary`" in f["message"]
        for f in report["findings"]
    )
    # And unmutated, the same file passes.
    _mini_tree(tmp_path, "src/repro/engine/models_distribution.py", source)
    code, _ = lint(
        "--root", str(tmp_path), "--no-baseline", "--rules", "REP003"
    )
    assert code == 0


def test_adding_sleep_to_service_coroutine_fails_lint(tmp_path):
    """Plant time.sleep inside an `async def` of the *real* server.py:
    REP002 must flag it."""
    source = (REPO_ROOT / "src/repro/service/server.py").read_text()
    match = re.search(r"(    async def \w+\(self[^)]*\).*:\n)", source)
    assert match is not None
    mutated = source.replace(
        match.group(1), match.group(1) + "        time.sleep(0.01)\n", 1
    )
    _mini_tree(tmp_path, "src/repro/service/server.py", mutated)
    code, report = lint_json(
        "--root", str(tmp_path), "--no-baseline", "--rules", "REP002"
    )
    assert code == 1
    assert any(
        "time.sleep() blocks the event loop" in f["message"]
        for f in report["findings"]
    )
    # And unmutated, the same file passes.
    _mini_tree(tmp_path, "src/repro/service/server.py", source)
    code, _ = lint(
        "--root", str(tmp_path), "--no-baseline", "--rules", "REP002"
    )
    assert code == 0


def test_run_rules_api_matches_cli(tmp_path):
    _mini_tree(
        tmp_path,
        "src/repro/engine/x.py",
        "import random\ndef f():\n    return random.random()\n",
    )
    project = Project(tmp_path)
    active, baselined = run_rules(project, get_rules(["REP005"]))
    assert [f.rule for f in active] == ["REP005"]
    assert baselined == []
