"""Schema and Table: the microdata model."""

from __future__ import annotations

import pytest

from repro.data.schema import Schema
from repro.data.table import Table
from repro.errors import EmptyTableError, SchemaError


@pytest.fixture
def schema():
    return Schema(quasi_identifiers=("zip", "age"), sensitive="disease")


@pytest.fixture
def table(schema):
    return Table(
        [
            {"zip": "14850", "age": 23, "disease": "flu"},
            {"zip": "14850", "age": 23, "disease": "cold"},
            {"zip": "14853", "age": 30, "disease": "flu"},
        ],
        schema,
    )


class TestSchema:
    def test_attributes_order(self, schema):
        assert schema.attributes == ("zip", "age", "disease")

    def test_identifier_first_when_present(self):
        s = Schema(("zip",), "disease", identifier="name")
        assert s.attributes == ("name", "zip", "disease")

    def test_requires_qi(self):
        with pytest.raises(SchemaError):
            Schema((), "disease")

    def test_rejects_name_collisions(self):
        with pytest.raises(SchemaError):
            Schema(("a", "a"), "s")
        with pytest.raises(SchemaError):
            Schema(("a",), "a")
        with pytest.raises(SchemaError):
            Schema(("a",), "s", identifier="s")

    def test_validate_record(self, schema):
        with pytest.raises(SchemaError):
            schema.validate_record({"zip": "1", "age": 2})

    def test_qi_tuple(self, schema):
        assert schema.qi_tuple({"zip": "x", "age": 1, "disease": "d"}) == ("x", 1)


class TestTable:
    def test_len_iter_getitem(self, table):
        assert len(table) == 3
        assert table[0]["disease"] == "flu"
        assert sum(1 for _ in table) == 3

    def test_person_ids_default_to_row_index(self, table):
        assert table.person_ids == (0, 1, 2)

    def test_person_ids_from_identifier_column(self):
        s = Schema(("zip",), "d", identifier="name")
        t = Table(
            [{"name": "bob", "zip": "1", "d": "x"},
             {"name": "eve", "zip": "2", "d": "y"}],
            s,
        )
        assert t.person_ids == ("bob", "eve")
        assert t.record_of("eve")["d"] == "y"

    def test_duplicate_identifiers_rejected(self):
        s = Schema(("zip",), "d", identifier="name")
        with pytest.raises(SchemaError):
            Table(
                [{"name": "bob", "zip": "1", "d": "x"},
                 {"name": "bob", "zip": "2", "d": "y"}],
                s,
            )

    def test_record_of_missing_person(self, table):
        with pytest.raises(KeyError):
            table.record_of(99)

    def test_sensitive_accessors(self, table):
        assert table.sensitive_values() == ("flu", "cold", "flu")
        assert table.sensitive_domain() == ("cold", "flu")
        assert table.sensitive_histogram() == {"flu": 2, "cold": 1}

    def test_column_and_distinct(self, table):
        assert table.column("age") == (23, 23, 30)
        assert table.distinct("zip") == ("14850", "14853")
        assert table.distinct("age") == (23, 30)

    def test_unknown_column_rejected(self, table):
        with pytest.raises(SchemaError):
            table.column("nope")

    def test_rows_are_defensive_copies(self, schema):
        source = [{"zip": "1", "age": 2, "disease": "d"}]
        t = Table(source, schema)
        source[0]["disease"] = "mutated"
        assert t[0]["disease"] == "d"

    def test_map_qi_leaves_sensitive_untouched(self, table):
        mapped = table.map_qi(lambda attr, value: "*")
        assert mapped.sensitive_values() == table.sensitive_values()
        assert all(r["zip"] == "*" and r["age"] == "*" for r in mapped)

    def test_select(self, table):
        young = table.select(lambda r: r["age"] < 25)
        assert len(young) == 2

    def test_sample_deterministic(self, table):
        assert table.sample(2, seed=1) == table.sample(2, seed=1)
        with pytest.raises(EmptyTableError):
            table.sample(10)

    def test_group_by_qi(self, table):
        groups = table.group_by_qi()
        assert groups[("14850", 23)] == [0, 1]
        assert groups[("14853", 30)] == [2]

    def test_missing_attribute_rejected(self, schema):
        with pytest.raises(SchemaError):
            Table([{"zip": "1", "age": 2}], schema)

    def test_from_columns(self, schema):
        t = Table.from_columns(
            {"zip": ["1", "2"], "age": [1, 2], "disease": ["x", "y"]}, schema
        )
        assert len(t) == 2
        with pytest.raises(SchemaError):
            Table.from_columns(
                {"zip": ["1"], "age": [1, 2], "disease": ["x", "y"]}, schema
            )

    def test_require_nonempty(self, schema):
        with pytest.raises(EmptyTableError):
            Table([], schema).require_nonempty()

    def test_equality(self, table, schema):
        same = Table(list(table.rows), schema)
        assert table == same
        assert table != Table([], schema)
