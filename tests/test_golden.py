"""Golden-file regression tests for the paper experiments.

Tiny fig5/fig6 runs in **exact** arithmetic against checked-in expected
JSON: every disclosure number is a Fraction serialized as ``"num/den"``, so
the comparison is platform-independent and bit-exact — an experiment or
engine refactor that shifts any paper number fails these tests instead of
silently changing the figures.

Regenerating (after an *intentional* change): run

    GOLDEN_REGEN=1 python -m pytest tests/test_golden.py

and commit the rewritten files under ``tests/golden/`` with an explanation
of why the numbers moved.
"""

from __future__ import annotations

import json
import os
from fractions import Fraction
from pathlib import Path

import pytest

from repro.core.kernel import numpy_available
from repro.data.adult import generate_adult
from repro.engine import DisclosureEngine
from repro.experiments.fig5 import run_figure5
from repro.experiments.fig6 import run_figure6

# The goldens are generated from the seeded synthetic Adult table.
pytestmark = pytest.mark.skipif(
    not numpy_available(),
    reason="the synthetic Adult generator needs numpy (repro[fast])",
)

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

#: Tiny but non-degenerate: enough rows that the paper node has several
#: buckets with mixed signatures, small enough to run in well under a second.
FIG5_ROWS, FIG5_SEED = 300, 7
FIG6_ROWS, FIG6_SEED = 250, 7
FIG6_KS = (1, 3)


def _fraction(value) -> str:
    """Canonical exact serialization (Fractions and ints only — a float
    here would mean the exact engine leaked arithmetic, itself a bug)."""
    assert isinstance(value, (Fraction, int)), f"non-exact value {value!r}"
    return str(Fraction(value))


def _fig5_payload() -> dict:
    table = generate_adult(FIG5_ROWS, seed=FIG5_SEED)
    result = run_figure5(table, engine=DisclosureEngine(exact=True))
    return {
        "rows": FIG5_ROWS,
        "seed": FIG5_SEED,
        "node": list(result.node),
        "num_buckets": result.num_buckets,
        "series": [
            {
                "k": row.k,
                "implication": _fraction(row.implication),
                "negation": _fraction(row.negation),
            }
            for row in result.rows
        ],
    }


def _fig6_payload() -> dict:
    table = generate_adult(FIG6_ROWS, seed=FIG6_SEED)
    result = run_figure6(
        table, ks=FIG6_KS, engine=DisclosureEngine(exact=True)
    )
    return {
        "rows": FIG6_ROWS,
        "seed": FIG6_SEED,
        "ks": list(result.ks),
        "model": result.model,
        "nodes": [
            {
                "node": list(record.node),
                "num_buckets": record.num_buckets,
                # Entropy is a float (math.log); it is compared with a
                # tolerance, unlike the exact disclosure strings.
                "min_entropy": record.min_entropy,
                "disclosure": {
                    str(k): _fraction(v)
                    for k, v in sorted(record.disclosure.items())
                },
            }
            for record in result.nodes
        ],
    }


PAYLOADS = {
    "fig5_exact.json": _fig5_payload,
    "fig6_exact.json": _fig6_payload,
}


def _load_or_regen(name: str) -> tuple[dict, dict]:
    """(expected-from-disk, actual-from-code); regenerates on demand."""
    actual = PAYLOADS[name]()
    path = GOLDEN_DIR / name
    if os.environ.get("GOLDEN_REGEN") == "1":
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n")
    if not path.exists():
        pytest.fail(
            f"golden file {path} missing; run GOLDEN_REGEN=1 pytest "
            f"tests/test_golden.py and commit it"
        )
    return json.loads(path.read_text()), actual


def test_fig5_matches_golden():
    expected, actual = _load_or_regen("fig5_exact.json")
    assert actual["node"] == expected["node"]
    assert actual["num_buckets"] == expected["num_buckets"]
    assert len(actual["series"]) == len(expected["series"])
    for got, want in zip(actual["series"], expected["series"]):
        assert got == want, (
            f"fig5 k={want['k']} shifted: expected "
            f"implication={want['implication']} negation={want['negation']}, "
            f"got implication={got['implication']} negation={got['negation']}"
        )


def test_fig6_matches_golden():
    expected, actual = _load_or_regen("fig6_exact.json")
    assert actual["ks"] == expected["ks"]
    assert actual["model"] == expected["model"]
    assert len(actual["nodes"]) == len(expected["nodes"])
    for got, want in zip(actual["nodes"], expected["nodes"]):
        assert got["node"] == want["node"]
        assert got["num_buckets"] == want["num_buckets"], (
            f"node {want['node']} bucket count shifted"
        )
        # Disclosure is exact arithmetic: compare the Fraction strings.
        assert got["disclosure"] == want["disclosure"], (
            f"node {want['node']} disclosure shifted: "
            f"expected {want['disclosure']}, got {got['disclosure']}"
        )
        # Entropy passes through libm; equal within float tolerance.
        assert got["min_entropy"] == pytest.approx(
            want["min_entropy"], abs=1e-9
        ), f"node {want['node']} min-entropy shifted"


def test_fig5_exact_agrees_with_float_run():
    """The float figure is the exact figure rounded — the two paths must
    describe the same numbers (guards against mode-dependent drift)."""
    table = generate_adult(FIG5_ROWS, seed=FIG5_SEED)
    exact = run_figure5(table, engine=DisclosureEngine(exact=True))
    floaty = run_figure5(table, engine=DisclosureEngine(exact=False))
    for exact_row, float_row in zip(exact.rows, floaty.rows):
        assert float(exact_row.implication) == pytest.approx(
            float_row.implication, abs=1e-9
        )
        assert float(exact_row.negation) == pytest.approx(
            float_row.negation, abs=1e-9
        )
