"""The Figure 5 / Figure 6 harnesses: shapes the paper reports must hold."""

from __future__ import annotations

import pytest

from repro.experiments.fig5 import FIG5_NODE, run_figure5
from repro.experiments.fig6 import run_figure6
from repro.core.kernel import numpy_available
from repro.experiments.runner import (
    default_adult_table,
    render_figure5,
    render_figure6,
)

# Every figure harness runs on the synthetic Adult table.
pytestmark = pytest.mark.skipif(
    not numpy_available(),
    reason="the synthetic Adult generator needs numpy (repro[fast])",
)


@pytest.fixture(scope="module")
def table():
    return default_adult_table(3000, seed=5)


@pytest.fixture(scope="module")
def fig5(table):
    return run_figure5(table)


@pytest.fixture(scope="module")
def fig6(table):
    return run_figure6(table, ks=(1, 3, 5))


class TestFigure5:
    def test_sweeps_k_0_to_12(self, fig5):
        assert [row.k for row in fig5.rows] == list(range(13))

    def test_uses_paper_node(self, fig5):
        assert fig5.node == FIG5_NODE == (3, 2, 1, 1)

    def test_monotone_in_k(self, fig5):
        for series in ("implication", "negation"):
            values = [v for _, v in fig5.series(series)]
            assert all(x <= y + 1e-12 for x, y in zip(values, values[1:]))

    def test_implication_dominates_negation(self, fig5):
        # The paper: "the maximum disclosure for k negated atoms is always
        # smaller than [or equal to] the maximum disclosure for k implications".
        for row in fig5.rows:
            assert row.implication >= row.negation - 1e-12

    def test_reaches_certainty_by_k13_equivalent(self, fig5):
        # 14 sensitive values: by k = 13 disclosure is certainly 1; the
        # realized domain may saturate earlier but never exceeds 1.
        assert fig5.rows[-1].implication <= 1.0
        assert fig5.rows[-1].implication > 0.9

    def test_series_accessor_validates(self, fig5):
        with pytest.raises(ValueError):
            fig5.series("nonsense")

    def test_render_contains_all_rows(self, fig5):
        text = render_figure5(fig5)
        assert "Figure 5" in text
        assert len(text.splitlines()) == 3 + 13


class TestFigure6:
    def test_sweeps_all_72_nodes(self, fig6):
        assert len(fig6.nodes) == 72

    def test_one_disclosure_per_k(self, fig6):
        for record in fig6.nodes:
            assert set(record.disclosure) == {1, 3, 5}

    def test_envelope_sorted_by_entropy(self, fig6):
        for k in fig6.ks:
            envelope = fig6.envelope(k)
            hs = [h for h, _ in envelope]
            assert hs == sorted(hs)

    def test_disclosure_grows_with_k_per_node(self, fig6):
        for record in fig6.nodes:
            assert (
                record.disclosure[1]
                <= record.disclosure[3] + 1e-12
            )
            assert (
                record.disclosure[3]
                <= record.disclosure[5] + 1e-12
            )

    def test_high_entropy_end_beats_low_entropy_end(self, fig6):
        # The paper's qualitative claim: disclosure risk decreases as the
        # minimum entropy increases. Compare envelope endpoints.
        for k in fig6.ks:
            envelope = [e for e in fig6.envelope(k) if e[0] > 0]
            assert envelope[-1][1] <= envelope[0][1]

    def test_entropy_floor_filters(self, table):
        filtered = run_figure6(table, ks=(1,), min_entropy_floor=1.0)
        assert all(record.min_entropy >= 1.0 for record in filtered.nodes)
        assert len(filtered.nodes) < 72

    def test_envelope_unknown_k_rejected(self, fig6):
        with pytest.raises(ValueError):
            fig6.envelope(2)

    def test_requires_some_k(self, table):
        with pytest.raises(ValueError):
            run_figure6(table, ks=())

    def test_render(self, fig6):
        text = render_figure6(fig6, per_node=True)
        assert "Figure 6" in text
        assert "per-node sweep" in text


class TestDefaultTable:
    def test_cached(self):
        assert default_adult_table(100, seed=1) is default_adult_table(100, seed=1)

    def test_size(self):
        assert len(default_adult_table(123, seed=2)) == 123
