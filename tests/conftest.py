"""Shared fixtures: the paper's running example and small reusable objects."""

from __future__ import annotations

import pytest

from repro.bucketization import Bucket, Bucketization
from repro.data.adult import ADULT_SCHEMA
from repro.data.hierarchies import adult_hierarchies
from repro.data.schema import Schema
from repro.data.table import Table
from repro.generalization.lattice import GeneralizationLattice

MEN = ("Bob", "Charlie", "Dave", "Ed", "Frank")
MEN_DISEASES = ("Flu", "Flu", "Lung Cancer", "Lung Cancer", "Mumps")
WOMEN = ("Gloria", "Hannah", "Irma", "Jessica", "Karen")
WOMEN_DISEASES = (
    "Flu",
    "Flu",
    "Breast Cancer",
    "Ovarian Cancer",
    "Heart Disease",
)


@pytest.fixture
def figure3() -> Bucketization:
    """The paper's Figure 3 bucketization (men / women buckets)."""
    return Bucketization(
        [Bucket(MEN, MEN_DISEASES), Bucket(WOMEN, WOMEN_DISEASES)]
    )


@pytest.fixture
def hospital_schema() -> Schema:
    return Schema(
        quasi_identifiers=("Zip", "Age", "Sex"),
        sensitive="Disease",
        identifier="Name",
    )


@pytest.fixture
def figure1_table(hospital_schema) -> Table:
    """The paper's Figure 1 original table."""
    rows = [
        ("Bob", "14850", 23, "M", "Flu"),
        ("Charlie", "14850", 24, "M", "Flu"),
        ("Dave", "14850", 25, "M", "Lung Cancer"),
        ("Ed", "14850", 27, "M", "Lung Cancer"),
        ("Frank", "14853", 29, "M", "Mumps"),
        ("Gloria", "14850", 21, "F", "Flu"),
        ("Hannah", "14850", 22, "F", "Flu"),
        ("Irma", "14853", 24, "F", "Breast Cancer"),
        ("Jessica", "14853", 26, "F", "Ovarian Cancer"),
        ("Karen", "14853", 28, "F", "Heart Disease"),
    ]
    return Table(
        [
            dict(zip(("Name", "Zip", "Age", "Sex", "Disease"), row))
            for row in rows
        ],
        hospital_schema,
    )


@pytest.fixture
def adult_lattice() -> GeneralizationLattice:
    return GeneralizationLattice(
        adult_hierarchies(), ADULT_SCHEMA.quasi_identifiers
    )


@pytest.fixture(scope="session")
def small_adult():
    """A small synthetic Adult sample shared across the session."""
    pytest.importorskip("numpy", reason="the synthetic Adult generator needs numpy")
    from repro.data.adult import generate_adult

    return generate_adult(1500, seed=7)
