"""The exact random-worlds engine (the test oracle itself needs tests)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.bucketization import Bucket, Bucketization
from repro.core.exact import (
    MAX_WORLDS,
    bucket_assignments,
    enumerate_worlds,
    exact_disclosure_risk,
    probability,
    world_count,
)
from repro.errors import InconsistentWorldError
from repro.knowledge.atoms import Atom
from repro.knowledge.formulas import negation, simple_implication


class TestWorldEnumeration:
    def test_assignments_are_distinct_multiset_permutations(self):
        bucket = Bucket.from_values(["a", "a", "b"])
        assignments = bucket_assignments(bucket)
        assert len(assignments) == 3  # 3!/2! distinct arrangements
        assert all(sorted(a) == ["a", "a", "b"] for a in assignments)

    def test_world_count_multinomial(self, figure3):
        # Each Figure-3 bucket: 5!/(2!2!1!) = 30 and 5!/(2!1!1!1!) = 60.
        assert world_count(figure3) == 30 * 60

    def test_enumeration_matches_count(self):
        b = Bucketization.from_value_lists([["a", "a", "b"], ["x", "y"]])
        worlds = list(enumerate_worlds(b))
        assert len(worlds) == world_count(b) == 3 * 2

    def test_every_world_respects_bucket_multisets(self):
        b = Bucketization.from_value_lists([["a", "a", "b"], ["x", "y"]])
        for world in enumerate_worlds(b):
            assert sorted(world[p] for p in (0, 1, 2)) == ["a", "a", "b"]
            assert sorted(world[p] for p in (3, 4)) == ["x", "y"]

    def test_guard_against_explosion(self):
        big = Bucketization.from_value_lists([list(range(12))])
        assert world_count(big) > MAX_WORLDS
        with pytest.raises(InconsistentWorldError):
            list(enumerate_worlds(big))


class TestProbability:
    def test_unconditional_atom(self, figure3):
        assert probability(figure3, Atom("Ed", "Flu")) == Fraction(2, 5)
        assert probability(figure3, Atom("Ed", "Mumps")) == Fraction(1, 5)

    def test_value_not_in_bucket_has_zero_probability(self, figure3):
        assert probability(figure3, Atom("Ed", "Breast Cancer")) == 0

    def test_conditioning_on_negation(self, figure3):
        phi = negation("Ed", "Mumps", witness_value="Flu")
        assert probability(figure3, Atom("Ed", "Lung Cancer"), phi) == Fraction(
            1, 2
        )

    def test_cross_bucket_implication(self, figure3):
        phi = simple_implication("Hannah", "Flu", "Charlie", "Flu")
        assert probability(figure3, Atom("Charlie", "Flu"), phi) == Fraction(
            10, 19
        )

    def test_buckets_are_independent(self, figure3):
        # Conditioning on a women's-bucket atom does not move a men's-bucket
        # marginal (atoms, unlike implications, cannot couple buckets).
        unconditional = probability(figure3, Atom("Ed", "Flu"))
        conditioned = probability(
            figure3, Atom("Ed", "Flu"), Atom("Hannah", "Flu")
        )
        assert unconditional == conditioned

    def test_callable_events(self, figure3):
        value = probability(
            figure3,
            lambda w: w["Ed"] == "Flu" or w["Ed"] == "Mumps",
        )
        assert value == Fraction(3, 5)

    def test_inconsistent_condition_raises(self, figure3):
        with pytest.raises(InconsistentWorldError):
            probability(
                figure3, Atom("Ed", "Flu"), Atom("Ed", "Breast Cancer")
            )

    def test_non_formula_rejected(self, figure3):
        with pytest.raises(TypeError):
            probability(figure3, 42)


class TestDisclosureRisk:
    def test_no_knowledge_risk_is_max_top_fraction(self, figure3):
        assert exact_disclosure_risk(figure3) == Fraction(2, 5)

    def test_risk_with_knowledge(self, figure3):
        phi = negation("Ed", "Mumps", witness_value="Flu")
        # Ruling out mumps makes flu/lung equally likely at 1/2 for Ed.
        assert exact_disclosure_risk(figure3, phi) == Fraction(1, 2)

    def test_risk_is_one_for_homogeneous_bucket(self):
        b = Bucketization.from_value_lists([["s", "s"]])
        assert exact_disclosure_risk(b) == 1


class TestAssignmentMemoization:
    def test_repeated_multisets_share_enumeration(self):
        from repro.core.exact import _multiset_assignments

        _multiset_assignments.cache_clear()
        first = Bucket(["p1", "p2", "p3"], ["flu", "flu", "mumps"])
        # Different people, different value order — same multiset.
        second = Bucket(["q1", "q2", "q3"], ["mumps", "flu", "flu"])
        assert bucket_assignments(first) == bucket_assignments(second)
        info = _multiset_assignments.cache_info()
        assert info.hits == 1 and info.misses == 1

    def test_assignment_lists_are_independent_copies(self):
        bucket = Bucket(["a", "b"], ["x", "y"])
        one = bucket_assignments(bucket)
        one.append("sentinel")
        assert "sentinel" not in bucket_assignments(bucket)
