"""The doc-drift gate (``scripts/check_docs.py``) and the docs it guards.

The checker is itself code, so its failure paths are tested the way any
linter's are: against deliberately broken copies of the docs tree.
"""

import re
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "scripts" / "check_docs.py"
DOCS = REPO_ROOT / "docs"


def run_checker(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )


def copy_docs(tmp_path: Path) -> Path:
    docs_dir = tmp_path / "docs"
    shutil.copytree(DOCS, docs_dir)
    return docs_dir


class TestCheckDocs:
    def test_repo_docs_are_in_sync(self):
        result = run_checker()
        assert result.returncode == 0, result.stderr
        assert "ok" in result.stdout

    def test_missing_endpoint_row_fails(self, tmp_path):
        docs_dir = copy_docs(tmp_path)
        wire = docs_dir / "wire-protocol.md"
        text = wire.read_text()
        lines = [
            line
            for line in text.splitlines()
            if not line.startswith("| `/publish`")
        ]
        assert len(lines) < len(text.splitlines())
        wire.write_text("\n".join(lines))
        result = run_checker("--docs-dir", str(docs_dir))
        assert result.returncode == 1
        assert "POST /publish" in result.stderr

    def test_stale_documented_endpoint_fails(self, tmp_path):
        docs_dir = copy_docs(tmp_path)
        wire = docs_dir / "wire-protocol.md"
        text = wire.read_text()
        wire.write_text(
            text.replace(
                "| `/healthz` | GET |",
                "| `/healthz` | GET |\n| `/gone` | GET | vanished |",
            )
        )
        result = run_checker("--docs-dir", str(docs_dir))
        assert result.returncode == 1
        assert "GET /gone" in result.stderr

    def test_wrong_verb_fails(self, tmp_path):
        docs_dir = copy_docs(tmp_path)
        wire = docs_dir / "wire-protocol.md"
        wire.write_text(
            wire.read_text().replace(
                "| `/publish` | POST |", "| `/publish` | GET |"
            )
        )
        result = run_checker("--docs-dir", str(docs_dir))
        assert result.returncode == 1
        assert "/publish" in result.stderr

    def test_undocumented_cli_subcommand_fails(self, tmp_path):
        docs_dir = copy_docs(tmp_path)
        for path in docs_dir.glob("*.md"):
            path.write_text(path.read_text().replace("estimate", "est_imate"))
        result = run_checker("--docs-dir", str(docs_dir))
        assert result.returncode == 1
        assert "'estimate'" in result.stderr

    def test_missing_wire_doc_fails(self, tmp_path):
        docs_dir = copy_docs(tmp_path)
        (docs_dir / "wire-protocol.md").unlink()
        result = run_checker("--docs-dir", str(docs_dir))
        assert result.returncode == 1
        assert "missing" in result.stderr


class TestDocsContent:
    """Light content pins so the guides stay navigable."""

    @pytest.mark.parametrize(
        "name", ["architecture.md", "deployment.md", "wire-protocol.md"]
    )
    def test_guide_exists(self, name):
        assert (DOCS / name).is_file()

    def test_readme_points_at_all_guides(self):
        readme = (REPO_ROOT / "README.md").read_text()
        for name in ("architecture.md", "deployment.md", "wire-protocol.md"):
            assert f"docs/{name}" in readme

    def test_readme_is_an_overview_not_a_manual(self):
        # The deployment/service/protocol detail lives in docs/ now; the
        # README must not regrow it (it peaked at ~580 lines).
        lines = (REPO_ROOT / "README.md").read_text().splitlines()
        assert len(lines) < 250

    def test_internal_doc_links_resolve(self):
        link = re.compile(r"\]\(([^)#]+)(?:#[^)]*)?\)")
        for doc in (*DOCS.glob("*.md"), REPO_ROOT / "README.md"):
            for target in link.findall(doc.read_text()):
                if "://" in target:
                    continue
                resolved = (doc.parent / target).resolve()
                assert resolved.exists(), f"{doc.name}: broken link {target}"
