"""Four sanitizers, one safety bar: generalization, Anatomy, Mondrian,
suppression — plus data swapping as the attacker sees it.

The paper analyzes bucketization and notes its results carry over to
full-domain generalization; suppression and data swapping are named as
future work. This library implements all of them behind one interface
(everything reduces to a Bucketization), so they can be compared directly:
for the same (c,k)-safety target, which sanitizer keeps the most utility?

Run with:  python examples/sanitizer_showdown.py  [--rows N]
"""

import argparse

from repro import (
    ADULT_SCHEMA,
    GeneralizationLattice,
    SafetyChecker,
    adult_hierarchies,
    bucketize_at,
    generate_adult,
)
from repro.bucketization import (
    anatomize,
    mondrian_partition,
    suppress_to_safety,
    swap_sensitive_values,
)
from repro.core.minimize1 import Minimize1Solver
from repro.generalization.search import find_minimal_safe_nodes
from repro.utility.metrics import average_bucket_size, discernibility

parser = argparse.ArgumentParser()
parser.add_argument("--rows", type=int, default=8000)
parser.add_argument("--c", type=float, default=0.75, help="threshold")
parser.add_argument("--k", type=int, default=2, help="attacker power")
args = parser.parse_args()

table = generate_adult(args.rows)
checker = SafetyChecker(args.c, args.k)
print(
    f"target: ({args.c}, {args.k})-safety on {len(table)} rows "
    "(lower discernibility = better utility)\n"
)
results = []


def report(name, bucketization, note=""):
    safe = checker.is_safe(bucketization)
    disclosure = checker.disclosure(bucketization)
    results.append(
        (
            name,
            safe,
            disclosure,
            len(bucketization),
            discernibility(bucketization),
            note,
        )
    )


# --- 1. Full-domain generalization: best minimal safe lattice node. -------
lattice = GeneralizationLattice(
    adult_hierarchies(), ADULT_SCHEMA.quasi_identifiers
)
minimal = find_minimal_safe_nodes(
    lattice, lambda n: checker.is_safe(bucketize_at(table, lattice, n))
)
best = min(minimal, key=lambda n: discernibility(bucketize_at(table, lattice, n)))
report(
    "generalization", bucketize_at(table, lattice, best), f"node {best}"
)

# --- 2. Anatomy: fixed-size distinct-value buckets. ------------------------
for ell in (4, 6, 8, 10, 12):
    try:
        candidate = anatomize(table, ell)
    except ValueError:
        continue
    if checker.is_safe(candidate):
        report("anatomy", candidate, f"ell = {ell}")
        break
else:
    print("anatomy: no eligible ell reached the target\n")

# --- 3. Mondrian with a per-bucket (c,k) bound as the split predicate. ----
solver = Minimize1Solver()


def bucket_is_safe(bucket):
    ratio = (
        solver.minimum(bucket.signature, args.k + 1)
        * bucket.size
        / bucket.top_frequency
    )
    return 1.0 / (1.0 + ratio) < args.c


mondrian = mondrian_partition(table, bucket_is_safe)
report("mondrian", mondrian, "adaptive splits")

# --- 4. Suppression on top of a mild generalization. -----------------------
base = bucketize_at(table, lattice, (2, 1, 0, 0))
suppressed = suppress_to_safety(base, args.c, args.k)
if suppressed.bucketization is not None:
    report(
        "suppression",
        suppressed.bucketization,
        f"{len(suppressed.suppressed)} tuples dropped from node (2,1,0,0)",
    )

# --- 5. Data swapping in blocked groups sized like Mondrian's buckets. ----
swap = swap_sensitive_values(
    table,
    group_size=max(2, round(average_bucket_size(mondrian))),
    seed=1,
)
report(
    "swapping",
    swap.to_bucketization(),
    f"{swap.swapped_count} values moved, blocked groups",
)

# --- Summary ---------------------------------------------------------------
print(f"{'sanitizer':<15} {'safe':<5} {'disclosure':>10} {'buckets':>8} "
      f"{'discernibility':>15}  note")
for name, safe, disclosure, buckets, disc, note in results:
    print(
        f"{name:<15} {str(safe):<5} {disclosure:>10.4f} {buckets:>8} "
        f"{disc:>15}  {note}"
    )
safe_results = [r for r in results if r[1]]
if safe_results:
    winner = min(safe_results, key=lambda r: r[4])
    print(f"\nbest utility at the target: {winner[0]} ({winner[5]})")
