"""Full publishing pipeline on the (synthetic) Adult census projection.

This is the paper's Section-4 scenario as a data publisher would run it:

1. load the microdata (45,222 tuples; occupation is sensitive),
2. build the 72-node generalization lattice of Section 4,
3. find ALL minimal (c,k)-safe generalizations with the Incognito-style
   bottom-up search (Theorem 14 supplies the monotonicity the pruning needs),
4. pick the one maximizing utility (precision),
5. compare with what k-anonymity and ℓ-diversity would have certified,
6. also locate a safe node by binary search on a lattice chain.

Run with:  python examples/adult_census.py  [--rows N]
"""

import argparse
import time

from repro import (
    ADULT_SCHEMA,
    GeneralizationLattice,
    SafetyChecker,
    adult_hierarchies,
    bucketize_at,
    generate_adult,
)
from repro.anonymity import distinct_diversity, max_k_anonymity
from repro.core.negation import max_disclosure_negations
from repro.generalization.search import (
    SearchStats,
    binary_search_chain,
    find_minimal_safe_nodes,
)
from repro.utility.entropy import min_bucket_entropy
from repro.utility.metrics import discernibility, precision

parser = argparse.ArgumentParser()
parser.add_argument("--rows", type=int, default=45222)
parser.add_argument("--c", type=float, default=0.75, help="disclosure threshold")
parser.add_argument("--k", type=int, default=3, help="attacker power")
args = parser.parse_args()

# ---------------------------------------------------------------------------
# 1-2. Data and lattice.
# ---------------------------------------------------------------------------
t0 = time.time()
table = generate_adult(args.rows)
lattice = GeneralizationLattice(
    adult_hierarchies(), ADULT_SCHEMA.quasi_identifiers
)
print(
    f"dataset: {len(table)} tuples; lattice: {lattice!r} "
    f"(generated in {time.time() - t0:.2f}s)"
)

# ---------------------------------------------------------------------------
# 3. All minimal (c,k)-safe nodes, Incognito style.
# ---------------------------------------------------------------------------
checker = SafetyChecker(args.c, args.k)
stats = SearchStats()
t0 = time.time()
minimal = find_minimal_safe_nodes(
    lattice,
    lambda node: checker.is_safe(bucketize_at(table, lattice, node)),
    stats=stats,
)
elapsed = time.time() - t0
print(
    f"\n(c={args.c}, k={args.k})-safety sweep: {stats.predicate_checks} "
    f"checks, {stats.pruned} pruned of {stats.nodes_total} nodes "
    f"({elapsed:.2f}s, {checker.cache_hits} signature-cache hits)"
)
if not minimal:
    raise SystemExit("no safe generalization exists — lower c or k")
print(f"minimal safe nodes ({len(minimal)}):")
for node in minimal:
    b = bucketize_at(table, lattice, node)
    print(
        f"  {node}: disclosure={checker.disclosure(b):.4f} "
        f"buckets={len(b)} precision={precision(lattice, node):.3f} "
        f"discernibility={discernibility(b)}"
    )

# ---------------------------------------------------------------------------
# 4. Choose the publication: maximize precision among minimal safe nodes.
# ---------------------------------------------------------------------------
best = max(minimal, key=lambda node: precision(lattice, node))
published = bucketize_at(table, lattice, best)
print(f"\npublishing node {best} "
      f"(precision {precision(lattice, best):.3f})")

# ---------------------------------------------------------------------------
# 5. What would the baselines have said about this publication?
# ---------------------------------------------------------------------------
print("\nbaseline view of the published bucketization:")
print(f"  k-anonymity level      : {max_k_anonymity(published)}")
print(f"  distinct ℓ-diversity   : {distinct_diversity(published)}")
print(f"  min bucket entropy     : {min_bucket_entropy(published):.3f}")
print(
    f"  worst case, {args.k} negations (ℓ-diversity attacker): "
    f"{max_disclosure_negations(published, args.k):.4f}"
)
print(
    f"  worst case, {args.k} implications (this paper)       : "
    f"{checker.disclosure(published):.4f}"
)

# ---------------------------------------------------------------------------
# 6. Binary search on a chain: logarithmically many checks (Section 3.4).
# ---------------------------------------------------------------------------
chain = lattice.default_chain()
chain_stats = SearchStats()
lowest = binary_search_chain(
    chain,
    lambda node: checker.is_safe(bucketize_at(table, lattice, node)),
    stats=chain_stats,
)
print(
    f"\nbinary search on a {len(chain)}-node chain: lowest safe node "
    f"{lowest} found with {chain_stats.predicate_checks} checks"
)
