"""Sequential republication: three releases of one table through the ledger.

A publisher ships v1, v2, v3 of the same table. Each release alone passes
the paper's (c, k)-safety check — but the adversary that matters saw
*every* prior release, and composed background knowledge across the
sequence breaks v3. This demo walks the
:class:`~repro.publish.engine.RepublicationEngine` through exactly that:

1. v1 publishes and is accepted (four shape-distinct buckets),
2. v2 adds a bucket; the re-check is **incremental** — every signature
   already certified in v1 reuses its ledger-stored value bit-identically,
   so only the composition sweep costs anything,
3. v3 adds another bucket and is **rejected by composition alone**: its
   base-k check is clean, but at effective_k = 3 (three distinct accepted
   contents) the worst-case disclosure reaches 1.0.

Run with:  python examples/republication_demo.py
"""

from repro import Bucketization, DisclosureEngine
from repro.publish import ReleaseLedger, RepublicationEngine

C, K = 0.9, 1

V1 = [
    ["flu", "cold", "mumps", "angina"],
    ["flu", "flu", "cold", "mumps", "angina"],
    ["flu", "cold", "cold", "mumps", "mumps", "angina"],
    ["flu", "cold", "mumps", "angina", "asthma"],
]
V2 = V1 + [["flu", "flu", "cold", "cold", "mumps", "angina"]]
V3 = V2 + [["flu", "cold", "mumps", "angina", "asthma", "anemia"]]


def show(label: str, verdict: dict) -> None:
    decision = "ACCEPTED" if verdict["accepted"] else "REJECTED"
    work = verdict["work"]
    print(
        f"{label}: {decision}  "
        f"(value {verdict['value']}, threshold {verdict['threshold']}, "
        f"effective_k {verdict['effective_k']})"
    )
    print(
        f"   work: {work['evaluated_multisets']} multisets evaluated "
        f"({work['release_evaluated']} release + "
        f"{work['composition_evaluated']} composition), "
        f"{work['reused_multisets']} reused from the ledger"
        f"{' [incremental]' if work['incremental'] else ''}"
    )
    for violation in verdict["violations"]:
        print(
            f"   breach: signature {tuple(violation['signature'])} at the "
            f"{violation['stage']} stage — disclosure "
            f"{violation['composition_value']} at k={violation['effective_k']}"
        )


engine = DisclosureEngine()
with ReleaseLedger() as ledger:  # pass a path to persist across runs
    publisher = RepublicationEngine(engine, ledger)

    v1 = publisher.publish("patients", Bucketization.from_value_lists(V1), c=C, k=K)
    show("v1", v1)

    v2 = publisher.publish("patients", Bucketization.from_value_lists(V2), c=C, k=K)
    show("v2", v2)
    assert v2["work"]["incremental"] and v2["work"]["release_evaluated"] == 0

    v3 = publisher.publish("patients", Bucketization.from_value_lists(V3), c=C, k=K)
    show("v3", v3)
    assert not v3["accepted"]
    assert {v["stage"] for v in v3["violations"]} == {"composition"}

    print()
    print("ledger:", ledger.counters())
    for entry in ledger.list_releases("patients"):
        print(
            f"   v{entry['version']}  "
            f"{'accepted' if entry['accepted'] else 'rejected'}  "
            f"({entry['model']}, k={entry['k']}, {entry['mode']})"
        )

print()
print(
    "v3 passed the one-shot check every prior PR certified — composition "
    "across the accepted sequence is what rejected it."
)
