"""The paper's running example (Figures 1-3), reproduced number by number.

A hospital publishes the Figure-3 bucketization of its patient table. Alice
knows the bucketization and full identification information, and we replay
every probability the paper's introduction computes:

- Ed has lung cancer with probability 2/5 with no further knowledge,
- 1/2 once Alice rules out mumps,
- 1 once she also rules out flu,
- Charlie has flu with probability 2/5, rising to 10/19 given
  "if Hannah has the flu then Charlie does too" (Section 1 / Section 3's
  cross-bucket dependency example),

and then what the paper's own algorithms add on top:

- the true maximum disclosure for L^1_basic is 2/3, achieved by a
  same-person implication (see DESIGN.md on the paper's 10/19 remark),
- the k at which the bucketization becomes fully disclosing.

Run with:  python examples/hospital_scenario.py
"""

from fractions import Fraction

from repro import Atom, Bucketization, max_disclosure, probability, worst_case_witness
from repro.knowledge.formulas import negation, simple_implication

# ---------------------------------------------------------------------------
# Figure 3: the published bucketization. Bucket 1 holds the men, bucket 2 the
# women; within each bucket the sensitive column was randomly permuted.
# ---------------------------------------------------------------------------
MEN = ["Bob", "Charlie", "Dave", "Ed", "Frank"]
MEN_DISEASES = ["Flu", "Flu", "Lung Cancer", "Lung Cancer", "Mumps"]
WOMEN = ["Gloria", "Hannah", "Irma", "Jessica", "Karen"]
WOMEN_DISEASES = ["Flu", "Flu", "Breast Cancer", "Ovarian Cancer",
                  "Heart Disease"]

from repro.bucketization import Bucket

figure3 = Bucketization([
    Bucket(MEN, MEN_DISEASES),
    Bucket(WOMEN, WOMEN_DISEASES),
])
print("published bucketization (Figure 3):")
for bucket in figure3:
    print(f"  {bucket}")

# ---------------------------------------------------------------------------
# Alice attacks Ed. No background knowledge: 2/5.
# ---------------------------------------------------------------------------
ed_lung = Atom("Ed", "Lung Cancer")
p0 = probability(figure3, ed_lung)
print(f"\nPr(Ed has lung cancer)                          = {p0}")
assert p0 == Fraction(2, 5)

# "Ed had mumps as a child" -> rule out mumps: 1/2.
no_mumps = negation("Ed", "Mumps", witness_value="Flu")
p1 = probability(figure3, ed_lung, no_mumps)
print(f"Pr(... | Ed does not have mumps)                = {p1}")
assert p1 == Fraction(1, 2)

# "Ed does not have flu" as well: certainty.
no_flu = negation("Ed", "Flu", witness_value="Lung Cancer")
both = lambda w: no_mumps.holds_in(w) and no_flu.holds_in(w)
p2 = probability(figure3, ed_lung, both)
print(f"Pr(... | and Ed does not have flu)              = {p2}")
assert p2 == Fraction(1, 1)

# ---------------------------------------------------------------------------
# Alice attacks Charlie, using Hannah (a cross-bucket dependency!).
# ---------------------------------------------------------------------------
charlie_flu = Atom("Charlie", "Flu")
p3 = probability(figure3, charlie_flu)
print(f"\nPr(Charlie has flu)                             = {p3}")
assert p3 == Fraction(2, 5)

hannah_implies_charlie = simple_implication("Hannah", "Flu", "Charlie", "Flu")
p4 = probability(figure3, charlie_flu, hannah_implies_charlie)
print(f"Pr(... | Hannah's flu implies Charlie's)        = {p4}")
assert p4 == Fraction(10, 19)  # the paper's Section-1 number

# ---------------------------------------------------------------------------
# The worst case over ALL single implications (L^1_basic): the paper's prose
# says 10/19, but its own algorithm finds 2/3 via a same-person implication
# "(Ed = flu) -> (Ed = lung cancer)", i.e. the negation of Ed's flu.
# ---------------------------------------------------------------------------
m1 = max_disclosure(figure3, 1, exact=True)
print(f"\nmax disclosure w.r.t. L^1_basic (MINIMIZE1/2)   = {m1}")
assert m1 == Fraction(2, 3)

witness = worst_case_witness(figure3, 1, exact=True)
print(f"achieved by: {witness.implications[0]}  =>  {witness.consequent}")
check = probability(figure3, witness.consequent, witness.formula)
print(f"verified against the exact engine               = {check}")
assert check == m1

# ---------------------------------------------------------------------------
# How fast does disclosure grow with attacker power?
# ---------------------------------------------------------------------------
print("\nmax disclosure by k:")
for k in range(5):
    value = max_disclosure(figure3, k, exact=True)
    print(f"  k={k}: {value}  (~{float(value):.4f})")
    if value == 1:
        print(f"  -> {k} implications already force a certain disclosure")
        break
