"""Theorem 3 in action: any table predicate as basic implications.

The paper's language claim is that basic implications are a *complete* basic
unit: with full identification information, any predicate on tables is a
finite conjunction of them. This demo encodes two very different predicates —
an aggregate statement and a correlation statement — over a small
bucketization and verifies, with the exact random-worlds engine, that the
encoded formula conditions probabilities exactly like the raw predicate.

Run with:  python examples/completeness_demo.py
"""

from repro import Atom, Bucketization, probability
from repro.core.exact import enumerate_worlds
from repro.knowledge.completeness import encode_predicate

bucketization = Bucketization.from_value_lists([
    ["flu", "flu", "cancer"],
    ["flu", "cold", "cancer"],
])
worlds = list(enumerate_worlds(bucketization))
domain = ["flu", "cold", "cancer"]
print(f"bucketization: {bucketization}")
print(f"consistent worlds: {len(worlds)}")


def show(name, predicate, event):
    """Encode `predicate`, then compare conditioning on the raw predicate
    against conditioning on its basic-implication encoding."""
    phi = encode_predicate(worlds, predicate, domain)
    raw = probability(bucketization, event, predicate)
    enc = probability(bucketization, event, phi)
    sizes = [len(imp.antecedents) for imp in phi.implications]
    print(f"\n{name}")
    print(f"  encoding: {phi.k} basic implications "
          f"(antecedent sizes {sorted(set(sizes)) or '-'})")
    print(f"  Pr(event | predicate) = {raw}")
    print(f"  Pr(event | encoding ) = {enc}")
    assert raw == enc, "Theorem 3 encoding must condition identically"


# An aggregate predicate over a sub-population. (Whole-table value counts are
# fixed by the bucketization, so aggregates must range over a proper subset
# of people to be informative.)
show(
    'aggregate: "at most 1 flu case among persons 0, 3, 4"',
    lambda w: sum(1 for p in (0, 3, 4) if w[p] == "flu") <= 1,
    Atom(0, "flu"),
)

# A correlation predicate across buckets: "person 0 and person 3 match".
show(
    'correlation: "persons 0 and 3 have the same disease"',
    lambda w: w[0] == w[3],
    Atom(3, "flu"),
)

# A negative existential over two people: "neither 3 nor 4 has a cold"
# (forcing the second bucket's cold onto person 5).
show(
    'existential: "persons 3 and 4 both avoid cold"',
    lambda w: w[3] != "cold" and w[4] != "cold",
    Atom(5, "cold"),
)

print("\nall three predicates round-tripped through basic implications")
