"""Quickstart: publish a small table safely against k pieces of knowledge.

Walks the library's happy path end to end:

1. build a microdata table,
2. bucketize it,
3. measure worst-case disclosure for attackers of growing power,
4. check (c,k)-safety and, if unsafe, coarsen until safe.

Run with:  python examples/quickstart.py
"""

from repro import (
    Bucketization,
    Schema,
    Table,
    is_ck_safe,
    max_disclosure,
    worst_case_witness,
)

# ---------------------------------------------------------------------------
# 1. The private table: one sensitive attribute, some quasi-identifiers.
# ---------------------------------------------------------------------------
schema = Schema(quasi_identifiers=("zip", "age"), sensitive="disease")
rows = [
    {"zip": "14850", "age": 23, "disease": "flu"},
    {"zip": "14850", "age": 24, "disease": "flu"},
    {"zip": "14850", "age": 25, "disease": "lung cancer"},
    {"zip": "14850", "age": 27, "disease": "lung cancer"},
    {"zip": "14853", "age": 29, "disease": "mumps"},
    {"zip": "14850", "age": 21, "disease": "flu"},
    {"zip": "14850", "age": 22, "disease": "flu"},
    {"zip": "14853", "age": 24, "disease": "breast cancer"},
    {"zip": "14853", "age": 26, "disease": "ovarian cancer"},
    {"zip": "14853", "age": 28, "disease": "heart disease"},
]
table = Table(rows, schema)
print(f"private table: {len(table)} tuples, "
      f"{len(set(table.sensitive_values()))} distinct diseases")

# ---------------------------------------------------------------------------
# 2. Bucketize: here, one bucket per zip code (the published partition).
# ---------------------------------------------------------------------------
by_zip = Bucketization.from_table(table, key=lambda r: r["zip"])
print(f"\npublished bucketization: {by_zip}")
for bucket in by_zip:
    print(f"  {bucket}")

# ---------------------------------------------------------------------------
# 3. Worst-case disclosure as the attacker's power k grows.
#    k bounds the number of basic implications the attacker may know
#    (k = 0 is the classical no-background-knowledge analysis).
# ---------------------------------------------------------------------------
print("\nworst-case disclosure (k basic implications):")
for k in range(4):
    print(f"  k={k}: {max_disclosure(by_zip, k):.4f}")

# A concrete worst-case attack, reconstructed:
witness = worst_case_witness(by_zip, 2)
print("\none worst-case attack for k=2 "
      f"(discloses {witness.disclosure:.4f}):")
for implication in witness.implications:
    print(f"  knows: {implication}")
print(f"  learns: {witness.consequent}")

# ---------------------------------------------------------------------------
# 4. (c,k)-safety: require disclosure < c against any k implications.
#    If the partition is unsafe, coarsen it (merge buckets) — Theorem 14
#    guarantees merging never hurts.
# ---------------------------------------------------------------------------
c, k = 0.75, 2
if is_ck_safe(by_zip, c, k):
    print(f"\nby-zip bucketization is ({c},{k})-safe; publish it")
else:
    merged = by_zip.merge_buckets(range(len(by_zip)))
    print(
        f"\nby-zip bucketization is NOT ({c},{k})-safe "
        f"(disclosure {max_disclosure(by_zip, k):.4f}); merging buckets..."
    )
    print(f"merged disclosure: {max_disclosure(merged, k):.4f} "
          f"-> safe: {is_ck_safe(merged, c, k)}")
