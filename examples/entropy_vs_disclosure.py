"""Entropy vs. worst-case disclosure: the intuition behind Figure 6.

The paper: "if all the buckets in a table have a nearly uniform distribution,
then the maximum disclosure should be lower, but the exact relationship is
not obvious." This example makes the relationship visible twice:

1. on hand-built buckets whose skew we control directly, and
2. on the Adult generalization lattice (a miniature Figure 6).

Run with:  python examples/entropy_vs_disclosure.py  [--rows N]
"""

import argparse

from repro import Bucketization, generate_adult, max_disclosure
from repro.experiments.fig6 import run_figure6
from repro.utility.entropy import min_bucket_entropy

parser = argparse.ArgumentParser()
parser.add_argument("--rows", type=int, default=8000)
args = parser.parse_args()

# ---------------------------------------------------------------------------
# 1. Controlled skew: same size, same domain, different histograms.
# ---------------------------------------------------------------------------
print("hand-built buckets (n = 12, 4 diseases), k = 2 implications:")
histograms = {
    "uniform      ": ["a", "b", "c", "d"] * 3,
    "mild skew    ": ["a"] * 5 + ["b"] * 3 + ["c"] * 2 + ["d"] * 2,
    "strong skew  ": ["a"] * 8 + ["b", "b", "c", "d"],
    "near-constant": ["a"] * 10 + ["b", "c"],
}
for name, values in histograms.items():
    bucketization = Bucketization.from_value_lists([values])
    h = min_bucket_entropy(bucketization)
    d = max_disclosure(bucketization, 2)
    print(f"  {name}  entropy={h:.3f}  disclosure={d:.4f}")
print("-> disclosure rises as in-bucket entropy falls, at equal size")

# ---------------------------------------------------------------------------
# 2. Miniature Figure 6 on the Adult lattice.
# ---------------------------------------------------------------------------
table = generate_adult(args.rows)
result = run_figure6(table, ks=(1, 5, 9), min_entropy_floor=0.5)
print(
    f"\nAdult lattice sweep ({args.rows} rows, "
    f"{len(result.nodes)} anonymizations with min-entropy >= 0.5):"
)
for k in result.ks:
    envelope = result.envelope(k)
    lo_h, lo_d = envelope[0]
    hi_h, hi_d = envelope[-1]
    print(
        f"  k={k}: disclosure {lo_d:.3f} at entropy {lo_h:.2f}  ->  "
        f"{hi_d:.3f} at entropy {hi_h:.2f}"
    )
print("-> for every k, more minimum entropy buys less worst-case disclosure")
