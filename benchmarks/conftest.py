"""Shared benchmark fixtures: cached datasets and lattices.

The benchmark suite regenerates every evaluation artifact of the paper
(Figures 5 and 6) and measures the complexity claims of Section 3.3. Run:

    pytest benchmarks/ --benchmark-only

Reported series are attached to each benchmark's ``extra_info`` (visible with
``--benchmark-json``) and asserted structurally in the benchmark bodies. The
JSON-emitting benchmarks (``bench_engine``, ``bench_parallel``) also write
``BENCH_*.json`` artifacts — set ``BENCH_TINY=1`` (as the CI smoke job does)
to shrink their workloads to seconds.
"""

from __future__ import annotations

import pytest

from reporting import tiny_mode

from repro.data.adult import ADULT_SCHEMA, ADULT_SIZE
from repro.data.hierarchies import adult_hierarchies
from repro.experiments.runner import default_adult_table
from repro.generalization.lattice import GeneralizationLattice


@pytest.fixture(scope="session")
def adult_full():
    """The paper-sized dataset (45,222 rows)."""
    return default_adult_table(ADULT_SIZE)


@pytest.fixture(scope="session")
def adult_medium():
    """A 10k-row dataset for the heavier sweeps (800 rows in tiny mode)."""
    return default_adult_table(800 if tiny_mode() else 10_000)


@pytest.fixture(scope="session")
def lattice():
    return GeneralizationLattice(
        adult_hierarchies(), ADULT_SCHEMA.quasi_identifiers
    )
