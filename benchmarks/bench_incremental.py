"""The incremental-recomputation remark (end of Section 3.3.3).

The paper notes that after running the algorithm once, re-running it on a
modified bucketization only pays for the *new* buckets, because MINIMIZE1
memoization carries over. In this implementation the memo is keyed by bucket
signature, so the remark holds across arbitrary bucketizations: a lattice
sweep re-solves only genuinely new histogram shapes.

Two benchmarks quantify it:

- a full 72-node sweep with a shared solver vs. a cold solver per node;
- dedupe on vs. off for a bucketization with heavy signature repetition.
"""

from __future__ import annotations

from repro.core.disclosure import max_disclosure_series
from repro.core.minimize1 import Minimize1Solver
from repro.core.minimize2 import min_ratio_table
from repro.generalization.apply import bucketize_at

KS = (1, 3, 5, 7, 9, 11)


def _sweep(table, lattice, shared_solver: bool) -> int:
    solver = Minimize1Solver() if shared_solver else None
    nodes = 0
    for node in lattice.nodes():
        bucketization = bucketize_at(table, lattice, node)
        per_node_solver = solver if shared_solver else Minimize1Solver()
        max_disclosure_series(bucketization, KS, solver=per_node_solver)
        nodes += 1
    return nodes


def test_sweep_with_shared_solver(benchmark, adult_medium, lattice):
    nodes = benchmark.pedantic(
        _sweep, args=(adult_medium, lattice, True), rounds=1, iterations=1
    )
    assert nodes == 72


def test_sweep_with_cold_solver_per_node(benchmark, adult_medium, lattice):
    """Baseline for the incremental claim: every node recomputes MINIMIZE1
    from scratch. Expect this to be measurably slower than the shared-solver
    sweep above."""
    nodes = benchmark.pedantic(
        _sweep, args=(adult_medium, lattice, False), rounds=1, iterations=1
    )
    assert nodes == 72


def test_dedupe_ablation_on(benchmark, adult_medium, lattice):
    bucketization = bucketize_at(adult_medium, lattice, (1, 0, 0, 0))
    signatures = [b.signature for b in bucketization.buckets]
    benchmark.pedantic(
        lambda: min_ratio_table(signatures, 11, dedupe=True),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["buckets"] = len(signatures)
    benchmark.extra_info["distinct_signatures"] = len(set(signatures))


def test_dedupe_ablation_off(benchmark, adult_medium, lattice):
    """Same computation with deduplication disabled: the DP walks every
    bucket. The answers are identical (asserted); the time difference is the
    ablation result."""
    bucketization = bucketize_at(adult_medium, lattice, (1, 0, 0, 0))
    signatures = [b.signature for b in bucketization.buckets]
    off = benchmark.pedantic(
        lambda: min_ratio_table(signatures, 11, dedupe=False),
        rounds=3,
        iterations=1,
    )
    assert off == min_ratio_table(signatures, 11, dedupe=True)
