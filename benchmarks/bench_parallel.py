"""Parallel ``evaluate_many`` vs. the serial path, with a JSON artifact.

The engine's parallel executor chunks *unique* signature-id multisets over a
process pool and warms the results back into the shared cache
(:mod:`repro.engine.plane`). These benchmarks measure that path on a
multi-node sweep of mostly-distinct signature multisets (the honest case —
heavy signature overlap would favor the serial shared solver) and assert:

- **bit-for-bit agreement**: the parallel result list equals the serial one
  exactly (also property-tested in ``tests/test_plane.py``);
- **speedup**: with 4 workers the sweep beats serial by > 1.3x — asserted
  only when the machine actually has >= 2 usable cores (a process pool
  cannot beat serial CPU-bound work on one core; the JSON records
  ``cores_available`` either way so the artifact is interpretable);
- **warm-back**: a serial re-run on the parallel engine is answered entirely
  from cache.

Writes ``BENCH_parallel.json`` (serial/parallel wall time, speedup, worker
and core counts). ``BENCH_TINY=1`` shrinks the workload for CI smoke.
"""

from __future__ import annotations

import os
import random
import time

from reporting import cores_available, tiny_mode, write_bench_json

from repro.bucketization import Bucketization
from repro.engine import DisclosureEngine

WORKERS = 4


def _workload() -> tuple[list[Bucketization], tuple[int, ...]]:
    """A multi-node sweep with mostly-distinct signatures per node, so the
    serial path's cross-node solver sharing does not mask the comparison."""
    tiny = tiny_mode()
    nodes = 6 if tiny else 32
    buckets_per_node = 5 if tiny else 28
    ks = (3,) if tiny else (34,)
    rng = random.Random(20070419)
    bucketizations = []
    for i in range(nodes):
        value_lists = []
        for j in range(buckets_per_node):
            domain = [f"v{i}_{j}_{x}" for x in range(rng.randint(5, 9))]
            size = rng.randint(10, 18) if tiny else rng.randint(40, 64)
            value_lists.append([rng.choice(domain) for _ in range(size)])
        bucketizations.append(Bucketization.from_value_lists(value_lists))
    return bucketizations, ks


def test_parallel_evaluate_many_speedup(benchmark):
    bucketizations, ks = _workload()

    serial_engine = DisclosureEngine()
    start = time.perf_counter()
    serial_results = serial_engine.evaluate_many(bucketizations, ks, workers=1)
    serial_s = time.perf_counter() - start

    parallel_engine = DisclosureEngine(workers=WORKERS)
    start = time.perf_counter()
    parallel_results = benchmark.pedantic(
        parallel_engine.evaluate_many,
        args=(bucketizations, ks),
        rounds=1,
        iterations=1,
    )
    parallel_s = time.perf_counter() - start

    # The headline correctness claim: bit-for-bit identical to serial.
    assert parallel_results == serial_results
    assert parallel_engine.stats.parallel_tasks == len(bucketizations)

    # Warm-back: the same sweep again, serially, is pure cache hits.
    hits_before = parallel_engine.stats.cache_hits
    rerun = parallel_engine.evaluate_many(bucketizations, ks, workers=1)
    assert rerun == serial_results
    new_lookups = len(bucketizations) * len(ks)
    assert parallel_engine.stats.cache_hits - hits_before == new_lookups

    cores = cores_available()
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    benchmark.extra_info["speedup_vs_serial"] = round(speedup, 3)
    benchmark.extra_info["cores_available"] = cores

    write_bench_json(
        "parallel",
        {
            "serial_s": round(serial_s, 4),
            "parallel_s": round(parallel_s, 4),
            "speedup_vs_serial": round(speedup, 3),
            "workers": WORKERS,
            "cores_available": cores,
            "nodes": len(bucketizations),
            "ks": list(ks),
            "identical_results": parallel_results == serial_results,
            "parallel_tasks": parallel_engine.stats.parallel_tasks,
            "cache_hit_rate": round(parallel_engine.stats.hit_rate, 4),
        },
    )

    # The speedup target only holds where parallelism is physically possible:
    # full-size workload on a machine with at least two usable cores.
    if not tiny_mode() and cores >= 2:
        assert speedup > 1.3, (
            f"parallel evaluate_many too slow: {speedup:.2f}x "
            f"(serial {serial_s:.2f}s, parallel {parallel_s:.2f}s, "
            f"{cores} cores)"
        )


def test_parallel_fig6_sweep_matches_serial(benchmark, adult_medium):
    """The Figure-6 node sweep through the pool equals the serial sweep."""
    from repro.experiments.fig6 import run_figure6

    ks = (1, 3) if tiny_mode() else (1, 3, 5)
    serial = run_figure6(adult_medium, ks=ks)
    parallel_engine = DisclosureEngine(workers=WORKERS)
    parallel = benchmark.pedantic(
        run_figure6,
        args=(adult_medium,),
        kwargs={"ks": ks, "engine": parallel_engine, "workers": WORKERS},
        rounds=1,
        iterations=1,
    )
    assert parallel.nodes == serial.nodes
    assert parallel_engine.stats.parallel_tasks > 0
