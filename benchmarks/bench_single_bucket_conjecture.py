"""Ablation: the single-bucket shortcut vs. the full cross-bucket DP.

Empirically (4,000 randomized instances during development, plus the
assertions below), the minimizing placement always concentrates all k
antecedent atoms and the consequent in a single bucket, making

    min_b MINIMIZE1(b, k+1) * n_b / n_b(s_b^0)

a candidate shortcut for MINIMIZE2. The paper does not claim this, so the
library always runs the general DP; this benchmark (a) measures what the
shortcut would save and (b) re-asserts agreement on the benchmarked
bucketization. If the conjecture ever fails, the assertion here fails with
the counterexample's numbers.
"""

from __future__ import annotations

import pytest

from repro.core.minimize1 import Minimize1Solver
from repro.core.minimize2 import min_ratio_table
from repro.generalization.apply import bucketize_at

K = 9


def _single_bucket_shortcut(signatures, k, solver):
    best = None
    for signature in set(signatures):
        n = sum(signature)
        value = solver.minimum(signature, k + 1) * n / signature[0]
        if best is None or value < best:
            best = value
    return best


@pytest.fixture(scope="module")
def signatures(adult_medium, lattice):
    bucketization = bucketize_at(adult_medium, lattice, (2, 1, 0, 0))
    return [b.signature for b in bucketization.buckets]


def test_full_cross_bucket_dp(benchmark, signatures):
    table = benchmark(min_ratio_table, signatures, K)
    assert len(table) == K + 1


def test_single_bucket_shortcut(benchmark, signatures):
    def run():
        solver = Minimize1Solver()
        return _single_bucket_shortcut(signatures, K, solver)

    shortcut = benchmark(run)
    full = min_ratio_table(signatures, K)[K]
    # The conjecture: the general DP never beats the best single bucket.
    assert shortcut == pytest.approx(full, rel=1e-9)
