"""Sequential republication: incremental re-check vs. from-scratch.

The publish tier's claim is that checking release v_next of a table costs
the **changed** multisets, not the whole table: signatures already present
in the prior accepted release under the same threat policy reuse their
ledger-stored values (bit-identically — the ledger persists through the
lossless wire codec), so only genuinely new signatures are evaluated at
base k, plus the composition sweep at the escalated effective_k.

The benchmark publishes a growing release sequence v1..vN twice, into
separate ledgers:

- **full**: every version re-checked from scratch (``full=True``), the
  baseline an operator without a ledger pays;
- **incremental**: the default path, reusing ledger values.

Both strategies get a *fresh engine per version* — the from-scratch
baseline is a cold re-run of the checker per release, and the incremental
path must prove its reuse survives process restarts (ledger, not engine
cache). Asserted inline and schema-checked in CI
(``scripts/check_bench_schema.py``):

- verdict decisions (everything but the ``work`` counters) bit-identical
  between the two strategies, in float **and** exact arithmetic;
- the release-stage value equal to a direct whole-table
  :meth:`~repro.engine.engine.DisclosureEngine.evaluate` (the max-over-
  buckets decomposition the per-signature check relies on);
- incremental evaluating **strictly fewer** multisets than full, with
  nonzero reuse.

``BENCH_publish.json`` records both modes' work counters, wall times and
the resulting speedup (``BENCH_TINY=1`` shrinks the sequence).
"""

from __future__ import annotations

import time
from fractions import Fraction

from reporting import tiny_mode, write_bench_json

from repro.bucketization import Bucketization
from repro.codec import decode_value
from repro.engine import DisclosureEngine
from repro.publish import ReleaseLedger, RepublicationEngine

K = 1
TABLE = "census"
#: Smallest bucket is 12 distinct values, so even at the deepest
#: composition escalation (effective_k = versions * K) disclosure stays
#: well under the threshold and every version is accepted — maximal reuse.
MIN_BUCKET = 12


def _version_lists(versions: int, base: int, added: int) -> list[list[list[str]]]:
    """Cumulative value-list releases v1..vN with shape-distinct buckets.

    Bucket ``i`` holds ``MIN_BUCKET + i`` distinct values — a signature no
    other bucket has — so v1 carries ``base`` distinct multisets and each
    later version adds ``added`` new ones on top of everything before.
    """
    def bucket(i: int) -> list[str]:
        return [f"v{i}_{j}" for j in range(MIN_BUCKET + i)]

    releases = []
    lists = [bucket(i) for i in range(base)]
    releases.append([list(b) for b in lists])
    for version in range(1, versions):
        start = base + (version - 1) * added
        lists = lists + [bucket(start + i) for i in range(added)]
        releases.append([list(b) for b in lists])
    return releases


def _decision(verdict: dict) -> dict:
    """The verdict minus its work counters (what bit-identity compares)."""
    return {k: v for k, v in verdict.items() if k != "work"}


def _run_sequence(releases, *, exact: bool, c, full: bool) -> dict:
    """Publish the whole sequence with a fresh (cold) engine per version."""
    verdicts = []
    start = time.perf_counter()
    with ReleaseLedger() as ledger:
        for lists in releases:
            engine = DisclosureEngine(exact=exact)
            rep = RepublicationEngine(engine, ledger)
            verdicts.append(
                rep.publish(
                    TABLE,
                    Bucketization.from_value_lists(lists),
                    c=c,
                    k=K,
                    full=full,
                )
            )
    wall_s = time.perf_counter() - start
    return {
        "verdicts": verdicts,
        "wall_ms": wall_s * 1000.0,
        "evaluated": sum(v["work"]["evaluated_multisets"] for v in verdicts),
        "reused": sum(v["work"]["reused_multisets"] for v in verdicts),
    }


def _mode_section(*, exact: bool, versions: int, base: int, added: int) -> dict:
    c = Fraction(3, 5) if exact else 0.6
    releases = _version_lists(versions, base, added)
    full = _run_sequence(releases, exact=exact, c=c, full=True)
    incremental = _run_sequence(releases, exact=exact, c=c, full=False)

    identical = all(
        _decision(a) == _decision(b)
        for a, b in zip(full["verdicts"], incremental["verdicts"])
    )
    # The per-signature release value must equal the whole-table answer.
    engine = DisclosureEngine(exact=exact)
    whole = engine.evaluate(Bucketization.from_value_lists(releases[-1]), K)
    identical = identical and (
        decode_value(incremental["verdicts"][-1]["value"]) == whole
    )

    assert identical
    assert incremental["evaluated"] < full["evaluated"]
    assert incremental["reused"] > 0
    assert all(v["accepted"] for v in incremental["verdicts"])

    return {
        "versions": versions,
        "buckets_final": len(releases[-1]),
        "distinct_multisets_final": base + (versions - 1) * added,
        "accepted_versions": sum(
            v["accepted"] for v in incremental["verdicts"]
        ),
        "identical_results": identical,
        "full_evaluated_multisets": full["evaluated"],
        "incremental_evaluated_multisets": incremental["evaluated"],
        "reused_multisets": incremental["reused"],
        "evaluated_ratio": incremental["evaluated"] / full["evaluated"],
        "full_wall_ms": full["wall_ms"],
        "incremental_wall_ms": incremental["wall_ms"],
        "speedup": full["wall_ms"] / incremental["wall_ms"]
        if incremental["wall_ms"] > 0
        else float("inf"),
    }


def test_incremental_republication_beats_full_recheck(benchmark):
    if tiny_mode():
        float_sizes = dict(versions=3, base=5, added=2)
        exact_sizes = dict(versions=3, base=4, added=2)
    else:
        float_sizes = dict(versions=8, base=30, added=6)
        exact_sizes = dict(versions=6, base=12, added=4)

    sections = benchmark.pedantic(
        lambda: {
            "float": _mode_section(exact=False, **float_sizes),
            "exact": _mode_section(exact=True, **exact_sizes),
        },
        rounds=1,
        iterations=1,
    )

    write_bench_json(
        "publish",
        {
            "k": K,
            "c": 0.6,
            "float": sections["float"],
            "exact": sections["exact"],
        },
    )
