"""The serving tier under load: latency, throughput, coalescing, sharding.

Five claims the serving layer makes over direct engine calls, measured
against in-process :class:`~repro.service.server.BackgroundService` /
:class:`~repro.service.router.BackgroundRouter` deployments:

- **warm requests are cheap**: after the first (cold: engine + HTTP stack
  + cache fill) request, repeats of the same question are answered from
  the shared cache — ``warm_ms`` should sit far under ``cold_ms``;
- **keep-alive beats request-per-connection**: the PR-4 protocol paid a
  TCP handshake per request and documented that as its throughput cap;
  the pooled keep-alive client sends the same questions over one reused
  connection (``keepalive.speedup``);
- **batching beats request-per-question**: one ``/disclosure`` batch body
  over M bucketizations vs. M sequential single requests
  (``batch_speedup``), since the batch pays one HTTP exchange and one
  engine call on the signature plane;
- **concurrent singles coalesce**: clients firing the same question
  concurrently are served from one engine batch — ``/stats`` records the
  coalesced batches, and the answers stay bit-identical to a direct
  :class:`~repro.engine.engine.DisclosureEngine`;
- **sharding preserves the bits**: a 3-shard plane-key-routed deployment
  answers a concurrent workload identically to the single service and to
  the direct engine (``sharded.identical_results``; the req/s sections
  track the topology cost/win across PRs — on a 1-core CI box the extra
  processes are overhead, which is why no speedup is asserted).

``BENCH_service.json`` records all five (schema-checked in CI via
``scripts/check_bench_schema.py``; ``BENCH_TINY=1`` shrinks the workload).
"""

from __future__ import annotations

import random
import threading
import time

from reporting import tiny_mode, write_bench_json

from repro.bucketization import Bucketization
from repro.engine import DisclosureEngine
from repro.service import BackgroundRouter, BackgroundService, ServiceClient

K = 3
CONCURRENT_CLIENTS = 8
SHARDS = 3
#: Client threads for the sharded-vs-single comparison.
HAMMER_THREADS = 4


def _workload() -> list[Bucketization]:
    """Distinct bucketizations over one small value universe (shared
    signatures — the shape a republishing service sees)."""
    tiny = tiny_mode()
    count = 8 if tiny else 48
    rng = random.Random(20070419)
    out = []
    for _ in range(count):
        buckets = [
            [rng.choice("abcdefgh") for _ in range(rng.randint(4, 10))]
            for _ in range(rng.randint(2, 5))
        ]
        out.append(Bucketization.from_value_lists(buckets))
    return out


def _sequential_singles(client: ServiceClient, bs, k: int) -> list:
    return [client.disclosure(b, k) for b in bs]


def _hammer(host: str, port: int, bs, k: int, passes: int) -> tuple[float, list]:
    """``HAMMER_THREADS`` pooled clients each sweep the question list
    ``passes`` times; returns (wall seconds, every thread's answers)."""
    results: list = [None] * HAMMER_THREADS
    barrier = threading.Barrier(HAMMER_THREADS + 1)

    def worker(index: int) -> None:
        client = ServiceClient(host, port, pool_size=2)
        barrier.wait(timeout=60)
        answers = []
        for _ in range(passes):
            for b in bs:
                answers.append(client.disclosure(b, k))
        results[index] = answers
        client.close()

    threads = [
        threading.Thread(target=worker, args=(i,))
        for i in range(HAMMER_THREADS)
    ]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=60)
    start = time.perf_counter()
    for thread in threads:
        thread.join(timeout=300)
    elapsed = time.perf_counter() - start
    return elapsed, results


def test_service_latency_throughput_coalescing(benchmark):
    bs = _workload()
    repeats = 20 if tiny_mode() else 200

    with BackgroundService(backend="serial", batch_window=0.0) as bg:
        client = bg.client()

        # Cold: the very first question this service has ever seen.
        start = time.perf_counter()
        cold_value = client.disclosure(bs[0], K)
        cold_s = time.perf_counter() - start

        # Warm: the same question repeatedly (pure cache + HTTP cost),
        # through the pooled keep-alive client — the default path.
        def warm_round() -> list:
            return [client.disclosure(bs[0], K) for _ in range(repeats)]

        start = time.perf_counter()
        warm_values = benchmark.pedantic(warm_round, rounds=1, iterations=1)
        warm_elapsed = time.perf_counter() - start
        warm_s = warm_elapsed / repeats
        requests_per_s = repeats / warm_elapsed if warm_elapsed > 0 else 0.0
        assert set(warm_values) == {cold_value}

        # Keep-alive vs. one-connection-per-request on the same warm
        # question: same server, same cache hits, only the transport
        # differs — the delta is pure TCP setup/teardown.
        keepalive_client = ServiceClient(bg.host, bg.port, pool_size=2)
        per_connection_client = ServiceClient(
            bg.host, bg.port, keep_alive=False
        )
        start = time.perf_counter()
        for _ in range(repeats):
            keepalive_client.disclosure(bs[0], K)
        keepalive_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(repeats):
            per_connection_client.disclosure(bs[0], K)
        per_connection_elapsed = time.perf_counter() - start
        keepalive_client.close()
        keepalive_rps = (
            repeats / keepalive_elapsed if keepalive_elapsed > 0 else 0.0
        )
        per_connection_rps = (
            repeats / per_connection_elapsed
            if per_connection_elapsed > 0
            else 0.0
        )
        keepalive_speedup = (
            per_connection_elapsed / keepalive_elapsed
            if keepalive_elapsed > 0
            else float("inf")
        )

        # Request-per-question vs. one batch body over fresh questions.
        start = time.perf_counter()
        sequential_values = _sequential_singles(client, bs, K + 1)
        sequential_s = time.perf_counter() - start
        start = time.perf_counter()
        batch_series = client.disclosure_batch(bs, [K + 2])
        batch_s = time.perf_counter() - start
        batch_values = [series[K + 2] for series in batch_series]
        batch_speedup = sequential_s / batch_s if batch_s > 0 else float("inf")

    # Concurrent identical singles against a coalescing window: the
    # service must serve everyone from (at most a couple of) engine
    # batches, bit-identically.
    with BackgroundService(backend="serial", batch_window=0.2) as bg:
        host, port = bg.host, bg.port
        barrier = threading.Barrier(CONCURRENT_CLIENTS)
        concurrent_values: list = [None] * CONCURRENT_CLIENTS

        def hit(index: int) -> None:
            barrier.wait(timeout=60)
            concurrent_values[index] = ServiceClient(host, port).disclosure(
                bs[0], K
            )

        threads = [
            threading.Thread(target=hit, args=(i,))
            for i in range(CONCURRENT_CLIENTS)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        concurrent_s = time.perf_counter() - start
        service_stats = bg.client().stats()["service"]

    # Sharded vs. single under the same concurrent pooled-client hammer:
    # HAMMER_THREADS clients sweep the fresh question list (k = K+3).
    hammer_passes = 2 if tiny_mode() else 4
    hammer_requests = HAMMER_THREADS * hammer_passes * len(bs)
    with BackgroundService(backend="serial", batch_window=0.0) as bg:
        single_elapsed, single_answers = _hammer(
            bg.host, bg.port, bs, K + 3, hammer_passes
        )
    with BackgroundRouter(
        shards=SHARDS, backend="serial", batch_window=0.0
    ) as bg:
        sharded_elapsed, sharded_answers = _hammer(
            bg.host, bg.port, bs, K + 3, hammer_passes
        )
        router_stats = bg.client().stats()["router"]
    single_rps = (
        hammer_requests / single_elapsed if single_elapsed > 0 else 0.0
    )
    sharded_rps = (
        hammer_requests / sharded_elapsed if sharded_elapsed > 0 else 0.0
    )

    # Ground truth: a direct engine on the same questions.
    engine = DisclosureEngine()
    expected_sweep = [engine.evaluate(b, K + 3) for b in bs] * hammer_passes
    identical = (
        cold_value == engine.evaluate(bs[0], K)
        and sequential_values == [engine.evaluate(b, K + 1) for b in bs]
        and batch_values == [engine.evaluate(b, K + 2) for b in bs]
        and concurrent_values == [engine.evaluate(bs[0], K)] * CONCURRENT_CLIENTS
    )
    sharded_identical = all(
        answers == expected_sweep for answers in sharded_answers
    ) and all(answers == expected_sweep for answers in single_answers)
    assert identical
    assert sharded_identical

    coalesced_batches = service_stats["coalesced_batches"]
    assert coalesced_batches >= 1, "no concurrent singles were coalesced"
    assert service_stats["single_requests"] == CONCURRENT_CLIENTS

    benchmark.extra_info["requests_per_s"] = round(requests_per_s, 1)
    benchmark.extra_info["batch_speedup"] = round(batch_speedup, 3)
    benchmark.extra_info["keepalive_speedup"] = round(keepalive_speedup, 3)
    benchmark.extra_info["sharded_requests_per_s"] = round(sharded_rps, 1)

    write_bench_json(
        "service",
        {
            "backend": "serial",
            "workers": 1,
            "k": K,
            "questions": len(bs),
            "warm_repeats": repeats,
            "cold_ms": round(cold_s * 1000, 3),
            "warm_ms": round(warm_s * 1000, 3),
            "requests_per_s": round(requests_per_s, 1),
            "sequential_s": round(sequential_s, 4),
            "batch_s": round(batch_s, 4),
            "batch_speedup": round(batch_speedup, 3),
            "concurrent_clients": CONCURRENT_CLIENTS,
            "concurrent_s": round(concurrent_s, 4),
            "coalesced_batches": coalesced_batches,
            "coalesced_singles": service_stats["coalesced_singles"],
            "max_coalesced": service_stats["max_coalesced"],
            "identical_results": identical,
            "keepalive": {
                "warm_repeats": repeats,
                "requests_per_s": round(keepalive_rps, 1),
                "per_connection_requests_per_s": round(per_connection_rps, 1),
                "speedup": round(keepalive_speedup, 3),
            },
            "sharded": {
                "shards": SHARDS,
                "clients": HAMMER_THREADS,
                "requests": hammer_requests,
                "requests_per_s": round(sharded_rps, 1),
                "single_requests_per_s": round(single_rps, 1),
                "split_batches": router_stats["split_batches"],
                "restarts": router_stats["restarts"],
                "identical_results": sharded_identical,
            },
        },
    )
