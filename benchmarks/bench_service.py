"""The serving layer under load: latency, throughput, coalescing, with JSON.

Three claims the service makes over direct engine calls, measured against
an in-process :class:`~repro.service.server.BackgroundService`:

- **warm requests are cheap**: after the first (cold: engine + HTTP stack
  + cache fill) request, repeats of the same question are answered from
  the shared cache — ``warm_ms`` should sit far under ``cold_ms``;
- **batching beats request-per-question**: one ``/disclosure`` batch body
  over M bucketizations vs. M sequential single requests
  (``batch_speedup``), since the batch pays one HTTP exchange and one
  engine call on the signature plane;
- **concurrent singles coalesce**: clients firing the same question
  concurrently are served from one engine batch — ``/stats`` records the
  coalesced batches, and the answers stay bit-identical to a direct
  :class:`~repro.engine.engine.DisclosureEngine`.

``BENCH_service.json`` records all three (schema-checked in CI via
``scripts/check_bench_schema.py``; ``BENCH_TINY=1`` shrinks the workload).
"""

from __future__ import annotations

import random
import threading
import time

from reporting import tiny_mode, write_bench_json

from repro.bucketization import Bucketization
from repro.engine import DisclosureEngine
from repro.service import BackgroundService, ServiceClient

K = 3
CONCURRENT_CLIENTS = 8


def _workload() -> list[Bucketization]:
    """Distinct bucketizations over one small value universe (shared
    signatures — the shape a republishing service sees)."""
    tiny = tiny_mode()
    count = 8 if tiny else 48
    rng = random.Random(20070419)
    out = []
    for _ in range(count):
        buckets = [
            [rng.choice("abcdefgh") for _ in range(rng.randint(4, 10))]
            for _ in range(rng.randint(2, 5))
        ]
        out.append(Bucketization.from_value_lists(buckets))
    return out


def _sequential_singles(client: ServiceClient, bs, k: int) -> list:
    return [client.disclosure(b, k) for b in bs]


def test_service_latency_throughput_coalescing(benchmark):
    bs = _workload()
    repeats = 20 if tiny_mode() else 200

    with BackgroundService(backend="serial", batch_window=0.0) as bg:
        client = bg.client()

        # Cold: the very first question this service has ever seen.
        start = time.perf_counter()
        cold_value = client.disclosure(bs[0], K)
        cold_s = time.perf_counter() - start

        # Warm: the same question repeatedly (pure cache + HTTP cost).
        def warm_round() -> list:
            return [client.disclosure(bs[0], K) for _ in range(repeats)]

        start = time.perf_counter()
        warm_values = benchmark.pedantic(warm_round, rounds=1, iterations=1)
        warm_elapsed = time.perf_counter() - start
        warm_s = warm_elapsed / repeats
        requests_per_s = repeats / warm_elapsed if warm_elapsed > 0 else 0.0
        assert set(warm_values) == {cold_value}

        # Request-per-question vs. one batch body over fresh questions.
        start = time.perf_counter()
        sequential_values = _sequential_singles(client, bs, K + 1)
        sequential_s = time.perf_counter() - start
        start = time.perf_counter()
        batch_series = client.disclosure_batch(bs, [K + 2])
        batch_s = time.perf_counter() - start
        batch_values = [series[K + 2] for series in batch_series]
        batch_speedup = sequential_s / batch_s if batch_s > 0 else float("inf")

    # Concurrent identical singles against a coalescing window: the
    # service must serve everyone from (at most a couple of) engine
    # batches, bit-identically.
    with BackgroundService(backend="serial", batch_window=0.2) as bg:
        host, port = bg.host, bg.port
        barrier = threading.Barrier(CONCURRENT_CLIENTS)
        concurrent_values: list = [None] * CONCURRENT_CLIENTS

        def hit(index: int) -> None:
            barrier.wait(timeout=60)
            concurrent_values[index] = ServiceClient(host, port).disclosure(
                bs[0], K
            )

        threads = [
            threading.Thread(target=hit, args=(i,))
            for i in range(CONCURRENT_CLIENTS)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        concurrent_s = time.perf_counter() - start
        service_stats = bg.client().stats()["service"]

    # Ground truth: a direct engine on the same questions.
    engine = DisclosureEngine()
    identical = (
        cold_value == engine.evaluate(bs[0], K)
        and sequential_values == [engine.evaluate(b, K + 1) for b in bs]
        and batch_values == [engine.evaluate(b, K + 2) for b in bs]
        and concurrent_values == [engine.evaluate(bs[0], K)] * CONCURRENT_CLIENTS
    )
    assert identical

    coalesced_batches = service_stats["coalesced_batches"]
    assert coalesced_batches >= 1, "no concurrent singles were coalesced"
    assert service_stats["single_requests"] == CONCURRENT_CLIENTS

    benchmark.extra_info["requests_per_s"] = round(requests_per_s, 1)
    benchmark.extra_info["batch_speedup"] = round(batch_speedup, 3)

    write_bench_json(
        "service",
        {
            "backend": "serial",
            "workers": 1,
            "k": K,
            "questions": len(bs),
            "warm_repeats": repeats,
            "cold_ms": round(cold_s * 1000, 3),
            "warm_ms": round(warm_s * 1000, 3),
            "requests_per_s": round(requests_per_s, 1),
            "sequential_s": round(sequential_s, 4),
            "batch_s": round(batch_s, 4),
            "batch_speedup": round(batch_speedup, 3),
            "concurrent_clients": CONCURRENT_CLIENTS,
            "concurrent_s": round(concurrent_s, 4),
            "coalesced_batches": coalesced_batches,
            "coalesced_singles": service_stats["coalesced_singles"],
            "max_coalesced": service_stats["max_coalesced"],
            "identical_results": identical,
        },
    )
