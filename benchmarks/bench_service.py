"""The serving tier under load: latency, throughput, coalescing, sharding.

Five claims the serving layer makes over direct engine calls, measured
against in-process :class:`~repro.service.server.BackgroundService` /
:class:`~repro.service.router.BackgroundRouter` deployments:

- **warm requests are cheap**: after the first (cold: engine + HTTP stack
  + cache fill) request, repeats of the same question are answered from
  the shared cache — ``warm_ms`` should sit far under ``cold_ms``;
- **keep-alive beats request-per-connection**: the PR-4 protocol paid a
  TCP handshake per request and documented that as its throughput cap;
  the pooled keep-alive client sends the same questions over one reused
  connection (``keepalive.speedup``);
- **batching beats request-per-question**: one ``/disclosure`` batch body
  over M bucketizations vs. M sequential single requests
  (``batch_speedup``), since the batch pays one HTTP exchange and one
  engine call on the signature plane;
- **concurrent singles coalesce**: clients firing the same question
  concurrently are served from one engine batch — ``/stats`` records the
  coalesced batches, and the answers stay bit-identical to a direct
  :class:`~repro.engine.engine.DisclosureEngine`;
- **sharding preserves the bits and never costs throughput**: a 3-shard
  plane-key-routed deployment (``shard_mode="auto"``: in-process shards
  on a low-core box, subprocess shards when cores outnumber shards)
  answers a concurrent workload identically to the single service and to
  the direct engine (``sharded.identical_results``), and — thanks to the
  router's zero-reparse byte memo, cache-peek fast path and upstream
  coalescing — at least matches the single service's req/s
  (``sharded.requests_per_s_ratio >= 1.0``, enforced for non-tiny runs
  by ``scripts/check_bench_schema.py``);
- **routing is cheap**: the ``router_overhead`` microbench times one
  routing decision three ways — the old full-reparse path (build a
  ``Bucketization``), the keyed path (one signature pass over raw
  lists) and the steady-state byte-memo lookup;
- **tenants share nothing**: two tenants with disjoint default threat
  models sweep the same questions through one service — the
  ``multi_tenant`` section records per-tenant req/s, per-tenant engine
  cache entries and per-tenant cache files, with answers bit-identical
  to each tenant's direct engine (``cache_isolated`` /
  ``identical_results`` are enforced by the schema check).

``BENCH_service.json`` records all of it (schema-checked in CI via
``scripts/check_bench_schema.py``; ``BENCH_TINY=1`` shrinks the
workload), including p50/p95/p99 request latencies for the warm single
service and the sharded topology.
"""

from __future__ import annotations

import json
import random
import tempfile
import threading
import time
from pathlib import Path

from reporting import tiny_mode, write_bench_json

from repro.bucketization import Bucketization
from repro.engine import DisclosureEngine, get_adversary
from repro.service import BackgroundRouter, BackgroundService, ServiceClient
from repro.service.router import shard_key
from repro.service.wire import (
    bucket_lists,
    bucketization_from_payload,
    signature_items_from_lists,
)

K = 3
CONCURRENT_CLIENTS = 8
SHARDS = 3
#: Client threads for the sharded-vs-single comparison.
HAMMER_THREADS = 4


def _percentiles(latencies_s: list[float]) -> dict[str, float]:
    """p50/p95/p99 of per-request wall times, reported in milliseconds."""
    ordered = sorted(latencies_s)
    out: dict[str, float] = {}
    for point in (50, 95, 99):
        index = min(
            len(ordered) - 1, round(point / 100 * (len(ordered) - 1))
        )
        out[f"p{point}_ms"] = round(ordered[index] * 1000, 3)
    return out


def _router_overhead_microbench(b: Bucketization) -> dict[str, float]:
    """One routing decision, three ways: full reparse (the pre-refactor
    path: JSON -> ``Bucketization`` object graph -> plane key), keyed
    (JSON -> one signature pass over the raw lists -> plane key), and the
    steady-state byte-memo lookup that skips JSON entirely."""
    payload = {
        "buckets": bucket_lists(b),
        "k": K,
        "model": "implication",
        "exact": False,
    }
    body = json.dumps(payload).encode()
    iterations = 200 if tiny_mode() else 5000

    start = time.perf_counter()
    for _ in range(iterations):
        decoded = json.loads(body)
        items = bucketization_from_payload(
            decoded["buckets"]
        ).signature_items()
        shard_key("float", decoded["model"], (decoded["k"],), items) % SHARDS
    reparse_s = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(iterations):
        decoded = json.loads(body)
        items = signature_items_from_lists(decoded["buckets"])
        shard_key("float", decoded["model"], (decoded["k"],), items) % SHARDS
    keyed_s = time.perf_counter() - start

    memo = {("/disclosure", body): 1}
    start = time.perf_counter()
    for _ in range(iterations):
        memo.get(("/disclosure", body))
    memo_s = time.perf_counter() - start

    return {
        "iterations": iterations,
        "reparse_us": round(reparse_s / iterations * 1e6, 3),
        "keyed_us": round(keyed_s / iterations * 1e6, 3),
        "memo_us": round(memo_s / iterations * 1e6, 3),
        "keyed_speedup": round(reparse_s / keyed_s, 3) if keyed_s > 0 else 0.0,
        "memo_speedup": round(reparse_s / memo_s, 3) if memo_s > 0 else 0.0,
    }


#: Two tenants with disjoint default threat models — the isolation claim
#: is only meaningful if their parameterizations share nothing.
TENANTS = {
    "acme": {
        "model": "weighted",
        "params": {"weights": {"a": 2.5, "b": 0.5}},
    },
    "globex": {"model": "sampling", "params": {"samples": 400, "seed": 7}},
}


def _multi_tenant_bench(bs: list[Bucketization]) -> dict:
    """Two tenants sweeping the same question list through one service:
    per-tenant req/s, and the cache-isolation evidence — each tenant's
    answers land in that tenant's engines (own entry counts) and persist
    to that tenant's cache files, while staying bit-identical to a direct
    per-tenant :class:`DisclosureEngine`."""
    questions = bs[: 4 if tiny_mode() else 12]
    engine = DisclosureEngine()
    expected = {
        "acme": [
            engine.evaluate(
                b, K, model=get_adversary("weighted", weights={"a": 2.5, "b": 0.5})
            )
            for b in questions
        ],
        "globex": [
            engine.evaluate(
                b, K, model=get_adversary("sampling", samples=400, seed=7)
            )
            for b in questions
        ],
    }
    with tempfile.TemporaryDirectory() as tmp:
        prefix = Path(tmp) / "fleet"
        with BackgroundService(
            backend="serial",
            batch_window=0.0,
            tenants=TENANTS,
            cache_path=prefix,
        ) as bg:
            client = bg.client()
            answers: dict[str, list] = {tenant: [] for tenant in TENANTS}
            start = time.perf_counter()
            for tenant in TENANTS:
                for b in questions:
                    answers[tenant].append(
                        client.disclosure(b, K, tenant=tenant)
                    )
            elapsed = time.perf_counter() - start
            tenant_stats = client.stats()["tenants"]
            per_tenant_requests = {
                tenant: tenant_stats[tenant]["requests"] for tenant in TENANTS
            }
            per_tenant_cache_entries = {
                tenant: tenant_stats[tenant]["engines"]["float"][
                    "cache_entries"
                ]
                for tenant in TENANTS
            }
        tenant_files = sorted(
            entry.name
            for entry in Path(tmp).iterdir()
            if any(f".{tenant}." in entry.name for tenant in TENANTS)
        )
    requests = len(TENANTS) * len(questions)
    identical = all(answers[t] == expected[t] for t in TENANTS)
    # Isolation: every tenant computed its own answers (non-empty private
    # cache) and persisted them to its own files — nothing shared.
    cache_isolated = all(
        per_tenant_cache_entries[tenant] >= 1
        and f"fleet.{tenant}.float.pkl" in tenant_files
        for tenant in TENANTS
    )
    return {
        "tenants": sorted(TENANTS),
        "questions": len(questions),
        "requests": requests,
        "requests_per_s": round(requests / elapsed, 1) if elapsed > 0 else 0.0,
        "per_tenant_requests": per_tenant_requests,
        "per_tenant_cache_entries": per_tenant_cache_entries,
        "cache_files": tenant_files,
        "cache_isolated": cache_isolated,
        "identical_results": identical,
    }


def _workload() -> list[Bucketization]:
    """Distinct bucketizations over one small value universe (shared
    signatures — the shape a republishing service sees)."""
    tiny = tiny_mode()
    count = 8 if tiny else 48
    rng = random.Random(20070419)
    out = []
    for _ in range(count):
        buckets = [
            [rng.choice("abcdefgh") for _ in range(rng.randint(4, 10))]
            for _ in range(rng.randint(2, 5))
        ]
        out.append(Bucketization.from_value_lists(buckets))
    return out


def _sequential_singles(client: ServiceClient, bs, k: int) -> list:
    return [client.disclosure(b, k) for b in bs]


def _hammer(
    host: str, port: int, bs, k: int, passes: int
) -> tuple[float, list, list]:
    """``HAMMER_THREADS`` pooled clients each sweep the question list
    ``passes`` times; returns (wall seconds, every thread's answers,
    every request's wall time).

    One untimed warmup sweep fills the caches (and, behind a router, the
    byte memo) first, so the timed window measures the steady-state
    serving path both topologies claim — not the one-off engine fills,
    which are identical work for both and would only dilute the
    comparison with compute noise."""
    with ServiceClient(host, port, pool_size=1) as warmup:
        for b in bs:
            warmup.disclosure(b, k)
    results: list = [None] * HAMMER_THREADS
    latencies: list = [None] * HAMMER_THREADS
    barrier = threading.Barrier(HAMMER_THREADS + 1)

    def worker(index: int) -> None:
        client = ServiceClient(host, port, pool_size=2)
        barrier.wait(timeout=60)
        answers = []
        times = []
        for _ in range(passes):
            for b in bs:
                begin = time.perf_counter()
                answers.append(client.disclosure(b, k))
                times.append(time.perf_counter() - begin)
        results[index] = answers
        latencies[index] = times
        client.close()

    threads = [
        threading.Thread(target=worker, args=(i,))
        for i in range(HAMMER_THREADS)
    ]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=60)
    start = time.perf_counter()
    for thread in threads:
        thread.join(timeout=300)
    elapsed = time.perf_counter() - start
    return elapsed, results, [t for times in latencies for t in times or []]


def test_service_latency_throughput_coalescing(benchmark):
    bs = _workload()
    repeats = 20 if tiny_mode() else 200

    with BackgroundService(backend="serial", batch_window=0.0) as bg:
        client = bg.client()

        # Cold: the very first question this service has ever seen.
        start = time.perf_counter()
        cold_value = client.disclosure(bs[0], K)
        cold_s = time.perf_counter() - start

        # Warm: the same question repeatedly (pure cache + HTTP cost),
        # through the pooled keep-alive client — the default path.
        warm_latencies: list[float] = []

        def warm_round() -> list:
            values = []
            for _ in range(repeats):
                begin = time.perf_counter()
                values.append(client.disclosure(bs[0], K))
                warm_latencies.append(time.perf_counter() - begin)
            return values

        start = time.perf_counter()
        warm_values = benchmark.pedantic(warm_round, rounds=1, iterations=1)
        warm_elapsed = time.perf_counter() - start
        warm_s = warm_elapsed / repeats
        requests_per_s = repeats / warm_elapsed if warm_elapsed > 0 else 0.0
        assert set(warm_values) == {cold_value}

        # Keep-alive vs. one-connection-per-request on the same warm
        # question: same server, same cache hits, only the transport
        # differs — the delta is pure TCP setup/teardown.
        keepalive_client = ServiceClient(bg.host, bg.port, pool_size=2)
        per_connection_client = ServiceClient(
            bg.host, bg.port, keep_alive=False
        )
        start = time.perf_counter()
        for _ in range(repeats):
            keepalive_client.disclosure(bs[0], K)
        keepalive_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(repeats):
            per_connection_client.disclosure(bs[0], K)
        per_connection_elapsed = time.perf_counter() - start
        keepalive_client.close()
        keepalive_rps = (
            repeats / keepalive_elapsed if keepalive_elapsed > 0 else 0.0
        )
        per_connection_rps = (
            repeats / per_connection_elapsed
            if per_connection_elapsed > 0
            else 0.0
        )
        keepalive_speedup = (
            per_connection_elapsed / keepalive_elapsed
            if keepalive_elapsed > 0
            else float("inf")
        )

        # Request-per-question vs. one batch body over fresh questions.
        start = time.perf_counter()
        sequential_values = _sequential_singles(client, bs, K + 1)
        sequential_s = time.perf_counter() - start
        start = time.perf_counter()
        batch_series = client.disclosure_batch(bs, [K + 2])
        batch_s = time.perf_counter() - start
        batch_values = [series[K + 2] for series in batch_series]
        batch_speedup = sequential_s / batch_s if batch_s > 0 else float("inf")

    # Concurrent identical singles against a coalescing window: the
    # service must serve everyone from (at most a couple of) engine
    # batches, bit-identically.
    with BackgroundService(backend="serial", batch_window=0.2) as bg:
        host, port = bg.host, bg.port
        barrier = threading.Barrier(CONCURRENT_CLIENTS)
        concurrent_values: list = [None] * CONCURRENT_CLIENTS

        def hit(index: int) -> None:
            barrier.wait(timeout=60)
            concurrent_values[index] = ServiceClient(host, port).disclosure(
                bs[0], K
            )

        threads = [
            threading.Thread(target=hit, args=(i,))
            for i in range(CONCURRENT_CLIENTS)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        concurrent_s = time.perf_counter() - start
        service_stats = bg.client().stats()["service"]

    # Sharded vs. single under the same concurrent pooled-client hammer:
    # HAMMER_THREADS clients sweep the fresh question list (k = K+3).
    hammer_passes = 2 if tiny_mode() else 4
    hammer_requests = HAMMER_THREADS * hammer_passes * len(bs)
    with BackgroundService(backend="serial", batch_window=0.0) as bg:
        single_elapsed, single_answers, _ = _hammer(
            bg.host, bg.port, bs, K + 3, hammer_passes
        )
    with BackgroundRouter(
        shards=SHARDS, shard_mode="auto", backend="serial", batch_window=0.0
    ) as bg:
        sharded_elapsed, sharded_answers, sharded_latencies = _hammer(
            bg.host, bg.port, bs, K + 3, hammer_passes
        )
        router_stats = bg.client().stats()["router"]
    single_rps = (
        hammer_requests / single_elapsed if single_elapsed > 0 else 0.0
    )
    sharded_rps = (
        hammer_requests / sharded_elapsed if sharded_elapsed > 0 else 0.0
    )

    # Ground truth: a direct engine on the same questions.
    engine = DisclosureEngine()
    expected_sweep = [engine.evaluate(b, K + 3) for b in bs] * hammer_passes
    identical = (
        cold_value == engine.evaluate(bs[0], K)
        and sequential_values == [engine.evaluate(b, K + 1) for b in bs]
        and batch_values == [engine.evaluate(b, K + 2) for b in bs]
        and concurrent_values == [engine.evaluate(bs[0], K)] * CONCURRENT_CLIENTS
    )
    sharded_identical = all(
        answers == expected_sweep for answers in sharded_answers
    ) and all(answers == expected_sweep for answers in single_answers)
    assert identical
    assert sharded_identical

    coalesced_batches = service_stats["coalesced_batches"]
    assert coalesced_batches >= 1, "no concurrent singles were coalesced"
    assert service_stats["single_requests"] == CONCURRENT_CLIENTS

    sharded_ratio = sharded_rps / single_rps if single_rps > 0 else 0.0
    router_overhead = _router_overhead_microbench(bs[0])
    multi_tenant = _multi_tenant_bench(bs)
    assert multi_tenant["identical_results"]
    assert multi_tenant["cache_isolated"]

    benchmark.extra_info["requests_per_s"] = round(requests_per_s, 1)
    benchmark.extra_info["batch_speedup"] = round(batch_speedup, 3)
    benchmark.extra_info["keepalive_speedup"] = round(keepalive_speedup, 3)
    benchmark.extra_info["sharded_requests_per_s"] = round(sharded_rps, 1)
    benchmark.extra_info["sharded_ratio"] = round(sharded_ratio, 3)

    write_bench_json(
        "service",
        {
            "backend": "serial",
            "workers": 1,
            "k": K,
            "questions": len(bs),
            "warm_repeats": repeats,
            "cold_ms": round(cold_s * 1000, 3),
            "warm_ms": round(warm_s * 1000, 3),
            "requests_per_s": round(requests_per_s, 1),
            "sequential_s": round(sequential_s, 4),
            "batch_s": round(batch_s, 4),
            "batch_speedup": round(batch_speedup, 3),
            "concurrent_clients": CONCURRENT_CLIENTS,
            "concurrent_s": round(concurrent_s, 4),
            "coalesced_batches": coalesced_batches,
            "coalesced_singles": service_stats["coalesced_singles"],
            "max_coalesced": service_stats["max_coalesced"],
            "identical_results": identical,
            "latency": _percentiles(warm_latencies),
            "router_overhead": router_overhead,
            "keepalive": {
                "warm_repeats": repeats,
                "requests_per_s": round(keepalive_rps, 1),
                "per_connection_requests_per_s": round(per_connection_rps, 1),
                "speedup": round(keepalive_speedup, 3),
            },
            "sharded": {
                "shards": SHARDS,
                "shard_mode": router_stats["shard_mode"],
                "clients": HAMMER_THREADS,
                "requests": hammer_requests,
                "requests_per_s": round(sharded_rps, 1),
                "single_requests_per_s": round(single_rps, 1),
                "requests_per_s_ratio": round(sharded_ratio, 3),
                **_percentiles(sharded_latencies),
                "split_batches": router_stats["split_batches"],
                "restarts": router_stats["restarts"],
                "route_memo_hits": router_stats["route_memo_hits"],
                "reparse_avoided": router_stats["reparse_avoided"],
                "fast_hits": router_stats["fast_hits"],
                "coalesced_batches": router_stats["coalesced_batches"],
                "identical_results": sharded_identical,
            },
            "multi_tenant": multi_tenant,
        },
    )
