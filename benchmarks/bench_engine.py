"""Engine-level shared caching across adversary models (the tentpole claim).

The :class:`~repro.engine.engine.DisclosureEngine` keeps **one** memo dict
for every registered model, keyed by ``(model, params, k, signature
multiset)``. These benchmarks sweep the full 72-node Adult lattice with the
three polynomial models and measure the cache two ways:

- ``test_shared_engine_two_epoch_sweep`` — the incremental-republication
  scenario (the same lattice swept twice, as a republishing pipeline or a
  dashboard refresh would): the second epoch must be answered from the
  cache, with **at least one hit per repeated signature multiset for every
  model** — the engine-level memoization is demonstrably shared machinery,
  not a per-model dict.
- ``test_cold_engine_baseline`` — the same work with a fresh engine per
  node: the cache never carries across nodes, so its hit rate is the floor
  the shared engine must beat.

Run with ``pytest benchmarks/bench_engine.py --benchmark-only`` for timings,
or ``--benchmark-disable`` for the assertions alone (CI does the latter).
Either way the shared-sweep benchmark writes ``BENCH_engine.json`` (wall
time, hit rate, cache size, and a ``kernel`` section timing the scalar vs
numpy float kernels over the sweep's real signature workload) so the
numbers are tracked across PRs.
"""

from __future__ import annotations

import time
from collections import Counter

from reporting import tiny_mode, write_bench_json

from repro.core.kernel import numpy_available
from repro.core.minimize1 import Minimize1Solver
from repro.core.minimize2 import min_ratio_table
from repro.engine import DisclosureEngine
from repro.generalization.apply import bucketize_at

#: The polynomial / closed-form models (oracle models do not scale to Adult).
MODELS = ("implication", "negation", "weighted")
KS = (1, 3, 5)


def _bucketizations(table, lattice):
    return [bucketize_at(table, lattice, node) for node in lattice.nodes()]


def _shared_sweep(bucketizations, epochs: int) -> DisclosureEngine:
    engine = DisclosureEngine()
    for _ in range(epochs):
        for model in MODELS:
            engine.evaluate_many(bucketizations, KS, model=model)
    return engine


def _cold_sweep(bucketizations) -> tuple[int, int]:
    """(evaluations, cache_hits) with a fresh engine per bucketization."""
    evaluations = hits = 0
    for bucketization in bucketizations:
        engine = DisclosureEngine()
        for model in MODELS:
            engine.series(bucketization, KS, model=model)
        evaluations += engine.stats.evaluations
        hits += engine.stats.cache_hits
    return evaluations, hits


def _time_kernel(kern: str, distinct_sigs, per_node_sigs, max_m: int):
    """One timed pass of the float hot path under ``kern``.

    Covers both DPs: the batched MINIMIZE1 tables over every distinct
    signature in the sweep (the vectorized kernel proper) and the full
    MINIMIZE2 min-ratio table per lattice node.
    """
    start = time.perf_counter()
    tables = Minimize1Solver(kernel=kern).tables(distinct_sigs, max_m)
    minimize1_s = time.perf_counter() - start
    start = time.perf_counter()
    ratios = [
        min_ratio_table(sigs, max(KS), kernel=kern) for sigs in per_node_sigs
    ]
    min_ratio_s = time.perf_counter() - start
    return minimize1_s, min_ratio_s, (tables, ratios)


def _kernel_section(bucketizations) -> dict:
    """Scalar vs numpy wall time over the sweep's real signature workload.

    The committed (non-tiny) record is the ROADMAP's "raw speed" evidence:
    the batched MINIMIZE1 kernel must run >= 5x faster under numpy than
    under the scalar loops, with bit-identical results
    (``check_bench_schema.py`` gates both).
    """
    per_node_sigs = [
        [sig for sig, count in b.signature_items() for _ in range(count)]
        for b in bucketizations
    ]
    distinct_sigs = sorted({sig for sigs in per_node_sigs for sig in sigs})
    max_m = 6 if tiny_mode() else 8
    section = {
        "kernels": ["scalar", "numpy"],
        "numpy_available": numpy_available(),
        "distinct_signatures": len(distinct_sigs),
        "nodes": len(per_node_sigs),
        "max_m": max_m,
        "max_k": max(KS),
        "scalar_minimize1_s": None,
        "numpy_minimize1_s": None,
        "minimize1_speedup": None,
        "scalar_min_ratio_s": None,
        "numpy_min_ratio_s": None,
        "min_ratio_speedup": None,
        "identical_results": None,
    }
    repeats = 1 if tiny_mode() else 3  # best-of-N: timings, not noise
    warmup = [distinct_sigs[: min(16, len(distinct_sigs))]]
    for kern in ("scalar", "numpy") if numpy_available() else ("scalar",):
        _time_kernel(kern, warmup[0], warmup, max_m)  # allocator warm-up
    runs = [
        _time_kernel("scalar", distinct_sigs, per_node_sigs, max_m)
        for _ in range(repeats)
    ]
    scalar_m1 = min(run[0] for run in runs)
    scalar_mr = min(run[1] for run in runs)
    scalar_results = runs[-1][2]
    section["scalar_minimize1_s"] = round(scalar_m1, 4)
    section["scalar_min_ratio_s"] = round(scalar_mr, 4)
    if not numpy_available():
        return section  # scalar-only environment: timings stay one-sided
    runs = [
        _time_kernel("numpy", distinct_sigs, per_node_sigs, max_m)
        for _ in range(repeats)
    ]
    numpy_m1 = min(run[0] for run in runs)
    numpy_mr = min(run[1] for run in runs)
    numpy_results = runs[-1][2]
    section["numpy_minimize1_s"] = round(numpy_m1, 4)
    section["numpy_min_ratio_s"] = round(numpy_mr, 4)
    section["minimize1_speedup"] = round(scalar_m1 / numpy_m1, 2)
    section["min_ratio_speedup"] = round(scalar_mr / numpy_mr, 2)
    section["identical_results"] = numpy_results == scalar_results
    assert section["identical_results"]  # exact-ULP, not approximate
    if not tiny_mode():
        assert section["minimize1_speedup"] >= 5.0
    return section


def test_shared_engine_two_epoch_sweep(benchmark, adult_medium, lattice):
    bucketizations = _bucketizations(adult_medium, lattice)
    epochs = 2
    start = time.perf_counter()
    engine = benchmark.pedantic(
        _shared_sweep, args=(bucketizations, epochs), rounds=1, iterations=1
    )
    wall_time = time.perf_counter() - start

    # Every signature multiset seen more than once must have produced at
    # least one cache hit *per model* (shared engine cache, not per-model).
    multiset_counts = Counter(
        frozenset(b.signature_multiset().items()) for b in bucketizations
    )
    repeats = sum(
        count * epochs - 1 for count in multiset_counts.values()
    )  # occurrences beyond the first, over both epochs
    assert repeats >= len(bucketizations)  # epoch 2 repeats everything
    assert engine.stats.cache_hits >= len(MODELS) * repeats

    # Cold baseline: a fresh engine per node cannot reuse anything across
    # nodes, so its hit rate is structurally 0 — the floor the shared engine
    # must beat — and, more substantively, the shared engine's *misses* over
    # both epochs must not exceed what one cold epoch computes (the whole
    # second epoch came from cache).
    cold_evaluations, cold_hits = _cold_sweep(bucketizations)
    cold_rate = cold_hits / cold_evaluations
    assert engine.stats.hit_rate > cold_rate
    assert engine.stats.misses <= cold_evaluations

    benchmark.extra_info["models"] = MODELS
    benchmark.extra_info["nodes"] = len(bucketizations)
    benchmark.extra_info["hit_rate"] = round(engine.stats.hit_rate, 4)
    benchmark.extra_info["cache_entries"] = engine.cache_size()

    write_bench_json(
        "engine",
        {
            "wall_time_s": round(wall_time, 4),
            "rows": len(adult_medium),
            "nodes": len(bucketizations),
            "models": list(MODELS),
            "ks": list(KS),
            "epochs": epochs,
            "cache_hit_rate": round(engine.stats.hit_rate, 4),
            "cache_entries": engine.cache_size(),
            "evictions": engine.stats.evictions,
            "stats": engine.stats.as_dict(),
            "kernel": _kernel_section(bucketizations),
        },
    )


def test_cold_engine_baseline(benchmark, adult_medium, lattice):
    """Timing floor: every node pays for its own DP work."""
    bucketizations = _bucketizations(adult_medium, lattice)
    evaluations, hits = benchmark.pedantic(
        _cold_sweep, args=(bucketizations,), rounds=1, iterations=1
    )
    assert evaluations == len(MODELS) * len(KS) * len(bucketizations)
    benchmark.extra_info["hit_rate"] = hits / evaluations if evaluations else 0.0
