"""Engine-level shared caching across adversary models (the tentpole claim).

The :class:`~repro.engine.engine.DisclosureEngine` keeps **one** memo dict
for every registered model, keyed by ``(model, params, k, signature
multiset)``. These benchmarks sweep the full 72-node Adult lattice with the
three polynomial models and measure the cache two ways:

- ``test_shared_engine_two_epoch_sweep`` — the incremental-republication
  scenario (the same lattice swept twice, as a republishing pipeline or a
  dashboard refresh would): the second epoch must be answered from the
  cache, with **at least one hit per repeated signature multiset for every
  model** — the engine-level memoization is demonstrably shared machinery,
  not a per-model dict.
- ``test_cold_engine_baseline`` — the same work with a fresh engine per
  node: the cache never carries across nodes, so its hit rate is the floor
  the shared engine must beat.

Run with ``pytest benchmarks/bench_engine.py --benchmark-only`` for timings,
or ``--benchmark-disable`` for the assertions alone (CI does the latter).
Either way the shared-sweep benchmark writes ``BENCH_engine.json`` (wall
time, hit rate, cache size) so the numbers are tracked across PRs.
"""

from __future__ import annotations

import time
from collections import Counter

from reporting import write_bench_json

from repro.engine import DisclosureEngine
from repro.generalization.apply import bucketize_at

#: The polynomial / closed-form models (oracle models do not scale to Adult).
MODELS = ("implication", "negation", "weighted")
KS = (1, 3, 5)


def _bucketizations(table, lattice):
    return [bucketize_at(table, lattice, node) for node in lattice.nodes()]


def _shared_sweep(bucketizations, epochs: int) -> DisclosureEngine:
    engine = DisclosureEngine()
    for _ in range(epochs):
        for model in MODELS:
            engine.evaluate_many(bucketizations, KS, model=model)
    return engine


def _cold_sweep(bucketizations) -> tuple[int, int]:
    """(evaluations, cache_hits) with a fresh engine per bucketization."""
    evaluations = hits = 0
    for bucketization in bucketizations:
        engine = DisclosureEngine()
        for model in MODELS:
            engine.series(bucketization, KS, model=model)
        evaluations += engine.stats.evaluations
        hits += engine.stats.cache_hits
    return evaluations, hits


def test_shared_engine_two_epoch_sweep(benchmark, adult_medium, lattice):
    bucketizations = _bucketizations(adult_medium, lattice)
    epochs = 2
    start = time.perf_counter()
    engine = benchmark.pedantic(
        _shared_sweep, args=(bucketizations, epochs), rounds=1, iterations=1
    )
    wall_time = time.perf_counter() - start

    # Every signature multiset seen more than once must have produced at
    # least one cache hit *per model* (shared engine cache, not per-model).
    multiset_counts = Counter(
        frozenset(b.signature_multiset().items()) for b in bucketizations
    )
    repeats = sum(
        count * epochs - 1 for count in multiset_counts.values()
    )  # occurrences beyond the first, over both epochs
    assert repeats >= len(bucketizations)  # epoch 2 repeats everything
    assert engine.stats.cache_hits >= len(MODELS) * repeats

    # Cold baseline: a fresh engine per node cannot reuse anything across
    # nodes, so its hit rate is structurally 0 — the floor the shared engine
    # must beat — and, more substantively, the shared engine's *misses* over
    # both epochs must not exceed what one cold epoch computes (the whole
    # second epoch came from cache).
    cold_evaluations, cold_hits = _cold_sweep(bucketizations)
    cold_rate = cold_hits / cold_evaluations
    assert engine.stats.hit_rate > cold_rate
    assert engine.stats.misses <= cold_evaluations

    benchmark.extra_info["models"] = MODELS
    benchmark.extra_info["nodes"] = len(bucketizations)
    benchmark.extra_info["hit_rate"] = round(engine.stats.hit_rate, 4)
    benchmark.extra_info["cache_entries"] = engine.cache_size()

    write_bench_json(
        "engine",
        {
            "wall_time_s": round(wall_time, 4),
            "rows": len(adult_medium),
            "nodes": len(bucketizations),
            "models": list(MODELS),
            "ks": list(KS),
            "epochs": epochs,
            "cache_hit_rate": round(engine.stats.hit_rate, 4),
            "cache_entries": engine.cache_size(),
            "evictions": engine.stats.evictions,
            "stats": engine.stats.as_dict(),
        },
    )


def test_cold_engine_baseline(benchmark, adult_medium, lattice):
    """Timing floor: every node pays for its own DP work."""
    bucketizations = _bucketizations(adult_medium, lattice)
    evaluations, hits = benchmark.pedantic(
        _cold_sweep, args=(bucketizations,), rounds=1, iterations=1
    )
    assert evaluations == len(MODELS) * len(KS) * len(bucketizations)
    benchmark.extra_info["hit_rate"] = hits / evaluations if evaluations else 0.0
