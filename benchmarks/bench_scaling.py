"""Complexity claims of Section 3.3: O(k^3) per bucket, O(|B| k^3) overall.

These benchmarks measure the DP's scaling directly:

- MINIMIZE1 on one bucket as k grows (states are (i, cap, rem), all <= k);
- MINIMIZE2 across bucketizations with growing |B| at fixed k;
- the k-scaling of the full pipeline at fixed |B|.

Deduplication is disabled where |B|-scaling is measured, so the DP really
does linear work in the number of buckets.
"""

from __future__ import annotations

import pytest

from repro.core.minimize1 import Minimize1Solver
from repro.core.minimize2 import min_ratio_table

#: A generic skewed signature reused across scaling points.
SIGNATURE = (9, 7, 5, 4, 3, 2, 2, 1, 1, 1)


@pytest.mark.parametrize("k", [4, 8, 16, 32])
def test_minimize1_k_scaling(benchmark, k):
    def run():
        solver = Minimize1Solver()  # fresh memo: measure the real DP work
        return solver.minimum(SIGNATURE, k)

    value = benchmark(run)
    assert 0 <= value <= 1
    benchmark.extra_info["k"] = k


@pytest.mark.parametrize("num_buckets", [100, 1_000, 10_000])
def test_minimize2_bucket_scaling(benchmark, num_buckets):
    # Distinct signatures defeat deduplication so |B| scaling is honest;
    # shapes cycle through 40 variants.
    signatures = [
        tuple(sorted((3 + (i + j) % 5 for j in range(1 + i % 8)), reverse=True))
        for i in range(num_buckets)
    ]

    def run():
        return min_ratio_table(signatures, 6, dedupe=False)

    table = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(table) == 7
    benchmark.extra_info["buckets"] = num_buckets


@pytest.mark.parametrize("k", [2, 6, 12])
def test_minimize2_k_scaling(benchmark, k):
    signatures = [
        tuple(sorted((2 + (i + j) % 4 for j in range(1 + i % 6)), reverse=True))
        for i in range(2_000)
    ]

    def run():
        return min_ratio_table(signatures, k, dedupe=False)

    benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["k"] = k
