"""Theorem 8 made visible: the #P brute force vs. the polynomial worst case.

Computing ``Pr(C | B and phi)`` for a *given* phi is #P-complete, and the
naive maximum over ``L^k_basic`` enumerates an exponential formula family.
The paper's insight is that the *worst case* is polynomial. This benchmark
pits the two against each other on instances where brute force is still
feasible, showing the gap explode while the DP stays flat.
"""

from __future__ import annotations

import pytest

from repro.bucketization import Bucketization
from repro.core.disclosure import max_disclosure
from repro.core.exact import exact_max_disclosure_simple


def _instance(size: int) -> Bucketization:
    values = ["a", "a", "b", "c", "d", "e"][:size]
    return Bucketization.from_value_lists([values, ["a", "b"]])


@pytest.mark.parametrize("size", [2, 3, 4])
def test_brute_force_oracle(benchmark, size):
    bucketization = _instance(size)
    value = benchmark.pedantic(
        exact_max_disclosure_simple, args=(bucketization, 2), rounds=1, iterations=1
    )
    assert 0 < value <= 1
    benchmark.extra_info["bucket_size"] = size


@pytest.mark.parametrize("size", [2, 3, 4])
def test_polynomial_dp_same_instances(benchmark, size):
    bucketization = _instance(size)
    value = benchmark(max_disclosure, bucketization, 2)
    # Same answers as the oracle — at polynomial cost.
    assert value == pytest.approx(
        float(exact_max_disclosure_simple(bucketization, 2))
    )
    benchmark.extra_info["bucket_size"] = size


def test_polynomial_dp_at_scale(benchmark):
    """The DP on an instance (600 tuples, 30 buckets) that brute force could
    never touch: ~10^40 worlds."""
    lists = [
        [f"v{(i + j) % 14}" for j in range(20)] for i in range(30)
    ]
    bucketization = Bucketization.from_value_lists(lists)
    value = benchmark(max_disclosure, bucketization, 12)
    assert 0 < value <= 1
