"""Figure 6 regeneration: min bucket entropy vs. least max disclosure.

Paper reference (ICDE 2007, Figure 6, real Adult data): for every k in
{1, 3, 5, 7, 9, 11}, the least worst-case disclosure among anonymizations
with minimum bucket entropy h decreases monotonically as h grows; larger k
shifts every curve upward. Absolute values below come from the synthetic
Adult substitute; the assertions encode the paper's claims on the envelope
endpoints and the k-ordering.
"""

from __future__ import annotations

from repro.experiments.fig6 import DEFAULT_FIG6_KS, run_figure6


def test_figure6_full_dataset(benchmark, adult_full):
    result = benchmark.pedantic(
        run_figure6, args=(adult_full,), rounds=1, iterations=1
    )

    assert len(result.nodes) == 72
    # Paper shape 1: per node, disclosure grows with attacker power.
    for record in result.nodes:
        values = [record.disclosure[k] for k in DEFAULT_FIG6_KS]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))
    # Paper shape 2: the high-entropy end of each envelope is at most the
    # low-entropy end (less skew => less worst-case disclosure).
    for k in DEFAULT_FIG6_KS:
        envelope = [e for e in result.envelope(k) if e[0] > 0]
        assert envelope[-1][1] <= envelope[0][1] + 1e-12
        benchmark.extra_info[f"envelope_k{k}"] = [
            (round(h, 4), round(d, 4)) for h, d in envelope
        ]


def test_figure6_medium_dataset(benchmark, adult_medium):
    """The same sweep at 10k rows — the tracked performance number."""
    result = benchmark.pedantic(
        run_figure6, args=(adult_medium,), rounds=2, iterations=1
    )
    assert len(result.nodes) == 72
