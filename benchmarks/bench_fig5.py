"""Figure 5 regeneration: max disclosure vs. k, implications and negations.

Paper reference points (ICDE 2007, Figure 5, real Adult data): both curves
start near 0.3 at k = 0, the implication (solid) curve dominates the negation
(dotted) curve, the gap stays small, and disclosure reaches 1 by k = 13 (14
sensitive values). The absolute values below come from the synthetic Adult
substitute (DESIGN.md Section 4); the shape assertions encode the paper's
claims.
"""

from __future__ import annotations

from repro.experiments.fig5 import run_figure5


def test_figure5_full_dataset(benchmark, adult_full):
    result = benchmark.pedantic(
        run_figure5, args=(adult_full,), rounds=3, iterations=1
    )

    rows = result.rows
    # Paper shape 1: monotone non-decreasing in attacker power.
    for series in ("implication", "negation"):
        values = [getattr(r, series) for r in rows]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))
    # Paper shape 2: implications dominate negations at every k.
    assert all(r.implication >= r.negation - 1e-12 for r in rows)
    # Paper shape 3: certainty is reached within the domain-size bound.
    assert rows[-1].implication > 0.95
    # Paper shape 4: a strictly positive gap exists somewhere in the middle
    # (implications are strictly stronger knowledge than negations).
    assert any(r.implication > r.negation + 1e-9 for r in rows)

    benchmark.extra_info["node"] = str(result.node)
    benchmark.extra_info["series_implication"] = [
        round(r.implication, 6) for r in rows
    ]
    benchmark.extra_info["series_negation"] = [
        round(r.negation, 6) for r in rows
    ]


def test_figure5_series_cost_equals_single_k(benchmark, adult_full):
    """Sweeping all 13 k-values costs one DP pass (the all-k property)."""
    from repro.core.disclosure import max_disclosure_series
    from repro.generalization.apply import bucketize_at
    from repro.data.hierarchies import adult_hierarchies
    from repro.data.adult import ADULT_SCHEMA
    from repro.generalization.lattice import GeneralizationLattice

    lattice = GeneralizationLattice(
        adult_hierarchies(), ADULT_SCHEMA.quasi_identifiers
    )
    bucketization = bucketize_at(adult_full, lattice, (3, 2, 1, 1))

    series = benchmark(max_disclosure_series, bucketization, range(13))
    assert len(series) == 13
