"""Machine-readable benchmark artifacts: ``BENCH_<name>.json`` files.

Each JSON-emitting benchmark writes one flat record via
:func:`write_bench_json` so the perf trajectory (wall time, cache hit rate,
parallel speedup) can be compared across PRs and validated in CI
(``scripts/check_bench_schema.py`` asserts the schema; the ``bench-smoke``
job runs the emitters at tiny sizes with ``BENCH_TINY=1``).

Output lands in the current directory unless ``BENCH_OUT_DIR`` is set.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

__all__ = ["SCHEMA_VERSION", "tiny_mode", "cores_available", "write_bench_json"]

#: Bumped whenever a BENCH_*.json record's required keys change.
SCHEMA_VERSION = 1


def tiny_mode() -> bool:
    """Whether to shrink workloads to CI-smoke sizes (``BENCH_TINY=1``)."""
    return os.environ.get("BENCH_TINY") == "1"


def cores_available() -> int:
    """Usable cores (affinity-aware) — gates the speedup assertions that
    only hold where parallelism is real."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def write_bench_json(name: str, payload: dict) -> Path:
    """Write ``BENCH_<name>.json`` with the shared envelope fields."""
    out_dir = Path(os.environ.get("BENCH_OUT_DIR", "."))
    out_dir.mkdir(parents=True, exist_ok=True)
    record = {
        "benchmark": name,
        "schema_version": SCHEMA_VERSION,
        "python": platform.python_version(),
        "tiny": tiny_mode(),
        **payload,
    }
    path = out_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path
