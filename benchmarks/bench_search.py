"""Lattice-search benchmarks (Section 3.4).

- The Incognito-style bottom-up sweep with monotonicity pruning vs. the
  exhaustive scan it replaces.
- Binary search along a chain (the paper's "logarithmic in the height"
  observation) vs. a linear scan of the same chain.
"""

from __future__ import annotations

from repro.core.safety import SafetyChecker
from repro.generalization.apply import bucketize_at
from repro.generalization.search import (
    SearchStats,
    binary_search_chain,
    find_minimal_safe_nodes,
)

C, K = 0.75, 3


def _predicate(table, lattice, checker):
    def is_safe(node):
        return checker.is_safe(bucketize_at(table, lattice, node))

    return is_safe


def test_incognito_style_sweep(benchmark, adult_medium, lattice):
    def run():
        checker = SafetyChecker(C, K)
        stats = SearchStats()
        minimal = find_minimal_safe_nodes(
            lattice, _predicate(adult_medium, lattice, checker), stats=stats
        )
        return minimal, stats

    minimal, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert minimal
    assert stats.pruned > 0
    benchmark.extra_info["minimal_nodes"] = [str(n) for n in minimal]
    benchmark.extra_info["checks"] = stats.predicate_checks
    benchmark.extra_info["pruned"] = stats.pruned


def test_incognito_multi_phase(benchmark, adult_medium, lattice):
    """The real Incognito structure: subset phases prune unsafe full nodes
    before they are ever evaluated. Compare final-phase evaluations with the
    single-phase sweep's check count."""
    from repro.generalization.incognito import (
        IncognitoStats,
        incognito_minimal_safe_nodes,
    )

    def run():
        checker = SafetyChecker(C, K)
        stats = IncognitoStats()
        minimal = incognito_minimal_safe_nodes(
            adult_medium, lattice, checker.is_safe, stats=stats
        )
        return minimal, stats

    minimal, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert minimal
    benchmark.extra_info["total_evaluations"] = stats.evaluated
    benchmark.extra_info["final_phase_evaluations"] = stats.final_phase_evaluated


def test_exhaustive_scan_baseline(benchmark, adult_medium, lattice):
    """Evaluates safety at all 72 nodes with no pruning — what the sweep's
    monotonicity pruning saves."""

    def run():
        checker = SafetyChecker(C, K)
        is_safe = _predicate(adult_medium, lattice, checker)
        safe = [node for node in lattice.nodes() if is_safe(node)]
        return lattice.minimal_elements(safe)

    minimal = benchmark.pedantic(run, rounds=1, iterations=1)
    assert minimal


def test_binary_search_chain(benchmark, adult_medium, lattice):
    chain = lattice.default_chain()

    def run():
        checker = SafetyChecker(C, K)
        stats = SearchStats()
        node = binary_search_chain(
            chain, _predicate(adult_medium, lattice, checker), stats=stats
        )
        return node, stats

    node, stats = benchmark.pedantic(run, rounds=3, iterations=1)
    assert stats.predicate_checks <= 5  # 1 + ceil(log2(|chain| - 1))
    benchmark.extra_info["found"] = str(node)


def test_linear_chain_scan_baseline(benchmark, adult_medium, lattice):
    chain = lattice.default_chain()

    def run():
        checker = SafetyChecker(C, K)
        is_safe = _predicate(adult_medium, lattice, checker)
        return next(node for node in chain if is_safe(node))

    benchmark.pedantic(run, rounds=3, iterations=1)
