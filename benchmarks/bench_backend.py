"""Execution backends head-to-head: cold start vs. steady state, with JSON.

The persistent backend exists for workloads that issue *many* batches on one
engine — MINIMIZE lattice search, Figure-6 style sweeps, a long-running
service answering small queries. Its two claims:

- **steady state beats the per-call pool**: after the first batch, workers
  are already running and their plane mirrors are warm, so a batch ships
  only tiny id-multisets instead of paying fork + full signature shipping;
- **the delta protocol ships each signature at most once per worker**: the
  backend's ``ship_log`` records per-batch ship sizes, and batches whose
  signatures are already mirrored ship zero.

The workload is a sequence of batches that reuse one signature universe in
fresh combinations — every batch has new cache keys (it must actually fan
out) but, after the first, no new signatures. All three backends are
asserted bit-for-bit identical; ``BENCH_backend.json`` records cold/steady
latency per backend and the persistent ship sizes. ``BENCH_TINY=1`` shrinks
the workload for CI smoke; the steady-state speedup assertion only applies
at full size on >= 2 usable cores (like ``bench_parallel``).
"""

from __future__ import annotations

import random
import time

from reporting import cores_available, tiny_mode, write_bench_json

from repro.bucketization import Bucketization
from repro.engine import DisclosureEngine

WORKERS = 4


def _workload() -> tuple[list[list[Bucketization]], tuple[int, ...]]:
    """Batches drawing fresh multiset combinations from one signature pool.

    Every batch's plane keys are new (so each batch truly dispatches to the
    backend) but the signature universe is fixed, so for the persistent
    backend only batch 0 ships signatures — the delta protocol's best case,
    and the service steady state the backend is for.
    """
    tiny = tiny_mode()
    batches = 4 if tiny else 6
    tasks_per_batch = 5 if tiny else 24
    buckets_per_task = 4 if tiny else 20
    ks = (3,) if tiny else (30,)
    rng = random.Random(20070419)
    # One pool of signatures, realized as value lists. Sized so batch 0
    # partitions the whole pool: after it, the persistent mirrors hold
    # every signature and later batches must ship zero.
    universe = []
    for i in range(tasks_per_batch * buckets_per_task):
        domain = [f"v{i}_{x}" for x in range(rng.randint(5, 9))]
        size = rng.randint(10, 18) if tiny else rng.randint(40, 64)
        universe.append([rng.choice(domain) for _ in range(size)])
    first = list(universe)
    rng.shuffle(first)
    all_batches = [
        [
            Bucketization.from_value_lists(
                first[i * buckets_per_task:(i + 1) * buckets_per_task]
            )
            for i in range(tasks_per_batch)
        ]
    ]
    seen: set = set()
    for _ in range(batches - 1):
        batch = []
        for _ in range(tasks_per_batch):
            while True:
                lists = rng.sample(universe, buckets_per_task)
                key = frozenset(id(vl) for vl in lists)
                if key not in seen:
                    seen.add(key)
                    break
            batch.append(Bucketization.from_value_lists(lists))
        all_batches.append(batch)
    return all_batches, ks


def _timed_batches(engine, batches, ks):
    results, timings = [], []
    for batch in batches:
        start = time.perf_counter()
        results.append(engine.evaluate_many(batch, ks))
        timings.append(time.perf_counter() - start)
    return results, timings


def test_backend_cold_vs_steady_state(benchmark):
    batches, ks = _workload()
    cores = cores_available()

    per_backend: dict[str, dict] = {}
    all_results: dict[str, list] = {}
    for backend in ("serial", "pool", "persistent"):
        with DisclosureEngine(workers=WORKERS, backend=backend) as engine:
            if backend == "persistent":
                results, timings = benchmark.pedantic(
                    _timed_batches,
                    args=(engine, batches, ks),
                    rounds=1,
                    iterations=1,
                )
            else:
                results, timings = _timed_batches(engine, batches, ks)
            all_results[backend] = results
            record = {
                "cold_s": round(timings[0], 4),
                "steady_s": round(
                    sum(timings[1:]) / (len(timings) - 1), 4
                ),
                "per_batch_s": [round(t, 4) for t in timings],
            }
            if backend == "persistent":
                ship_log = engine.backend.ship_log
                record["ship_sizes"] = [
                    entry["shipped_signatures"] for entry in ship_log
                ]
                record["unique_signatures"] = len(engine.plane)
                record["max_workers_used"] = max(
                    entry["workers_used"] for entry in ship_log
                )
            per_backend[backend] = record

    # Headline correctness: all three backends agree bit-for-bit.
    identical = (
        all_results["serial"] == all_results["pool"] == all_results["persistent"]
    )
    assert identical

    # The delta protocol: each signature crosses to each worker at most
    # once, and steady-state batches (same signature universe) ship nothing.
    persistent = per_backend["persistent"]
    total_shipped = sum(persistent["ship_sizes"])
    ship_bound = (
        persistent["unique_signatures"] * persistent["max_workers_used"]
    )
    assert total_shipped <= ship_bound
    assert all(size == 0 for size in persistent["ship_sizes"][1:])

    steady_speedup_vs_pool = (
        per_backend["pool"]["steady_s"] / per_backend["persistent"]["steady_s"]
        if per_backend["persistent"]["steady_s"] > 0
        else float("inf")
    )
    benchmark.extra_info["steady_speedup_vs_pool"] = round(
        steady_speedup_vs_pool, 3
    )
    benchmark.extra_info["cores_available"] = cores

    write_bench_json(
        "backend",
        {
            "workers": WORKERS,
            "cores_available": cores,
            "batches": len(batches),
            "tasks_per_batch": len(batches[0]),
            "ks": list(ks),
            "backends": per_backend,
            "identical_results": identical,
            "ship_once_per_worker": total_shipped <= ship_bound,
            "steady_speedup_vs_pool": round(steady_speedup_vs_pool, 3),
        },
    )

    # Steady state must beat the per-call pool where parallelism is real:
    # full-size workload, >= 2 usable cores (a fork per batch is pure
    # overhead the persistent workers do not pay).
    if not tiny_mode() and cores >= 2:
        assert steady_speedup_vs_pool > 1.05, (
            f"persistent steady state too slow vs pool: "
            f"{steady_speedup_vs_pool:.2f}x "
            f"(pool {per_backend['pool']['steady_s']:.3f}s/batch, "
            f"persistent {per_backend['persistent']['steady_s']:.3f}s/batch, "
            f"{cores} cores)"
        )
