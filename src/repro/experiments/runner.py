"""Shared experiment plumbing: default dataset and plain-text rendering.

The CLI (:mod:`repro.cli`), the benchmark harness (``benchmarks/``) and the
``EXPERIMENTS.md`` generator all funnel through these helpers so the numbers
they report are produced identically. Disclosure numbers themselves come
from the :class:`~repro.engine.engine.DisclosureEngine` inside
:func:`~repro.experiments.fig5.run_figure5` /
:func:`~repro.experiments.fig6.run_figure6`, so every figure shares the
engine's model registry and caching.
"""

from __future__ import annotations

from functools import lru_cache

from repro.data.adult import ADULT_SIZE, generate_adult
from repro.data.table import Table
from repro.experiments.fig5 import Figure5Result
from repro.experiments.fig6 import Figure6Result

__all__ = [
    "default_adult_table",
    "render_figure5",
    "render_figure6",
    "figure5_csv",
    "figure6_csv",
]


@lru_cache(maxsize=4)
def default_adult_table(rows: int = ADULT_SIZE, seed: int = 20070419) -> Table:
    """The experiments' default dataset, generated once per (rows, seed)."""
    return generate_adult(rows, seed=seed)


def render_figure5(result: Figure5Result) -> str:
    """Figure 5 as a fixed-width text table (one row per ``k``)."""
    lines = [
        "Figure 5 — max disclosure vs. number of conjuncts",
        f"anonymization node: {result.node}   "
        f"buckets: {result.num_buckets}   rows: {result.num_rows}",
        f"{'k':>3}  {'implication':>12}  {'negation':>12}",
    ]
    for row in result.rows:
        lines.append(
            f"{row.k:>3}  {row.implication:>12.6f}  {row.negation:>12.6f}"
        )
    return "\n".join(lines)


def figure5_csv(result: Figure5Result) -> str:
    """Figure 5 as CSV (``k, implication, negation``) for external plotting."""
    lines = ["k,implication,negation"]
    for row in result.rows:
        lines.append(f"{row.k},{row.implication:.10g},{row.negation:.10g}")
    return "\n".join(lines) + "\n"


def figure6_csv(result: Figure6Result) -> str:
    """Figure 6 as CSV: one row per (k, envelope point) —
    ``k, min_entropy, least_max_disclosure`` — ready for gnuplot/matplotlib."""
    lines = ["k,min_entropy,least_max_disclosure"]
    for k in result.ks:
        for h, d in result.envelope(k):
            lines.append(f"{k},{h:.10g},{d:.10g}")
    return "\n".join(lines) + "\n"


def render_figure6(result: Figure6Result, *, per_node: bool = False) -> str:
    """Figure 6 as text: per-``k`` envelopes of (min entropy, least max
    disclosure), optionally followed by the full per-node sweep."""
    lines = [
        "Figure 6 — min bucket entropy vs. least max disclosure",
        f"nodes swept: {len(result.nodes)}   rows: {result.num_rows}",
    ]
    for k in result.ks:
        lines.append(f"-- k = {k} {result.model} pieces of knowledge --")
        lines.append(f"{'min entropy':>12}  {'min worst-case disclosure':>26}")
        for h, d in result.envelope(k):
            lines.append(f"{h:>12.4f}  {d:>26.6f}")
    if per_node:
        lines.append("-- per-node sweep --")
        header = f"{'node':>14}  {'min entropy':>12}  {'buckets':>8}  " + "  ".join(
            f"k={k:>2}" for k in result.ks
        )
        lines.append(header)
        for record in result.nodes:
            disclosures = "  ".join(
                f"{record.disclosure[k]:.4f}" for k in result.ks
            )
            lines.append(
                f"{str(record.node):>14}  {record.min_entropy:>12.4f}  "
                f"{record.num_buckets:>8}  {disclosures}"
            )
    return "\n".join(lines)
