"""Reproduction of the paper's evaluation (Section 4).

- :mod:`repro.experiments.fig5` — Figure 5: maximum disclosure vs. number of
  conjuncts, implications (solid line) against negated atoms (dotted line).
- :mod:`repro.experiments.fig6` — Figure 6: minimum bucket entropy vs. the
  least maximum disclosure among anonymizations with that entropy, for
  k in {1, 3, 5, 7, 9, 11}.
- :mod:`repro.experiments.runner` — shared dataset handling and plain-text
  rendering of both figures (used by the CLI, the benchmarks, and
  ``EXPERIMENTS.md``).
"""

from repro.experiments.fig5 import FIG5_NODE, Figure5Result, run_figure5
from repro.experiments.fig6 import Figure6Result, run_figure6
from repro.experiments.runner import default_adult_table, render_figure5, render_figure6

__all__ = [
    "FIG5_NODE",
    "Figure5Result",
    "run_figure5",
    "Figure6Result",
    "run_figure6",
    "default_adult_table",
    "render_figure5",
    "render_figure6",
]
