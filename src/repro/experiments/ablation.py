"""Ablation studies on the design choices DESIGN.md calls out.

Three questions, each answerable with a function here:

1. **Single-bucket concentration** (:func:`single_bucket_gap`): does the
   cross-bucket machinery of MINIMIZE2 ever find a strictly better placement
   than the best single bucket? (Observed: never; the library keeps the
   general DP because the paper does not prove this.)
2. **Signature deduplication** (:func:`dedupe_speedup`): how much time does
   collapsing equal bucket signatures save at a given lattice node?
3. **Solver sharing** (:func:`memo_reuse_ratio`): how much MINIMIZE1 work is
   shared across a full lattice sweep (the paper's incremental-cost remark)?
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.core.disclosure import max_disclosure_series
from repro.core.minimize1 import Minimize1Solver
from repro.core.minimize2 import min_ratio_table
from repro.data.table import Table
from repro.generalization.apply import bucketize_at
from repro.generalization.lattice import GeneralizationLattice

__all__ = [
    "SingleBucketReport",
    "single_bucket_gap",
    "dedupe_speedup",
    "memo_reuse_ratio",
]


@dataclass(frozen=True)
class SingleBucketReport:
    """Result of a randomized single-bucket-concentration scan.

    Attributes
    ----------
    trials:
        Number of random instances checked.
    violations:
        Instances where the full DP was strictly below the best single
        bucket (counterexamples to the conjecture).
    max_gap:
        Largest relative improvement of the full DP over the single-bucket
        shortcut (0.0 when the conjecture held everywhere).
    """

    trials: int
    violations: int
    max_gap: float


def single_bucket_gap(
    *, trials: int = 500, seed: int = 0, max_k: int = 5
) -> SingleBucketReport:
    """Scan random bucketizations for cases where cross-bucket placement
    strictly beats the best single bucket."""
    solver = Minimize1Solver(exact=True)
    rng = random.Random(seed)
    violations = 0
    max_gap = 0.0
    for _ in range(trials):
        num_buckets = rng.randint(2, 4)
        signatures = []
        for _ in range(num_buckets):
            d = rng.randint(1, 5)
            counts = sorted((rng.randint(1, 9) for _ in range(d)), reverse=True)
            signatures.append(tuple(counts))
        k = rng.randint(1, max_k)
        full = min_ratio_table(signatures, k, exact=True, solver=solver)[k]
        from fractions import Fraction

        single = min(
            solver.minimum(sig, k + 1) * Fraction(sum(sig), sig[0])
            for sig in set(signatures)
        )
        if full < single:
            violations += 1
            if single > 0:
                max_gap = max(max_gap, float(1 - full / single))
    return SingleBucketReport(
        trials=trials, violations=violations, max_gap=max_gap
    )


def dedupe_speedup(
    table: Table,
    lattice: GeneralizationLattice,
    node: tuple[int, ...],
    *,
    k: int = 11,
    repeats: int = 3,
) -> dict:
    """Time MINIMIZE2 with and without signature deduplication at ``node``.

    Returns a dict with bucket counts, distinct-signature counts, the two
    timings (seconds, best of ``repeats``) and the verified-equal results.
    """
    bucketization = bucketize_at(table, lattice, node)
    signatures = [bucket.signature for bucket in bucketization.buckets]

    def best_time(dedupe: bool) -> float:
        best = float("inf")
        for _ in range(repeats):
            solver = Minimize1Solver()
            start = time.perf_counter()
            min_ratio_table(signatures, k, solver=solver, dedupe=dedupe)
            best = min(best, time.perf_counter() - start)
        return best

    with_dedupe = best_time(True)
    without = best_time(False)
    assert min_ratio_table(signatures, k, dedupe=True) == min_ratio_table(
        signatures, k, dedupe=False
    )
    return {
        "buckets": len(signatures),
        "distinct_signatures": len(set(signatures)),
        "seconds_with_dedupe": with_dedupe,
        "seconds_without_dedupe": without,
        "speedup": without / with_dedupe if with_dedupe > 0 else float("inf"),
    }


def memo_reuse_ratio(
    table: Table, lattice: GeneralizationLattice, *, ks=(1, 3, 5, 7, 9, 11)
) -> dict:
    """Sweep the whole lattice with one shared solver and report how much
    MINIMIZE1 state it accumulated versus what per-node cold solvers would
    have computed in total."""
    shared = Minimize1Solver()
    cold_total_states = 0
    for node in lattice.nodes():
        bucketization = bucketize_at(table, lattice, node)
        max_disclosure_series(bucketization, ks, solver=shared)
        cold = Minimize1Solver()
        max_disclosure_series(bucketization, ks, solver=cold)
        cold_total_states += cold.memo_size()
    return {
        "nodes": lattice.size,
        "shared_states": shared.memo_size(),
        "cold_states_total": cold_total_states,
        "reuse_factor": (
            cold_total_states / shared.memo_size()
            if shared.memo_size()
            else float("inf")
        ),
        "distinct_signatures": shared.known_signatures(),
    }
