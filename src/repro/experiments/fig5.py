"""Figure 5: maximum disclosure vs. number of pieces of background knowledge.

Paper setup (Section 4): one anonymized Adult table in which "all the
attributes other than Age were suppressed and the Age attribute was
generalized to intervals of size 20" — lattice node ``(3, 2, 1, 1)`` in this
library's layout. For ``k = 0..12`` it plots the maximum disclosure against

- an attacker with ``k`` basic implications (the solid line; our
  :func:`repro.core.disclosure.max_disclosure_series`), and
- an attacker with ``k`` negated atoms, the ℓ-diversity adversary (the dotted
  line; :func:`repro.core.negation.max_disclosure_negations_series`).

``k`` stops at 12 because with 14 occupation values disclosure certainly
reaches 1 at ``k = 13``.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.data.adult import ADULT_SCHEMA
from repro.data.hierarchies import adult_hierarchies
from repro.data.table import Table
from repro.engine.engine import DisclosureEngine
from repro.generalization.apply import bucketize_at
from repro.generalization.lattice import GeneralizationLattice

__all__ = ["FIG5_NODE", "Figure5Row", "Figure5Result", "run_figure5"]

#: Age -> 20-year intervals (level 3); marital status, race, sex suppressed.
FIG5_NODE = (3, 2, 1, 1)

#: The paper sweeps k = 0..12 (14 sensitive values; certainty at k = 13).
DEFAULT_KS = tuple(range(13))


@dataclass(frozen=True)
class Figure5Row:
    """One x-position of Figure 5."""

    k: int
    implication: float
    negation: float


@dataclass(frozen=True)
class Figure5Result:
    """The reproduced figure: rows plus provenance."""

    node: tuple[int, ...]
    num_buckets: int
    num_rows: int
    rows: tuple[Figure5Row, ...]

    def series(self, which: str) -> list[tuple[int, float]]:
        """``(k, disclosure)`` pairs for ``which`` in
        {"implication", "negation"}."""
        if which not in ("implication", "negation"):
            raise ValueError(f"unknown series {which!r}")
        return [(row.k, getattr(row, which)) for row in self.rows]


def run_figure5(
    table: Table,
    *,
    ks: Sequence[int] = DEFAULT_KS,
    node: tuple[int, ...] = FIG5_NODE,
    engine: DisclosureEngine | None = None,
) -> Figure5Result:
    """Reproduce Figure 5 on ``table`` (the synthetic or real Adult data).

    Both series come from one batched
    :meth:`~repro.engine.engine.DisclosureEngine.compare` call, so the two
    adversaries share the engine's signature plane (one interned id-multiset
    keys both models' cache entries) and per-signature DP work; pass a
    shared ``engine`` — possibly with a bounded
    :class:`~repro.engine.plane.CachePolicy` or ``workers > 1`` — to extend
    that sharing across figures and nodes.

    Examples
    --------
    >>> from repro.data import generate_adult
    >>> result = run_figure5(generate_adult(2000))
    >>> [round(r.implication, 2) >= round(r.negation, 2) for r in result.rows]
    ... # doctest: +ELLIPSIS
    [True, ...]
    """
    lattice = GeneralizationLattice(
        adult_hierarchies(), ADULT_SCHEMA.quasi_identifiers
    )
    bucketization = bucketize_at(table, lattice, node)
    if engine is None:
        engine = DisclosureEngine()
    comparison = engine.compare(
        bucketization, ks, models=("implication", "negation")
    )
    rows = tuple(
        Figure5Row(
            k=k,
            implication=comparison["implication"][k],
            negation=comparison["negation"][k],
        )
        for k in sorted(set(ks))
    )
    return Figure5Result(
        node=tuple(node),
        num_buckets=len(bucketization),
        num_rows=len(table),
        rows=rows,
    )
