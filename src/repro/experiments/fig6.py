"""Figure 6: minimum bucket entropy vs. least maximum disclosure.

Paper setup (Section 4): fix ``k``; for every entropy value ``h``, consider
all anonymized tables (all 72 lattice nodes) whose *minimum bucket entropy*
equals ``h``; among them take the table with the least maximum disclosure for
``k`` implications, and plot ``h`` against that disclosure for
``k in {1, 3, 5, 7, 9, 11}``. The paper observes the curve decreasing in
``h`` (more in-bucket entropy, less skew, less worst-case disclosure).

:func:`run_figure6` sweeps every lattice node once, computes the disclosure
for *all* requested ``k`` in a single DP pass per node, and groups nodes by
(rounded) minimum entropy.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.data.adult import ADULT_SCHEMA
from repro.data.hierarchies import adult_hierarchies
from repro.data.table import Table
from repro.engine.base import AdversaryModel
from repro.engine.engine import DisclosureEngine
from repro.generalization.apply import bucketize_at
from repro.generalization.lattice import GeneralizationLattice
from repro.utility.entropy import min_bucket_entropy

__all__ = ["Figure6Node", "Figure6Result", "run_figure6", "DEFAULT_FIG6_KS"]

#: The paper plots k = 1, 3, 5, 7, 9, 11.
DEFAULT_FIG6_KS = (1, 3, 5, 7, 9, 11)


@dataclass(frozen=True)
class Figure6Node:
    """Per-anonymization record of the sweep."""

    node: tuple[int, ...]
    min_entropy: float
    num_buckets: int
    disclosure: dict[int, float]


@dataclass(frozen=True)
class Figure6Result:
    """The reproduced figure: all node records plus the per-entropy envelope."""

    ks: tuple[int, ...]
    num_rows: int
    nodes: tuple[Figure6Node, ...]
    #: Which adversary produced the disclosure series (for labeling).
    model: str = "implication"

    def envelope(self, k: int, *, digits: int = 6) -> list[tuple[float, float]]:
        """``(h, least max disclosure among nodes with min-entropy h)`` pairs,
        sorted by ``h`` — one Figure 6 line.

        Entropies are grouped after rounding to ``digits`` decimals (the
        paper groups by exact equality of the entropy value).
        """
        if k not in self.ks:
            raise ValueError(f"k={k} was not part of the sweep {self.ks}")
        grouped: dict[float, float] = {}
        for record in self.nodes:
            h = round(record.min_entropy, digits)
            d = record.disclosure[k]
            if h not in grouped or d < grouped[h]:
                grouped[h] = d
        return sorted(grouped.items())


def run_figure6(
    table: Table,
    *,
    ks: Sequence[int] = DEFAULT_FIG6_KS,
    min_entropy_floor: float | None = None,
    model: str | AdversaryModel = "implication",
    engine: DisclosureEngine | None = None,
    workers: int | None = None,
) -> Figure6Result:
    """Sweep every node of the Adult lattice and build Figure 6's data.

    Parameters
    ----------
    table:
        The (synthetic or real) Adult projection.
    ks:
        The attacker powers to plot (paper: 1, 3, 5, 7, 9, 11).
    min_entropy_floor:
        Optionally drop anonymizations whose minimum entropy is below this
        (the paper's plot starts at h = 1; ``None`` keeps everything).
    model:
        Adversary model name or instance (default: the paper's implication
        attacker; pass ``"negation"`` for the ℓ-diversity analogue).
    engine:
        Optional shared :class:`~repro.engine.engine.DisclosureEngine`.
    workers:
        Process-pool size for the node sweep (default: the engine's own
        ``workers``). With ``workers > 1`` the unique signature multisets
        across all nodes are evaluated in parallel and warm-backed into the
        engine's cache; results are identical to the serial sweep.

    Notes
    -----
    The whole sweep is one :meth:`DisclosureEngine.evaluate_many` call on
    the engine's signature plane: bucket signatures repeat heavily across
    anonymizations, so each distinct signature multiset is computed exactly
    once (Section 3.3.3's incremental remark) — serially through the shared
    cache, or chunked over a process pool.
    """
    ks = tuple(sorted(set(ks)))
    if not ks:
        raise ValueError("need at least one k")
    lattice = GeneralizationLattice(
        adult_hierarchies(), ADULT_SCHEMA.quasi_identifiers
    )
    if engine is None:
        engine = DisclosureEngine()
    kept: list[tuple[tuple[int, ...], float, object]] = []
    for node in lattice.nodes():
        bucketization = bucketize_at(table, lattice, node)
        h = min_bucket_entropy(bucketization)
        if min_entropy_floor is not None and h < min_entropy_floor:
            continue
        kept.append((tuple(node), h, bucketization))
    series_per_node = engine.evaluate_many(
        [bucketization for _, _, bucketization in kept],
        ks,
        model=model,
        workers=workers,
    )
    records = [
        Figure6Node(
            node=node,
            min_entropy=h,
            num_buckets=len(bucketization),
            disclosure=disclosure,
        )
        for (node, h, bucketization), disclosure in zip(kept, series_per_node)
    ]
    records.sort(key=lambda r: (r.min_entropy, r.node))
    return Figure6Result(
        ks=ks,
        num_rows=len(table),
        nodes=tuple(records),
        model=engine.model(model).name,
    )
