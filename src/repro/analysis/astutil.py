"""Small AST helpers shared by the lint rules."""

from __future__ import annotations

import ast

__all__ = ["ImportMap", "dotted_name", "body_terminates", "FunctionIndex"]


class ImportMap:
    """Resolve a module's imported names back to their origin.

    ``import numpy as np`` maps ``np -> numpy``; ``from time import sleep``
    maps ``sleep -> time.sleep``. Rules use this so aliasing never hides a
    forbidden call.
    """

    def __init__(self, tree: ast.Module) -> None:
        #: local alias -> imported module dotted path
        self.modules: dict[str, str] = {}
        #: local name -> "module.attr" for from-imports
        self.names: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.asname and alias.name or alias.name
                    # `import http.client` binds `http`, reaching
                    # `http.client` through attribute access.
                    if alias.asname is None:
                        target = alias.name.split(".")[0]
                    self.modules[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:  # relative import: stays inside the package
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.names[local] = f"{node.module}.{alias.name}"

    def origin(self, name: str) -> str | None:
        """The dotted origin of a bare name, if it was imported."""
        if name in self.names:
            return self.names[name]
        if name in self.modules:
            return self.modules[name]
        return None


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for nested Name/Attribute chains, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def body_terminates(body: list[ast.stmt]) -> bool:
    """Whether a statement block always leaves the enclosing function
    (ends in ``return``/``raise``/``continue``/``break``)."""
    if not body:
        return False
    last = body[-1]
    if isinstance(last, (ast.Return, ast.Raise, ast.Continue, ast.Break)):
        return True
    if isinstance(last, ast.If):
        return (
            bool(last.orelse)
            and body_terminates(last.body)
            and body_terminates(last.orelse)
        )
    return False


class FunctionIndex:
    """Every function/method in a module, keyed by qualified name.

    Methods are recorded as ``ClassName.method``; the *simple* name index
    (``method``) is what name-based call-graph resolution uses — an
    over-approximation that never misses an edge.
    """

    def __init__(self, tree: ast.Module, module: str) -> None:
        self.module = module
        #: qualname -> def node
        self.functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        #: class name -> its __init__ argument names (for entry-point rules)
        self.class_init_args: dict[str, list[str]] = {}
        self._collect(tree.body, prefix="", class_name=None)

    def _collect(self, body, prefix: str, class_name: str | None) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{node.name}"
                self.functions[qualname] = node
                if class_name is not None and node.name == "__init__":
                    self.class_init_args[class_name] = [
                        arg.arg for arg in arg_names(node)
                    ]
                # Nested defs are reachable only through their parent;
                # record them under a scoped name so they exist in the
                # graph, resolved by simple name like everything else.
                self._collect(
                    node.body, prefix=f"{qualname}.<locals>.", class_name=None
                )
            elif isinstance(node, ast.ClassDef):
                self._collect(
                    node.body, prefix=f"{node.name}.", class_name=node.name
                )


def arg_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[ast.arg]:
    """All explicit argument nodes of a function, every flavour."""
    args = node.args
    return [
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        *([args.vararg] if args.vararg else []),
        *([args.kwarg] if args.kwarg else []),
    ]
