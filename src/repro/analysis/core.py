"""The invariant linter's chassis: files, rules, suppressions, baseline.

The engine's headline guarantee — *exact* worst-case disclosure bounds —
rests on contracts no runtime test can prove the absence of violations of:
Fraction-mode purity, bit-identical backends, cache keys that capture
everything a result depends on. This package is the static side of that
story: a repo-specific AST analysis framework whose rules each encode one
such contract, run over the tree at CI time.

Pieces
------
:class:`SourceFile`
    One parsed python file: source, AST, and its suppression comments.
:class:`Project`
    The scanned tree (``src/repro`` plus the cross-file anchors in
    ``scripts/`` and ``benchmarks/``), parsed once and shared by every rule.
:class:`Rule` / :func:`register_rule`
    The rule protocol and its id-keyed registry. A rule declares the
    *contract it protects* — surfaced verbatim in reports so a CI failure
    explains itself.
:class:`Finding`
    One violation: rule id, location, message, contract.
Suppressions
    ``# repro: noqa[REP001] <justification>`` silences one line for the
    named rule(s); ``# repro: noqa-file[REP001] <justification>`` silences
    a whole file. A suppression **without** a justification is itself a
    finding (:data:`BARE_NOQA_RULE`): grandfathering must say why.
Baseline
    A committed JSON file of grandfathered findings (``lint-baseline.json``)
    matched by ``(rule, path, message)`` — line numbers drift, contracts
    don't. ``repro lint --write-baseline`` regenerates it.
"""

from __future__ import annotations

import abc
import ast
import json
import re
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path
from typing import ClassVar

__all__ = [
    "Finding",
    "SourceFile",
    "Project",
    "Rule",
    "register_rule",
    "available_rules",
    "get_rules",
    "Baseline",
    "run_rules",
    "BARE_NOQA_RULE",
    "PARSE_ERROR_RULE",
]

#: Synthetic rule ids the runner itself emits (not registry rules, so they
#: can never be disabled by ``--rules`` and never baselined away silently).
BARE_NOQA_RULE = "REP000"
PARSE_ERROR_RULE = "REP999"

#: Directories scanned relative to the project root. ``src/repro`` carries
#: the contracts; ``scripts`` and ``benchmarks`` are cross-file anchors for
#: the stats-drift rule (REP004).
DEFAULT_SCAN_DIRS = ("src/repro", "scripts", "benchmarks")

_NOQA = re.compile(
    r"#\s*repro:\s*noqa(?P<scope>-file)?\[(?P<rules>[A-Z0-9,\s]+)\]"
    r"(?P<why>[^\n]*)"
)


@dataclass(frozen=True)
class Finding:
    """One contract violation at a concrete location."""

    rule: str
    path: str  #: project-root-relative, forward slashes
    line: int
    message: str
    contract: str = ""

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        """The baseline identity: stable across line-number drift."""
        return (self.rule, self.path, self.message)

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "contract": self.contract,
        }


@dataclass
class _Suppression:
    line: int
    rules: frozenset[str]
    file_scope: bool
    justified: bool
    used: bool = False


class SourceFile:
    """One parsed file plus its suppression comments."""

    def __init__(self, path: Path, rel: str, source: str) -> None:
        self.path = path
        self.rel = rel
        self.source = source
        self.lines = source.splitlines()
        self.parse_error: SyntaxError | None = None
        try:
            self.tree: ast.Module = ast.parse(source)
        except SyntaxError as exc:
            self.parse_error = exc
            self.tree = ast.Module(body=[], type_ignores=[])
        self.suppressions: list[_Suppression] = self._scan_suppressions()

    def _scan_suppressions(self) -> list[_Suppression]:
        found = []
        for number, text in enumerate(self.lines, start=1):
            match = _NOQA.search(text)
            if match is None:
                continue
            rules = frozenset(
                token.strip()
                for token in match.group("rules").split(",")
                if token.strip()
            )
            found.append(
                _Suppression(
                    line=number,
                    rules=rules,
                    file_scope=match.group("scope") is not None,
                    justified=bool(match.group("why").strip(" -—:\t")),
                )
            )
        return found

    def suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is silenced at ``line`` (marking the
        suppression as used, so unused ones could be reported later)."""
        for supp in self.suppressions:
            if rule not in supp.rules:
                continue
            if supp.file_scope or supp.line == line:
                supp.used = True
                return True
        return False


class Project:
    """The scanned tree: every file parsed once, shared by all rules."""

    def __init__(
        self, root: Path, scan_dirs: Iterable[str] = DEFAULT_SCAN_DIRS
    ) -> None:
        self.root = Path(root).resolve()
        self.files: list[SourceFile] = []
        for scan_dir in scan_dirs:
            base = self.root / scan_dir
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*.py")):
                if "__pycache__" in path.parts:
                    continue
                rel = path.relative_to(self.root).as_posix()
                self.files.append(
                    SourceFile(path, rel, path.read_text(encoding="utf-8"))
                )
        self._by_rel = {f.rel: f for f in self.files}

    def get(self, rel: str) -> SourceFile | None:
        return self._by_rel.get(rel)

    def in_dir(self, prefix: str) -> list[SourceFile]:
        """Files under a root-relative directory prefix (posix form)."""
        if not prefix.endswith("/"):
            prefix += "/"
        return [f for f in self.files if f.rel.startswith(prefix)]


class Rule(abc.ABC):
    """One enforced contract. Subclasses declare identity and scan logic."""

    #: e.g. ``"REP001"`` — stable, referenced by suppressions and baseline.
    id: ClassVar[str]
    #: Short human name, e.g. ``"exact-path float taint"``.
    title: ClassVar[str]
    #: The invariant this rule protects, printed with every finding so a CI
    #: failure explains *why* the pattern is forbidden.
    contract: ClassVar[str]

    @abc.abstractmethod
    def check(self, project: Project) -> Iterator[Finding]:
        """Yield every violation in ``project``."""

    def finding(self, file: SourceFile, line: int, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=file.rel,
            line=line,
            message=message,
            contract=self.contract,
        )


_RULES: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator: add a :class:`Rule` under its ``id``."""
    rule_id = getattr(cls, "id", None)
    if not isinstance(rule_id, str) or not rule_id:
        raise ValueError(f"{cls.__qualname__} must define a non-empty `id`")
    existing = _RULES.get(rule_id)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"lint rule id {rule_id!r} already registered by "
            f"{existing.__qualname__}"
        )
    _RULES[rule_id] = cls
    return cls


def available_rules() -> tuple[str, ...]:
    """Registered rule ids, sorted."""
    return tuple(sorted(_RULES))


def get_rules(ids: Iterable[str] | None = None) -> list[Rule]:
    """Instantiate the selected rules (all registered ones by default)."""
    if ids is None:
        return [_RULES[rule_id]() for rule_id in available_rules()]
    rules = []
    for rule_id in ids:
        if rule_id not in _RULES:
            raise ValueError(
                f"unknown lint rule {rule_id!r}; "
                f"available: {', '.join(available_rules())}"
            )
        rules.append(_RULES[rule_id]())
    return rules


@dataclass
class Baseline:
    """The committed set of grandfathered findings."""

    entries: set[tuple[str, str, str]] = field(default_factory=set)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        record = json.loads(path.read_text(encoding="utf-8"))
        entries = {
            (entry["rule"], entry["path"], entry["message"])
            for entry in record.get("findings", [])
        }
        return cls(entries=entries)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(entries={f.fingerprint for f in findings})

    def save(self, path: Path) -> None:
        findings = [
            {"rule": rule, "path": rel, "message": message}
            for rule, rel, message in sorted(self.entries)
        ]
        path.write_text(
            json.dumps({"version": 1, "findings": findings}, indent=2) + "\n",
            encoding="utf-8",
        )

    def covers(self, finding: Finding) -> bool:
        return finding.fingerprint in self.entries


def run_rules(
    project: Project,
    rules: Iterable[Rule],
    baseline: Baseline | None = None,
) -> tuple[list[Finding], list[Finding]]:
    """Run ``rules`` over ``project``.

    Returns ``(active, baselined)``: suppressed findings are dropped,
    baselined ones are split out (reported, but not failures). The runner
    also emits its own two checks — unparseable files
    (:data:`PARSE_ERROR_RULE`) and suppressions without a justification
    (:data:`BARE_NOQA_RULE`) — which no rule selection can turn off.
    """
    collected: list[Finding] = []
    for file in project.files:
        if file.parse_error is not None:
            collected.append(
                Finding(
                    rule=PARSE_ERROR_RULE,
                    path=file.rel,
                    line=file.parse_error.lineno or 1,
                    message=f"file does not parse: {file.parse_error.msg}",
                    contract="every scanned file must be valid python",
                )
            )
        for supp in file.suppressions:
            if not supp.justified:
                collected.append(
                    Finding(
                        rule=BARE_NOQA_RULE,
                        path=file.rel,
                        line=supp.line,
                        message=(
                            "suppression without a justification: "
                            "say why the pattern is intentional, e.g. "
                            "`# repro: noqa[REP001] inf sentinel is "
                            "mode-neutral`"
                        ),
                        contract=(
                            "every lint suppression carries a one-line "
                            "justification"
                        ),
                    )
                )
    for rule in rules:
        for finding in rule.check(project):
            file = project.get(finding.path)
            if file is not None and file.suppressed(
                finding.rule, finding.line
            ):
                continue
            collected.append(finding)
    collected.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    if baseline is None:
        return collected, []
    active = [f for f in collected if not baseline.covers(f)]
    grandfathered = [f for f in collected if baseline.covers(f)]
    return active, grandfathered
