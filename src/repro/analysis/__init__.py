"""Repo-specific static analysis: the invariant linter behind ``repro lint``.

See :mod:`repro.analysis.core` for the framework and
:mod:`repro.analysis.rules` for the shipped contracts (REP001–REP005).
"""

from repro.analysis import rules as _rules  # noqa: F401  (registers rules)
from repro.analysis.core import (
    BARE_NOQA_RULE,
    PARSE_ERROR_RULE,
    Baseline,
    Finding,
    Project,
    Rule,
    available_rules,
    get_rules,
    register_rule,
    run_rules,
)
from repro.analysis.reporters import render_json, render_text

__all__ = [
    "BARE_NOQA_RULE",
    "PARSE_ERROR_RULE",
    "Baseline",
    "Finding",
    "Project",
    "Rule",
    "available_rules",
    "get_rules",
    "register_rule",
    "run_rules",
    "render_json",
    "render_text",
]
