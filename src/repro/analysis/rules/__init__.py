"""The shipped invariant rules. Importing this package registers them.

Adding a rule: create ``repNNN_<slug>.py`` defining a
:class:`~repro.analysis.core.Rule` subclass decorated with
:func:`~repro.analysis.core.register_rule`, and import the module here.
"""

from repro.analysis.rules import (  # noqa: F401  (import registers the rules)
    rep001_float_taint,
    rep002_blocking,
    rep003_cache_key,
    rep004_stats_drift,
    rep005_nondeterminism,
)

__all__ = [
    "rep001_float_taint",
    "rep002_blocking",
    "rep003_cache_key",
    "rep004_stats_drift",
    "rep005_nondeterminism",
]
