"""REP003 — every adversary ``__init__`` parameter reaches the cache key.

The engine's plane cache (and the parallel backend's model identity) key
results by ``(model.name, model.params_key(), ...)``. A parametric model
whose constructor takes a knob that never reaches :meth:`params_key` /
:meth:`cache_key` is a *stale-cache* bug: two differently-parameterized
instances collide on the same key and the second silently returns the
first's numbers. ROADMAP's next planned model (Wong et al.'s bounded
prior-ratio ``b``) is exactly this shape — this rule makes the mistake
impossible to land.

For each class registered via ``@register_adversary`` (or subclassing
``AdversaryModel``) in ``src/repro/engine/``, the rule maps every
``__init__`` parameter to the ``self.*`` attributes it is stored into, then
checks that at least one of those attributes (or the bare parameter name)
is read inside the class's ``params_key``/``cache_key`` — searching
inherited definitions through the in-package base-class chain, so a
subclass that relies on a parent's complete key stays clean.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.astutil import arg_names, dotted_name
from repro.analysis.core import Finding, Project, Rule, register_rule

ENGINE_DIR = "src/repro/engine"
BASE_CLASS = "AdversaryModel"
KEY_METHODS = ("params_key", "cache_key")


def _self_attr_reads(node: ast.AST) -> set[str]:
    """Names of ``self.<attr>`` reads (and bare names) inside ``node``."""
    reads: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and isinstance(
            sub.value, ast.Name
        ):
            if sub.value.id == "self":
                reads.add(sub.attr)
        elif isinstance(sub, ast.Name):
            reads.add(sub.id)
    return reads


def _names_in(node: ast.AST) -> set[str]:
    return {
        sub.id for sub in ast.walk(node) if isinstance(sub, ast.Name)
    }


class _ModelClass:
    def __init__(self, file_rel: str, node: ast.ClassDef) -> None:
        self.file_rel = file_rel
        self.node = node
        self.bases = [
            name.split(".")[-1]
            for name in (dotted_name(b) for b in node.bases)
            if name is not None
        ]
        self.methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {
            item.name: item
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }

    @property
    def is_registered(self) -> bool:
        for deco in self.node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = dotted_name(target)
            if name is not None and name.split(".")[-1] == "register_adversary":
                return True
        return False


def _find_method(
    cls: _ModelClass, name: str, classes: dict[str, _ModelClass]
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    """MRO-ish lookup through the in-package base chain, stopping at the
    abstract base (whose default ``params_key`` keys nothing)."""
    seen: set[str] = set()
    stack = [cls]
    while stack:
        current = stack.pop(0)
        if current.node.name in seen:
            continue
        seen.add(current.node.name)
        if current.node.name == BASE_CLASS:
            continue
        if name in current.methods:
            return current.methods[name]
        for base in current.bases:
            if base in classes:
                stack.append(classes[base])
    return None


@register_rule
class CacheKeyCompleteness(Rule):
    id = "REP003"
    title = "cache-key completeness"
    contract = (
        "every AdversaryModel __init__ parameter is reflected in "
        "params_key()/cache_key() — otherwise two differently-parameterized "
        "instances share a plane-cache entry and the second gets the "
        "first's results"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        classes: dict[str, _ModelClass] = {}
        for file in project.in_dir(ENGINE_DIR):
            if file.parse_error is not None:
                continue
            for node in ast.walk(file.tree):
                if isinstance(node, ast.ClassDef):
                    classes[node.name] = _ModelClass(file.rel, node)

        def is_model(cls: _ModelClass) -> bool:
            if cls.node.name == BASE_CLASS:
                return False
            if cls.is_registered:
                return True
            stack = list(cls.bases)
            seen: set[str] = set()
            while stack:
                base = stack.pop()
                if base in seen:
                    continue
                seen.add(base)
                if base == BASE_CLASS:
                    return True
                if base in classes:
                    stack.extend(classes[base].bases)
            return False

        for name in sorted(classes):
            cls = classes[name]
            if not is_model(cls):
                continue
            init = _find_method(cls, "__init__", classes)
            if init is None:
                continue
            params = [a.arg for a in arg_names(init) if a.arg != "self"]
            if not params:
                continue
            # param -> the self attributes it is stored into
            stored: dict[str, set[str]] = {p: set() for p in params}
            for stmt in ast.walk(init):
                if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                if stmt.value is None:
                    continue
                value_names = _names_in(stmt.value)
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        for param in params:
                            if param in value_names:
                                stored[param].add(target.attr)
            keyed_reads: set[str] = set()
            for method_name in KEY_METHODS:
                method = _find_method(cls, method_name, classes)
                if method is not None:
                    keyed_reads |= _self_attr_reads(method)
            file = project.get(cls.file_rel)
            assert file is not None
            for param in params:
                identities = stored[param] | {param}
                if identities & keyed_reads:
                    continue
                yield self.finding(
                    file,
                    init.lineno,
                    f"__init__ parameter `{param}` of model "
                    f"`{cls.node.name}` never reaches "
                    "params_key()/cache_key()",
                )
