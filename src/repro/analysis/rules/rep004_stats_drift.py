"""REP004 — stats counters, ``/stats`` assembly and bench schema agree.

The serving tier's observability chain crosses three files that nothing at
runtime ties together: a counter is incremented on a ``*Stats`` object in
``service/``/``engine/`` code, surfaced through that class's ``as_dict``
(the ``/stats`` payload), emitted by ``benchmarks/bench_service.py`` into
``BENCH_service.json``, and finally asserted by
``scripts/check_bench_schema.py``'s key sets. Any link can silently drift:
a new counter that never reaches ``as_dict`` is invisible; a bench key
missing from the schema key sets is unguarded against regression.

Three statically checkable links:

1. every counter attribute initialized in a ``*Stats`` class (``__init__``
   int assignment or dataclass int field) is read in that class's
   ``as_dict``;
2. every ``<something stats>.attr += ...`` increment in ``service/`` /
   ``engine/`` targets an attribute some ``*Stats`` class declares;
3. every benchmark dict entry of the form ``"key": <stats mapping>["..."]``
   uses a key present in one of ``check_bench_schema.py``'s UPPER_CASE
   key-set literals (skipped when the script is outside the scanned tree).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.astutil import dotted_name
from repro.analysis.core import Finding, Project, Rule, register_rule

STATS_DIRS = ("src/repro/service", "src/repro/engine")
BENCH_DIR = "benchmarks"
SCHEMA_SCRIPT = "scripts/check_bench_schema.py"


class _StatsClass:
    def __init__(self, file_rel: str, node: ast.ClassDef) -> None:
        self.file_rel = file_rel
        self.node = node
        self.counters: set[str] = set()  # int-valued, must be exposed
        self.declared: set[str] = set()  # every initialized attribute
        self.as_dict_reads: set[str] = set()
        self.has_as_dict = False
        self._collect()

    def _collect(self) -> None:
        for item in self.node.body:
            # dataclass-style: `evaluations: int = 0` at class level
            if (
                isinstance(item, ast.AnnAssign)
                and isinstance(item.target, ast.Name)
                and not item.target.id.startswith("_")
            ):
                self.declared.add(item.target.id)
                if (
                    isinstance(item.annotation, ast.Name)
                    and item.annotation.id == "int"
                ):
                    self.counters.add(item.target.id)
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name == "__init__":
                for stmt in ast.walk(item):
                    if not isinstance(stmt, ast.Assign):
                        continue
                    for target in stmt.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            self.declared.add(target.attr)
                            if isinstance(
                                stmt.value, ast.Constant
                            ) and isinstance(stmt.value.value, int):
                                self.counters.add(target.attr)
            elif item.name == "as_dict":
                self.has_as_dict = True
                for sub in ast.walk(item):
                    if (
                        isinstance(sub, ast.Attribute)
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id == "self"
                    ):
                        self.as_dict_reads.add(sub.attr)


@register_rule
class StatsCounterDrift(Rule):
    id = "REP004"
    title = "stats-counter drift"
    contract = (
        "every stats counter is exposed by its class's as_dict, every "
        "increment targets a declared counter, and every benchmark-emitted "
        "stats key is covered by check_bench_schema.py's key sets"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        stats_classes: list[_StatsClass] = []
        for stats_dir in STATS_DIRS:
            for file in project.in_dir(stats_dir):
                if file.parse_error is not None:
                    continue
                for node in ast.walk(file.tree):
                    if isinstance(node, ast.ClassDef) and node.name.endswith(
                        "Stats"
                    ):
                        stats_classes.append(_StatsClass(file.rel, node))

        # Link 1: counter initialized but invisible in /stats output.
        for cls in stats_classes:
            if not cls.has_as_dict:
                continue
            file = project.get(cls.file_rel)
            assert file is not None
            for counter in sorted(cls.counters - cls.as_dict_reads):
                yield self.finding(
                    file,
                    cls.node.lineno,
                    f"counter `{counter}` of `{cls.node.name}` is "
                    "initialized but never read in as_dict() — it can "
                    "never reach /stats",
                )

        # Link 2: increments on stats objects must hit declared attributes.
        declared = set().union(*(c.declared for c in stats_classes), set())
        if stats_classes:
            for stats_dir in STATS_DIRS:
                for file in project.in_dir(stats_dir):
                    if file.parse_error is not None:
                        continue
                    for node in ast.walk(file.tree):
                        if not isinstance(node, ast.AugAssign):
                            continue
                        target = node.target
                        if not isinstance(target, ast.Attribute):
                            continue
                        base = dotted_name(target.value)
                        if base is None or "stats" not in base.lower():
                            continue
                        if target.attr not in declared:
                            yield self.finding(
                                file,
                                node.lineno,
                                f"increment of `{base}.{target.attr}` but "
                                "no *Stats class declares "
                                f"`{target.attr}`",
                            )

        # Link 3: benchmark-emitted stats keys vs the schema key sets.
        schema = project.get(SCHEMA_SCRIPT)
        if schema is None or schema.parse_error is not None:
            return
        schema_keys: set[str] = set()
        for node in ast.walk(schema.tree):
            if not isinstance(node, ast.Assign):
                continue
            is_upper = any(
                isinstance(t, ast.Name) and t.id.isupper()
                for t in node.targets
            )
            if not is_upper:
                continue
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Constant) and isinstance(
                    sub.value, str
                ):
                    schema_keys.add(sub.value)
        if not schema_keys:
            return
        for file in project.in_dir(BENCH_DIR):
            if file.parse_error is not None:
                continue
            for node in ast.walk(file.tree):
                if not isinstance(node, ast.Dict):
                    continue
                for key, value in zip(node.keys, node.values):
                    if not (
                        isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                    ):
                        continue
                    if not isinstance(value, ast.Subscript):
                        continue
                    base = dotted_name(value.value)
                    if base is None or "stats" not in base.lower():
                        continue
                    if key.value not in schema_keys:
                        yield self.finding(
                            file,
                            key.lineno,
                            f"benchmark emits stats key `{key.value}` "
                            "that no check_bench_schema.py key set "
                            "covers — schema drift",
                        )
