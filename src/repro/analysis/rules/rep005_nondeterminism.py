"""REP005 — nondeterminism hazards on the bit-identical paths.

The suite's strongest claims are equivalences: serial == parallel,
in-process == subprocess backend, scalar == numpy kernel, single ==
sharded service — all asserted *bit-identically*. Three statically
detectable patterns can break that without failing any unit test:

- **unseeded global ``random.*``** — results change run to run; the
  sanctioned spelling is an explicit ``random.Random(seed)`` instance
  (``SamplingAdversary`` does exactly this);
- **ordered output fed from set iteration** — ``for x in set(...)`` (or a
  set literal/comprehension) has hash-seed-dependent order, so anything
  order-sensitive built from it differs across processes — the exact bug
  class the subprocess backend's bit-identical contract forbids;
- **``json.dumps`` without ``sort_keys=True``** — dict insertion order
  leaks into the serialized form, so two semantically equal payloads built
  in different orders hash/compare differently across backends.

Scope: ``src/repro/core/`` and ``src/repro/engine/``, the layers under the
equivalence contracts.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.astutil import ImportMap, dotted_name
from repro.analysis.core import Finding, Project, Rule, register_rule

SCOPES = ("src/repro/core", "src/repro/engine")

#: ``random`` module functions backed by the *global* (unseeded) PRNG.
GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "randbytes",
        "getrandbits",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "betavariate",
        "binomialvariate",
        "expovariate",
        "gammavariate",
        "gauss",
        "lognormvariate",
        "normalvariate",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
    }
)


def _call_origin(call: ast.Call, imports: ImportMap) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        return imports.origin(func.id)
    dotted = dotted_name(func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    origin = imports.origin(head)
    if origin is None:
        return None
    return f"{origin}.{rest}" if rest else origin


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    return False


@register_rule
class NondeterminismHazards(Rule):
    id = "REP005"
    title = "nondeterminism hazard"
    contract = (
        "core/ and engine/ results are bit-identical across runs, "
        "processes and backends: no global random state, no ordered "
        "output from set iteration, no order-sensitive json.dumps"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for scope in SCOPES:
            for file in project.in_dir(scope):
                if file.parse_error is not None:
                    continue
                imports = ImportMap(file.tree)
                for node in ast.walk(file.tree):
                    if isinstance(node, ast.Call):
                        origin = _call_origin(node, imports)
                        if origin is not None:
                            root, _, attr = origin.partition(".")
                            if (
                                root == "random"
                                and attr in GLOBAL_RANDOM_FUNCS
                            ):
                                yield self.finding(
                                    file,
                                    node.lineno,
                                    f"unseeded global random call "
                                    f"`{origin}()` — use an explicit "
                                    "random.Random(seed) instance",
                                )
                            elif origin == "json.dumps" and not any(
                                kw.arg == "sort_keys"
                                for kw in node.keywords
                            ):
                                yield self.finding(
                                    file,
                                    node.lineno,
                                    "json.dumps without sort_keys=True — "
                                    "serialized form depends on dict "
                                    "insertion order",
                                )
                    iter_expr: ast.expr | None = None
                    if isinstance(node, (ast.For, ast.AsyncFor)):
                        iter_expr = node.iter
                    elif isinstance(node, ast.comprehension):
                        iter_expr = node.iter
                    if iter_expr is not None and _is_set_expr(iter_expr):
                        yield self.finding(
                            file,
                            iter_expr.lineno,
                            "iteration directly over a set feeds "
                            "hash-order into the result — sort it "
                            "(`sorted(...)`) before iterating",
                        )
