"""REP001 — no float taint on the exact-arithmetic path in ``core/``.

The paper's guarantee is *exact* worst-case disclosure bounds: when a caller
asks for ``exact=True`` every intermediate value must be a
:class:`~fractions.Fraction` (or an int), because one float literal or one
``math.*`` call silently converts the whole chain to floating point and the
"exact" answer stops being exact — the kind of bug no tolerance-based test
can distinguish from legitimate rounding.

The rule computes the set of functions **reachable from the exact-mode
entry points** of ``src/repro/core/`` — any function with an ``exact``
parameter, any method of a class constructed with one (the shared solver),
and everything in ``core/exact.py`` (the always-exact oracle) — via a
name-based intra-package call graph, and flags, inside those functions:

- float literals (``0.5``),
- ``float(...)`` conversions,
- ``math.*`` / ``cmath.*`` uses other than the integer-exact functions
  (``factorial``, ``comb``, ``gcd``, ...), through any import alias,
- any ``numpy`` use (the vectorized kernel is float-by-design and lives in
  the exempt ``core/kernel.py``).

The codebase's *guard idiom* is understood and allowed: float expressions
lexically confined to the non-exact side of an ``exact`` test —
``Fraction(1) if exact else 1.0``, the ``else`` branch of ``if exact:``,
or code after an ``if exact:`` block that always returns — are the float
mode's half of the contract, not taint.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.astutil import (
    FunctionIndex,
    ImportMap,
    arg_names,
    body_terminates,
    dotted_name,
)
from repro.analysis.core import Finding, Project, Rule, SourceFile, register_rule

CORE_DIR = "src/repro/core"
#: The vectorized kernel is the float path *by design* (exact mode always
#: resolves to the scalar kernel before it is ever consulted).
EXEMPT_FILES = frozenset({"src/repro/core/kernel.py"})
#: Modules whose every function is an exact-mode entry point.
ALWAYS_EXACT_MODULES = frozenset({"src/repro/core/exact.py"})
#: ``math`` functions that are exact on ints — allowed everywhere.
EXACT_MATH = frozenset(
    {"factorial", "comb", "perm", "gcd", "lcm", "isqrt", "prod"}
)

_FuncKey = tuple[str, str]  # (file rel path, qualified function name)


def _exact_test(expr: ast.expr) -> int:
    """Classify a test: +1 = "we are in exact mode", -1 = negated, 0 = other.

    Recognizes the codebase's guard spellings: a bare ``exact`` name, any
    ``*.exact`` / ``*._exact`` attribute (``context.exact``,
    ``solver.exact``, ``self._exact``), and ``not`` around either.
    """
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.Not):
        return -_exact_test(expr.operand)
    if isinstance(expr, ast.Name) and expr.id.strip("_").lower() == "exact":
        return 1
    if (
        isinstance(expr, ast.Attribute)
        and expr.attr.strip("_").lower() == "exact"
    ):
        return 1
    return 0


class _FunctionScanner:
    """Scan one reachable function body for float taint, honouring the
    ``exact``-guard idiom (see module docstring)."""

    def __init__(
        self,
        rule: Rule,
        file: SourceFile,
        imports: ImportMap,
        qualname: str,
    ) -> None:
        self.rule = rule
        self.file = file
        self.imports = imports
        self.qualname = qualname
        self.findings: list[Finding] = []

    # -- reporting ----------------------------------------------------
    def _flag(self, node: ast.AST, what: str) -> None:
        self.findings.append(
            self.rule.finding(
                self.file,
                getattr(node, "lineno", 1),
                f"{what} in exact-reachable function `{self.qualname}`",
            )
        )

    # -- leaf checks --------------------------------------------------
    def _check_node(self, node: ast.expr) -> None:
        if isinstance(node, ast.Constant) and isinstance(
            node.value, (float, complex)
        ):
            self._flag(node, f"float literal {node.value!r}")
            return
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id == "float":
                self._flag(node, "float() conversion")
                return
            origin = self.imports.origin(node.func.id)
            if origin is not None and "." in origin:
                root, _, attr = origin.rpartition(".")
                if root in ("math", "cmath") and attr not in EXACT_MATH:
                    self._flag(node, f"call to {origin}")
                elif root.split(".")[0] == "numpy":
                    self._flag(node, f"call to {origin}")
            return
        if isinstance(node, ast.Attribute):
            dotted = dotted_name(node)
            if dotted is None:
                return
            head, _, rest = dotted.partition(".")
            origin = self.imports.origin(head) or head
            if origin in ("math", "cmath") and rest:
                if rest.split(".")[0] not in EXACT_MATH:
                    self._flag(node, f"use of {origin}.{rest}")
            elif origin == "numpy" or origin.startswith("numpy."):
                self._flag(node, f"use of numpy ({dotted})")

    # -- traversal ----------------------------------------------------
    def scan_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        for default in [
            *node.args.defaults,
            *[d for d in node.args.kw_defaults if d is not None],
        ]:
            self.scan_expr(default, float_ok=False)
        self.scan_block(node.body, float_ok=False)

    def scan_block(self, stmts: list[ast.stmt], float_ok: bool) -> None:
        allowed = float_ok
        for stmt in stmts:
            self.scan_stmt(stmt, allowed)
            # Early-return guard: after `if <exact>: ... return`, the rest
            # of this block only ever runs in float mode.
            if (
                isinstance(stmt, ast.If)
                and not stmt.orelse
                and _exact_test(stmt.test) == 1
                and body_terminates(stmt.body)
            ):
                allowed = True

    def scan_stmt(self, stmt: ast.stmt, float_ok: bool) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # separate call-graph node; scanned on its own if reachable
        if isinstance(stmt, ast.If):
            guard = _exact_test(stmt.test)
            self.scan_expr(stmt.test, float_ok)
            self.scan_block(stmt.body, float_ok or guard == -1)
            self.scan_block(stmt.orelse, float_ok or guard == 1)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.scan_expr(stmt.iter, float_ok)
            self.scan_block(stmt.body, float_ok)
            self.scan_block(stmt.orelse, float_ok)
            return
        if isinstance(stmt, ast.While):
            self.scan_expr(stmt.test, float_ok)
            self.scan_block(stmt.body, float_ok)
            self.scan_block(stmt.orelse, float_ok)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.scan_expr(item.context_expr, float_ok)
            self.scan_block(stmt.body, float_ok)
            return
        if isinstance(stmt, ast.Try):
            self.scan_block(stmt.body, float_ok)
            for handler in stmt.handlers:
                self.scan_block(handler.body, float_ok)
            self.scan_block(stmt.orelse, float_ok)
            self.scan_block(stmt.finalbody, float_ok)
            return
        if isinstance(stmt, ast.AnnAssign):
            # Annotations are typing metadata, not arithmetic.
            if stmt.value is not None:
                self.scan_expr(stmt.value, float_ok)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self.scan_expr(child, float_ok)

    def scan_expr(self, node: ast.expr | None, float_ok: bool) -> None:
        if node is None:
            return
        if isinstance(node, ast.IfExp):
            guard = _exact_test(node.test)
            self.scan_expr(node.test, float_ok)
            self.scan_expr(node.body, float_ok or guard == -1)
            self.scan_expr(node.orelse, float_ok or guard == 1)
            return
        if not float_ok:
            self._check_node(node)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.scan_expr(child, float_ok)
            elif isinstance(child, ast.comprehension):
                self.scan_expr(child.iter, float_ok)
                for cond in child.ifs:
                    self.scan_expr(cond, float_ok)


def _called_names(node: ast.AST) -> set[str]:
    """Simple names this function calls (name-based edge resolution)."""
    names: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            if isinstance(sub.func, ast.Name):
                names.add(sub.func.id)
            elif isinstance(sub.func, ast.Attribute):
                names.add(sub.func.attr)
    return names


@register_rule
class ExactPathFloatTaint(Rule):
    id = "REP001"
    title = "exact-path float taint"
    contract = (
        "exact mode returns true Fractions: no float literal, float() cast, "
        "math.* or numpy use on any path reachable from an exact-mode entry "
        "point in core/ (kernel.py is float-by-design and exempt)"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        files = [
            f
            for f in project.in_dir(CORE_DIR)
            if f.rel not in EXEMPT_FILES and f.parse_error is None
        ]
        functions: dict[_FuncKey, ast.AST] = {}
        by_simple_name: dict[str, list[_FuncKey]] = {}
        imports: dict[str, ImportMap] = {}
        entries: set[_FuncKey] = set()
        for file in files:
            imports[file.rel] = ImportMap(file.tree)
            index = FunctionIndex(file.tree, file.rel)
            exact_classes = {
                cls
                for cls, args in index.class_init_args.items()
                if "exact" in args
            }
            for qualname, node in index.functions.items():
                key = (file.rel, qualname)
                functions[key] = node
                by_simple_name.setdefault(node.name, []).append(key)
                params = {a.arg for a in arg_names(node)}
                if (
                    "exact" in params
                    or file.rel in ALWAYS_EXACT_MODULES
                    or qualname.split(".")[0] in exact_classes
                ):
                    entries.add(key)
        # Reachability closure over name-resolved call edges.
        reachable = set(entries)
        queue = list(entries)
        while queue:
            key = queue.pop()
            for name in _called_names(functions[key]):
                for target in by_simple_name.get(name, ()):
                    if target not in reachable:
                        reachable.add(target)
                        queue.append(target)
        for rel, qualname in sorted(reachable):
            file = project.get(rel)
            assert file is not None
            scanner = _FunctionScanner(self, file, imports[rel], qualname)
            node = functions[(rel, qualname)]
            assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            scanner.scan_function(node)
            yield from scanner.findings
