"""REP002 — no blocking calls lexically inside ``async def`` in ``service/``.

The serving tier (PRs 4–7) is a single-threaded asyncio event loop per
shard: one synchronous ``time.sleep``, socket connect, ``open`` or
``subprocess`` call inside a coroutine stalls *every* in-flight request on
that shard — the kind of latency bug that only shows under load, never in
unit tests.

The rule walks every ``async def`` in ``src/repro/service/`` and flags
direct (lexical) calls to the blocking families: ``time.sleep``, the
``socket`` module, ``http.client``, builtin ``open``, and the synchronous
``subprocess`` API. Nested *sync* ``def``s and lambdas are skipped — the
codebase's idiom ships those to ``run_in_executor``/``to_thread``, which is
exactly the sanctioned escape hatch (``asyncio.create_subprocess_exec`` is
likewise untouched: its root module is ``asyncio``).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.astutil import FunctionIndex, ImportMap, dotted_name
from repro.analysis.core import Finding, Project, Rule, register_rule

SERVICE_DIR = "src/repro/service"

#: random.* is *not* here — it is nondeterminism (REP005), not blocking.
_BLOCKING_ROOTS = frozenset({"socket", "subprocess"})


def _call_origin(call: ast.Call, imports: ImportMap) -> str | None:
    """The dotted origin of a call through any import alias, or ``None``."""
    func = call.func
    if isinstance(func, ast.Name):
        if func.id == "open":
            return "open"
        return imports.origin(func.id)
    dotted = dotted_name(func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    origin = imports.origin(head)
    if origin is None:
        return None
    return f"{origin}.{rest}" if rest else origin


def _blocking_reason(origin: str) -> str | None:
    if origin == "open":
        return "builtin open() performs blocking file I/O"
    if origin == "time.sleep":
        return "time.sleep() blocks the event loop (use asyncio.sleep)"
    root = origin.split(".")[0]
    if root in _BLOCKING_ROOTS:
        return f"synchronous {origin}() blocks the event loop"
    if origin.startswith("http.client"):
        return f"synchronous {origin}() blocks the event loop"
    return None


class _AsyncBodyScanner(ast.NodeVisitor):
    """Collect blocking calls in one coroutine body, skipping nested
    function scopes (sync defs/lambdas run in executors; nested async defs
    are scanned as their own coroutines)."""

    def __init__(self, imports: ImportMap) -> None:
        self.imports = imports
        self.hits: list[tuple[int, str]] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # executor-bound sync helper: its blocking is the point

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass  # scanned separately as its own coroutine

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass  # run_in_executor(None, lambda: ...) idiom

    def visit_Call(self, node: ast.Call) -> None:
        origin = _call_origin(node, self.imports)
        if origin is not None:
            reason = _blocking_reason(origin)
            if reason is not None:
                self.hits.append((node.lineno, reason))
        self.generic_visit(node)


@register_rule
class EventLoopBlockingCalls(Rule):
    id = "REP002"
    title = "event-loop blocking call"
    contract = (
        "service/ coroutines never call blocking APIs (time.sleep, socket, "
        "http.client, open, subprocess) directly — blocking work goes "
        "through run_in_executor or the asyncio equivalents"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for file in project.in_dir(SERVICE_DIR):
            if file.parse_error is not None:
                continue
            imports = ImportMap(file.tree)
            index = FunctionIndex(file.tree, file.rel)
            for qualname, node in sorted(index.functions.items()):
                if not isinstance(node, ast.AsyncFunctionDef):
                    continue
                scanner = _AsyncBodyScanner(imports)
                for stmt in node.body:
                    scanner.visit(stmt)
                for line, reason in scanner.hits:
                    yield self.finding(
                        file,
                        line,
                        f"{reason} in coroutine `{qualname}`",
                    )
