"""Text and JSON renderers for lint runs.

The text form is what a developer reads in CI: rule id, ``file:line``,
message, and — because a failing invariant should explain itself — the
contract the rule protects, indented under each finding. The JSON form is
machine-readable (``repro lint --format json``) for tooling and the CI
annotation step.
"""

from __future__ import annotations

import json
from collections.abc import Sequence

from repro.analysis.core import Finding

__all__ = ["render_text", "render_json"]


def render_text(
    active: Sequence[Finding],
    baselined: Sequence[Finding],
    *,
    verbose: bool = False,
) -> str:
    lines: list[str] = []
    for finding in active:
        lines.append(
            f"{finding.path}:{finding.line}: {finding.rule} "
            f"{finding.message}"
        )
        if finding.contract:
            lines.append(f"    contract: {finding.contract}")
    if baselined:
        lines.append(
            f"{len(baselined)} grandfathered finding(s) covered by the "
            "baseline (not failures)"
        )
        if verbose:
            for finding in baselined:
                lines.append(
                    f"  [baseline] {finding.path}:{finding.line}: "
                    f"{finding.rule} {finding.message}"
                )
    if active:
        lines.append(f"{len(active)} finding(s)")
    else:
        lines.append("clean: no non-baselined findings")
    return "\n".join(lines)


def render_json(
    active: Sequence[Finding], baselined: Sequence[Finding]
) -> str:
    return json.dumps(
        {
            "findings": [f.as_dict() for f in active],
            "baselined": [f.as_dict() for f in baselined],
            "clean": not active,
        },
        indent=2,
        sort_keys=True,
    )
