"""Lattice search for minimally sanitized safe generalizations (Section 3.4).

Theorem 14 makes (c,k)-safety monotone: if a node is safe, every ancestor
(coarser node) is safe. Two search strategies follow:

- :func:`find_minimal_safe_nodes` — bottom-up level-wise sweep with
  monotonicity pruning, in the spirit of the paper's Incognito modification:
  "simply replacing the check for k-anonymity with the check for
  (c,k)-safety". Returns *all* minimal safe nodes, so a utility function can
  pick among them (:func:`find_best_safe_node`).
- :func:`binary_search_chain` — the paper's observation that along a chain
  the least safe node is found with logarithmically many checks.

Both accept any monotone predicate, so they also serve k-anonymity and
ℓ-diversity (see :mod:`repro.anonymity`). For (c,k)-safety against an
arbitrary adversary model, build the predicate with
:func:`node_safety_predicate` (or use the equivalent
:class:`~repro.engine.engine.DisclosureEngine` search methods, which share
the engine's disclosure cache across nodes and models).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.errors import SearchError
from repro.generalization.lattice import GeneralizationLattice, Node

__all__ = [
    "SearchStats",
    "node_safety_predicate",
    "find_minimal_safe_nodes",
    "find_best_safe_node",
    "binary_search_chain",
]


def node_safety_predicate(
    table, lattice: GeneralizationLattice, checker: Callable
) -> Callable[[Node], bool]:
    """Lift a bucketization-level safety check to lattice nodes.

    ``checker`` is anything callable on a bucketization — typically a
    :class:`~repro.core.safety.SafetyChecker` (which carries its adversary
    model and shares the engine's signature-multiset cache across nodes), but
    a bare lambda works too.

    Examples
    --------
    ``find_minimal_safe_nodes(lattice, node_safety_predicate(table, lattice,
    SafetyChecker(0.7, 3, model="negation")))`` finds the minimal nodes safe
    against the ℓ-diversity adversary.
    """
    from repro.generalization.apply import bucketize_at

    def is_safe(node: Node) -> bool:
        return bool(checker(bucketize_at(table, lattice, node)))

    return is_safe


@dataclass
class SearchStats:
    """Bookkeeping for a lattice search.

    Attributes
    ----------
    nodes_total:
        Number of lattice nodes in scope.
    predicate_checks:
        How many nodes the (expensive) safety predicate was evaluated on.
    pruned:
        Nodes skipped because an already-safe descendant made them
        non-minimal (monotonicity pruning).
    """

    nodes_total: int = 0
    predicate_checks: int = 0
    pruned: int = 0
    checked_nodes: list[Node] = field(default_factory=list)


def find_minimal_safe_nodes(
    lattice: GeneralizationLattice,
    is_safe: Callable[[Node], bool],
    *,
    stats: SearchStats | None = None,
) -> list[Node]:
    """All componentwise-minimal nodes satisfying a monotone predicate.

    Sweeps the lattice bottom-up by height. A node strictly above some
    already-found safe node cannot be minimal and is skipped without
    evaluating the predicate; every evaluated-safe node is therefore minimal.

    Parameters
    ----------
    is_safe:
        Monotone predicate on nodes (e.g. ``lambda node:
        checker.is_safe(bucketize_at(table, lattice, node))``). Monotonicity
        is the caller's responsibility; Theorem 14 provides it for
        (c,k)-safety.
    stats:
        Optional :class:`SearchStats` to fill in.

    Returns
    -------
    list[Node]
        Minimal safe nodes (possibly empty if even the top node is unsafe).
    """
    if stats is None:
        stats = SearchStats()
    stats.nodes_total = lattice.size
    minimal: list[Node] = []
    for level in lattice.nodes_by_height():
        for node in level:
            if any(
                lattice.is_ancestor_or_equal(found, node) for found in minimal
            ):
                stats.pruned += 1
                continue
            stats.predicate_checks += 1
            stats.checked_nodes.append(node)
            if is_safe(node):
                minimal.append(node)
    return minimal


def find_best_safe_node(
    lattice: GeneralizationLattice,
    is_safe: Callable[[Node], bool],
    utility: Callable[[Node], float],
    *,
    stats: SearchStats | None = None,
) -> Node:
    """The minimal safe node maximizing ``utility`` (Section 3.4's
    "bucketization that maximizes a given utility function subject to the
    constraint that the bucketization be (c,k)-safe").

    Raises
    ------
    SearchError
        If no safe node exists.
    """
    candidates = find_minimal_safe_nodes(lattice, is_safe, stats=stats)
    if not candidates:
        raise SearchError(
            "no lattice node satisfies the safety predicate (even the top "
            "node is unsafe)"
        )
    return max(candidates, key=utility)


def binary_search_chain(
    chain: Sequence[Node],
    is_safe: Callable[[Node], bool],
    *,
    stats: SearchStats | None = None,
) -> Node:
    """Lowest safe node on a bottom-to-top chain, with O(log |chain|) checks.

    The chain must be ordered fine-to-coarse so the predicate is monotone
    along it (false...false true...true); the paper's Section 3.4 notes this
    gives a search "logarithmic in the height of the bucketization lattice".

    Raises
    ------
    SearchError
        If even the last (coarsest) node is unsafe.
    ValueError
        If the chain is empty.
    """
    if not chain:
        raise ValueError("chain must be non-empty")
    if stats is None:
        stats = SearchStats()
    stats.nodes_total = len(chain)
    lo, hi = 0, len(chain) - 1
    # Establish the invariant: chain[hi] safe (else nothing on the chain is).
    stats.predicate_checks += 1
    stats.checked_nodes.append(chain[hi])
    if not is_safe(chain[hi]):
        raise SearchError("no safe node on the chain (top is unsafe)")
    while lo < hi:
        mid = (lo + hi) // 2
        stats.predicate_checks += 1
        stats.checked_nodes.append(chain[mid])
        if is_safe(chain[mid]):
            hi = mid
        else:
            lo = mid + 1
    return chain[lo]
