"""Lattice search for minimally sanitized safe generalizations (Section 3.4).

Theorem 14 makes (c,k)-safety monotone: if a node is safe, every ancestor
(coarser node) is safe. Two search strategies follow:

- :func:`find_minimal_safe_nodes` — bottom-up level-wise sweep with
  monotonicity pruning, in the spirit of the paper's Incognito modification:
  "simply replacing the check for k-anonymity with the check for
  (c,k)-safety". Returns *all* minimal safe nodes, so a utility function can
  pick among them (:func:`find_best_safe_node`).
- :func:`binary_search_chain` — the paper's observation that along a chain
  the least safe node is found with logarithmically many checks.

Both accept any monotone predicate, so they also serve k-anonymity and
ℓ-diversity (see :mod:`repro.anonymity`). For (c,k)-safety against an
arbitrary adversary model, build the predicate with
:func:`node_safety_predicate` (or use the equivalent
:class:`~repro.engine.engine.DisclosureEngine` search methods, which share
the engine's disclosure cache across nodes and models).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.errors import SearchError
from repro.generalization.lattice import GeneralizationLattice, Node

__all__ = [
    "SearchStats",
    "node_safety_predicate",
    "find_minimal_safe_nodes",
    "find_best_safe_node",
    "binary_search_chain",
]


def node_safety_predicate(
    table,
    lattice: GeneralizationLattice,
    checker: Callable,
    *,
    node_memo: dict | None = None,
    signature_memo: dict | None = None,
    bucketizations: dict | None = None,
) -> Callable[[Node], bool]:
    """Lift a bucketization-level safety check to lattice nodes.

    ``checker`` is anything callable on a bucketization — typically a
    :class:`~repro.core.safety.SafetyChecker` (which carries its adversary
    model and shares the engine's signature-plane cache across nodes), but
    a bare lambda works too.

    Parameters
    ----------
    node_memo:
        Optional ``node -> bool`` dict: re-checked nodes skip bucketizing
        entirely. Pass one dict across several searches on the same table
        and threshold to share their work.
    bucketizations:
        Optional prebuilt ``node -> bucketization`` dict (e.g. from a
        parallel prewarm); entries are *consumed* (popped) on first use so
        peak memory shrinks as the sweep progresses, and missing nodes fall
        back to :func:`~repro.generalization.apply.bucketize_at`.
    signature_memo:
        Optional ``signature items -> bool`` dict: nodes whose
        bucketizations induce the same signature multiset resolve with one
        ``checker`` call. Only sound when the checker's answer depends on
        the bucketization solely through its signatures — true for every
        signature-decomposable adversary model (the engine's
        :meth:`~repro.engine.engine.DisclosureEngine.node_predicate` turns
        this on exactly then) and for size-only predicates like
        k-anonymity; the caller vouches for anything custom.

    Examples
    --------
    ``find_minimal_safe_nodes(lattice, node_safety_predicate(table, lattice,
    SafetyChecker(0.7, 3, model="negation")))`` finds the minimal nodes safe
    against the ℓ-diversity adversary.
    """
    from repro.generalization.apply import bucketize_at

    def is_safe(node: Node) -> bool:
        if node_memo is not None:
            cached = node_memo.get(node)
            if cached is not None:
                return cached
        bucketization = (
            bucketizations.pop(node, None) if bucketizations is not None else None
        )
        if bucketization is None:
            bucketization = bucketize_at(table, lattice, node)
        if signature_memo is not None:
            signature_key = bucketization.signature_items()
            result = signature_memo.get(signature_key)
            if result is None:
                result = bool(checker(bucketization))
                signature_memo[signature_key] = result
        else:
            result = bool(checker(bucketization))
        if node_memo is not None:
            node_memo[node] = result
        return result

    return is_safe


@dataclass
class SearchStats:
    """Bookkeeping for a lattice search.

    Attributes
    ----------
    nodes_total:
        Number of lattice nodes in scope.
    predicate_checks:
        How many nodes the (expensive) safety predicate was evaluated on.
    pruned:
        Nodes skipped because an already-safe descendant made them
        non-minimal (monotonicity pruning).
    """

    nodes_total: int = 0
    predicate_checks: int = 0
    pruned: int = 0
    checked_nodes: list[Node] = field(default_factory=list)


def find_minimal_safe_nodes(
    lattice: GeneralizationLattice,
    is_safe: Callable[[Node], bool],
    *,
    stats: SearchStats | None = None,
) -> list[Node]:
    """All componentwise-minimal nodes satisfying a monotone predicate.

    Sweeps the lattice bottom-up by height. A node strictly above some
    already-found safe node cannot be minimal and is skipped without
    evaluating the predicate; every evaluated-safe node is therefore minimal.

    Parameters
    ----------
    is_safe:
        Monotone predicate on nodes (e.g. ``lambda node:
        checker.is_safe(bucketize_at(table, lattice, node))``). Monotonicity
        is the caller's responsibility; Theorem 14 provides it for
        (c,k)-safety.
    stats:
        Optional :class:`SearchStats` to fill in.

    Returns
    -------
    list[Node]
        Minimal safe nodes (possibly empty if even the top node is unsafe).
    """
    if stats is None:
        stats = SearchStats()
    stats.nodes_total = lattice.size
    minimal: list[Node] = []
    for level in lattice.nodes_by_height():
        for node in level:
            if any(
                lattice.is_ancestor_or_equal(found, node) for found in minimal
            ):
                stats.pruned += 1
                continue
            stats.predicate_checks += 1
            stats.checked_nodes.append(node)
            if is_safe(node):
                minimal.append(node)
    return minimal


def find_best_safe_node(
    lattice: GeneralizationLattice,
    is_safe: Callable[[Node], bool],
    utility: Callable[[Node], float],
    *,
    stats: SearchStats | None = None,
) -> Node:
    """The minimal safe node maximizing ``utility`` (Section 3.4's
    "bucketization that maximizes a given utility function subject to the
    constraint that the bucketization be (c,k)-safe").

    Raises
    ------
    SearchError
        If no safe node exists.
    """
    candidates = find_minimal_safe_nodes(lattice, is_safe, stats=stats)
    if not candidates:
        raise SearchError(
            "no lattice node satisfies the safety predicate (even the top "
            "node is unsafe)"
        )
    return max(candidates, key=utility)


def binary_search_chain(
    chain: Sequence[Node],
    is_safe: Callable[[Node], bool],
    *,
    stats: SearchStats | None = None,
) -> Node:
    """Lowest safe node on a bottom-to-top chain, with O(log |chain|) checks.

    The chain must be ordered fine-to-coarse so the predicate is monotone
    along it (false...false true...true); the paper's Section 3.4 notes this
    gives a search "logarithmic in the height of the bucketization lattice".

    Raises
    ------
    SearchError
        If even the last (coarsest) node is unsafe.
    ValueError
        If the chain is empty.
    """
    if not chain:
        raise ValueError("chain must be non-empty")
    if stats is None:
        stats = SearchStats()
    stats.nodes_total = len(chain)
    lo, hi = 0, len(chain) - 1
    # Establish the invariant: chain[hi] safe (else nothing on the chain is).
    stats.predicate_checks += 1
    stats.checked_nodes.append(chain[hi])
    if not is_safe(chain[hi]):
        raise SearchError("no safe node on the chain (top is unsafe)")
    while lo < hi:
        mid = (lo + hi) // 2
        stats.predicate_checks += 1
        stats.checked_nodes.append(chain[mid])
        if is_safe(chain[mid]):
            hi = mid
        else:
            lo = mid + 1
    return chain[lo]
