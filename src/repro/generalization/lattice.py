"""The full-domain generalization lattice.

A node is a vector of hierarchy levels, one per quasi-identifier in schema
order; node ``(0, ..., 0)`` is the original table, the all-max node is full
suppression. Nodes are ordered componentwise; the induced bucketizations are
ordered exactly the same way as the paper's Section-3.4 partial order (a
coarser node merges QI equivalence classes), so Theorem 14 applies along the
lattice.

The Adult lattice of Section 4 is ``6 x 3 x 2 x 2 = 72`` nodes.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence
from itertools import product
from typing import Any

from repro.errors import LatticeError
from repro.generalization.hierarchy import Hierarchy

__all__ = ["GeneralizationLattice"]

Node = tuple[int, ...]


class GeneralizationLattice:
    """The lattice of full-domain generalizations for a set of hierarchies.

    Parameters
    ----------
    hierarchies:
        Mapping from attribute name to :class:`~repro.generalization.hierarchy.Hierarchy`.
    attribute_order:
        Quasi-identifier order defining node-vector layout (usually
        ``schema.quasi_identifiers``). Every attribute must have a hierarchy.

    Examples
    --------
    >>> from repro.data import adult_hierarchies, ADULT_SCHEMA
    >>> lattice = GeneralizationLattice(adult_hierarchies(),
    ...                                 ADULT_SCHEMA.quasi_identifiers)
    >>> lattice.size
    72
    >>> lattice.bottom, lattice.top
    ((0, 0, 0, 0), (5, 2, 1, 1))
    """

    def __init__(
        self,
        hierarchies: Mapping[str, Hierarchy],
        attribute_order: Sequence[str],
    ) -> None:
        self._attributes = tuple(attribute_order)
        if not self._attributes:
            raise LatticeError("lattice needs at least one attribute")
        missing = [a for a in self._attributes if a not in hierarchies]
        if missing:
            raise LatticeError(f"no hierarchy for attributes {missing}")
        self._hierarchies = {a: hierarchies[a] for a in self._attributes}
        self._max_levels = tuple(
            self._hierarchies[a].max_level for a in self._attributes
        )

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def attributes(self) -> tuple[str, ...]:
        """Attribute names in node-vector order."""
        return self._attributes

    @property
    def hierarchies(self) -> dict[str, Hierarchy]:
        """The attribute hierarchies (shared, not copied)."""
        return dict(self._hierarchies)

    @property
    def bottom(self) -> Node:
        """The identity node (no generalization)."""
        return (0,) * len(self._attributes)

    @property
    def top(self) -> Node:
        """The all-max node (every attribute fully generalized)."""
        return self._max_levels

    @property
    def size(self) -> int:
        """Total number of nodes."""
        total = 1
        for level in self._max_levels:
            total *= level + 1
        return total

    @property
    def max_height(self) -> int:
        """Height of the top node: ``sum`` of max levels."""
        return sum(self._max_levels)

    def validate(self, node: Sequence[int]) -> Node:
        """Return ``node`` as a tuple, checking dimension and level ranges."""
        node = tuple(node)
        if len(node) != len(self._attributes):
            raise LatticeError(
                f"node {node} has {len(node)} components, lattice has "
                f"{len(self._attributes)} attributes"
            )
        for level, maximum, attribute in zip(
            node, self._max_levels, self._attributes
        ):
            if not 0 <= level <= maximum:
                raise LatticeError(
                    f"level {level} for {attribute!r} outside [0, {maximum}]"
                )
        return node

    def height(self, node: Sequence[int]) -> int:
        """Sum of levels — the standard lattice height of a node."""
        return sum(self.validate(node))

    # ------------------------------------------------------------------
    # Order and traversal
    # ------------------------------------------------------------------
    def is_ancestor_or_equal(self, lower: Sequence[int], upper: Sequence[int]) -> bool:
        """Componentwise ``lower <= upper``: ``upper`` generalizes ``lower``."""
        lo = self.validate(lower)
        up = self.validate(upper)
        return all(a <= b for a, b in zip(lo, up))

    def parents(self, node: Sequence[int]) -> list[Node]:
        """Immediate generalizations: one attribute one level up."""
        node = self.validate(node)
        result = []
        for i, (level, maximum) in enumerate(zip(node, self._max_levels)):
            if level < maximum:
                result.append(node[:i] + (level + 1,) + node[i + 1 :])
        return result

    def children(self, node: Sequence[int]) -> list[Node]:
        """Immediate specializations: one attribute one level down."""
        node = self.validate(node)
        result = []
        for i, level in enumerate(node):
            if level > 0:
                result.append(node[:i] + (level - 1,) + node[i + 1 :])
        return result

    def nodes(self) -> Iterator[Node]:
        """All nodes, in lexicographic order."""
        ranges = [range(m + 1) for m in self._max_levels]
        yield from product(*ranges)

    def nodes_by_height(self) -> Iterator[list[Node]]:
        """Nodes grouped by height, bottom-up — the level-wise (Incognito
        style) traversal order."""
        by_height: dict[int, list[Node]] = {}
        for node in self.nodes():
            by_height.setdefault(sum(node), []).append(node)
        for height in range(self.max_height + 1):
            yield sorted(by_height.get(height, []))

    def minimal_elements(self, nodes: Sequence[Node]) -> list[Node]:
        """The componentwise-minimal elements of a node set."""
        unique = sorted(set(self.validate(n) for n in nodes))
        minimal = []
        for candidate in unique:
            dominated = any(
                other != candidate
                and all(o <= c for o, c in zip(other, candidate))
                for other in unique
            )
            if not dominated:
                minimal.append(candidate)
        return minimal

    def default_chain(self) -> list[Node]:
        """A maximal chain from bottom to top (round-robin level raises) —
        the natural input to binary search (Section 3.4's logarithmic
        search along an order)."""
        chain = [self.bottom]
        current = list(self.bottom)
        while tuple(current) != self.top:
            for i, maximum in enumerate(self._max_levels):
                if current[i] < maximum:
                    current[i] += 1
                    chain.append(tuple(current))
        return chain

    def generalize_value(self, attribute: str, value: Any, node: Sequence[int]) -> Any:
        """Generalize one value of ``attribute`` according to ``node``."""
        node = self.validate(node)
        index = self._attributes.index(attribute)
        return self._hierarchies[attribute].generalize(value, node[index])

    def __repr__(self) -> str:
        dims = " x ".join(str(m + 1) for m in self._max_levels)
        return f"GeneralizationLattice({dims} = {self.size} nodes)"
