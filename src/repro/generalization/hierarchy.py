"""Value-generalization hierarchies (DGHs) for single attributes.

A :class:`Hierarchy` maps an attribute value to its generalized label at each
level: level 0 is the identity, the top level is usually full suppression
(``"*"``). The paper's Adult hierarchies (Section 4) — Age with six levels,
Marital Status with three, Race and Gender with two — are built from the
constructors here (see :mod:`repro.data.hierarchies`).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from typing import Any

from repro.errors import HierarchyError

__all__ = ["Hierarchy", "SUPPRESSED"]

#: Label used for a fully suppressed value.
SUPPRESSED = "*"


class Hierarchy:
    """A per-attribute domain generalization hierarchy.

    Parameters
    ----------
    attribute:
        The attribute name this hierarchy generalizes.
    levels:
        One mapping function per level. ``levels[0]`` must be the identity
        (it is validated lazily: level 0 returns its input unchanged).
        Each function takes a ground value and returns its label at that level.

    Notes
    -----
    For full-domain generalization to be sound, each level must *refine
    consistently*: two values with equal labels at level ``i`` must also have
    equal labels at every level ``j > i``. The provided constructors
    (:meth:`from_intervals`, :meth:`from_grouping`, :meth:`identity_or_suppress`)
    guarantee that by building each level independently of the others from the
    ground value; :meth:`validate_consistency` checks it for a concrete domain.
    """

    __slots__ = ("_attribute", "_levels")

    def __init__(
        self, attribute: str, levels: Iterable[Callable[[Any], Any]]
    ) -> None:
        self._attribute = attribute
        self._levels: tuple[Callable[[Any], Any], ...] = tuple(levels)
        if not self._levels:
            raise HierarchyError(f"hierarchy for {attribute!r} has no levels")

    @property
    def attribute(self) -> str:
        """The attribute this hierarchy applies to."""
        return self._attribute

    @property
    def num_levels(self) -> int:
        """Number of levels including level 0 (identity)."""
        return len(self._levels)

    @property
    def max_level(self) -> int:
        """The coarsest level index."""
        return len(self._levels) - 1

    def generalize(self, value: Any, level: int) -> Any:
        """Return the label of ``value`` at ``level``.

        Raises
        ------
        HierarchyError
            If ``level`` is out of range or the level function fails.
        """
        if not 0 <= level < len(self._levels):
            raise HierarchyError(
                f"{self._attribute}: level {level} out of range "
                f"[0, {self.max_level}]"
            )
        try:
            return self._levels[level](value)
        except Exception as exc:  # pragma: no cover - defensive
            raise HierarchyError(
                f"{self._attribute}: cannot generalize {value!r} at level {level}"
            ) from exc

    def validate_consistency(self, domain: Iterable[Any]) -> None:
        """Check the refinement property over a concrete ``domain``.

        Raises
        ------
        HierarchyError
            If some level merges two values that a coarser level separates,
            or level 0 is not the identity.
        """
        values = list(domain)
        for value in values:
            if self.generalize(value, 0) != value:
                raise HierarchyError(
                    f"{self._attribute}: level 0 must be the identity, "
                    f"maps {value!r} to {self.generalize(value, 0)!r}"
                )
        for level in range(self.max_level):
            labels_now = {}
            for value in values:
                labels_now.setdefault(self.generalize(value, level), set()).add(
                    self.generalize(value, level + 1)
                )
            for label, coarser in labels_now.items():
                if len(coarser) > 1:
                    raise HierarchyError(
                        f"{self._attribute}: level {level} label {label!r} maps "
                        f"to multiple level-{level + 1} labels {sorted(map(repr, coarser))}"
                    )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_intervals(
        cls,
        attribute: str,
        widths: Iterable[int],
        *,
        origin: int = 0,
        suppress_top: bool = True,
    ) -> "Hierarchy":
        """Numeric hierarchy: level 0 identity, then one level per interval
        width, optionally topped with full suppression.

        A value ``v`` at a width-``w`` level becomes the label
        ``"[lo-hi]"`` where ``lo = origin + w * floor((v - origin)/w)``.

        Examples
        --------
        >>> h = Hierarchy.from_intervals("age", [5, 10], origin=0)
        >>> h.generalize(23, 1)
        '[20-24]'
        >>> h.generalize(23, 2)
        '[20-29]'
        >>> h.generalize(23, 3)
        '*'
        """
        widths = list(widths)
        if any(w <= 0 for w in widths):
            raise HierarchyError(f"{attribute}: interval widths must be positive")
        if sorted(widths) != widths:
            raise HierarchyError(
                f"{attribute}: interval widths must be non-decreasing for "
                "levels to refine consistently"
            )
        for smaller, larger in zip(widths, widths[1:]):
            if larger % smaller != 0:
                raise HierarchyError(
                    f"{attribute}: width {larger} is not a multiple of {smaller}; "
                    "levels would not nest"
                )

        def interval_fn(width: int) -> Callable[[Any], Any]:
            def fn(value: Any) -> str:
                lo = origin + width * ((int(value) - origin) // width)
                return f"[{lo}-{lo + width - 1}]"

            return fn

        levels: list[Callable[[Any], Any]] = [lambda v: v]
        levels.extend(interval_fn(w) for w in widths)
        if suppress_top:
            levels.append(lambda v: SUPPRESSED)
        return cls(attribute, levels)

    @classmethod
    def from_grouping(
        cls,
        attribute: str,
        groupings: Iterable[Mapping[Any, Any]],
        *,
        suppress_top: bool = True,
    ) -> "Hierarchy":
        """Categorical hierarchy: level 0 identity, then one level per mapping
        from *ground value* to group label, optionally topped with suppression.

        Each mapping is applied to the ground value directly (not to the
        previous level's label), which keeps levels consistent as long as each
        successive grouping is coarser.
        """
        tables = [dict(g) for g in groupings]

        def grouping_fn(table: dict) -> Callable[[Any], Any]:
            def fn(value: Any) -> Any:
                if value not in table:
                    raise HierarchyError(
                        f"{attribute}: value {value!r} not covered by grouping"
                    )
                return table[value]

            return fn

        levels: list[Callable[[Any], Any]] = [lambda v: v]
        levels.extend(grouping_fn(t) for t in tables)
        if suppress_top:
            levels.append(lambda v: SUPPRESSED)
        return cls(attribute, levels)

    @classmethod
    def identity_or_suppress(cls, attribute: str) -> "Hierarchy":
        """Two-level hierarchy: keep the value, or suppress it entirely
        (the paper's Race and Gender hierarchies)."""
        return cls(attribute, [lambda v: v, lambda v: SUPPRESSED])

    def __repr__(self) -> str:
        return f"Hierarchy({self._attribute!r}, levels={self.num_levels})"
