"""Apply a lattice node to a table: generalize, then bucketize.

Under full identification information, publishing the generalized table is
equivalent to publishing the bucketization whose buckets are the generalized
QI equivalence classes (Section 2.1); :func:`bucketize_at` produces exactly
that bucketization, which is what all disclosure computations consume.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.bucketization.bucketization import Bucketization
from repro.data.table import Table
from repro.generalization.lattice import GeneralizationLattice

__all__ = ["generalize_table", "bucketize_at"]


def generalize_table(
    table: Table, lattice: GeneralizationLattice, node: Sequence[int]
) -> Table:
    """Return ``table`` with every quasi-identifier coarsened to ``node``'s
    levels (the published full-domain generalization)."""
    node = lattice.validate(node)
    if set(lattice.attributes) != set(table.schema.quasi_identifiers):
        raise ValueError(
            "lattice attributes do not match the table's quasi-identifiers"
        )
    return table.map_qi(
        lambda attribute, value: lattice.generalize_value(attribute, value, node)
    )


def bucketize_at(
    table: Table, lattice: GeneralizationLattice, node: Sequence[int]
) -> Bucketization:
    """Bucketization induced by generalizing ``table`` to ``node``: one bucket
    per generalized-QI equivalence class.

    This is the object the (c,k)-safety check takes; it avoids materializing
    the generalized table.
    """
    node = lattice.validate(node)
    schema = table.schema

    # Generalize each distinct ground value once per attribute (ages repeat
    # tens of thousands of times in the Adult data); the per-record key is
    # then pure dict lookups.
    attributes = schema.quasi_identifiers
    mappings = []
    for attribute in attributes:
        mapping = {
            value: lattice.generalize_value(attribute, value, node)
            for value in table.distinct(attribute)
        }
        mappings.append(mapping)

    def key(record: dict) -> tuple:
        return tuple(
            mapping[record[attribute]]
            for attribute, mapping in zip(attributes, mappings)
        )

    return Bucketization.from_table(table, key=key)
