"""Multi-phase Incognito search, adapted to (c,k)-safety (Section 3.4).

The paper: "we can modify the Incognito [LeFevre et al.] algorithm, which
finds all the minimal k-anonymous bucketizations, by simply replacing the
check for k-anonymity with the check for (c,k)-safety." This module performs
that modification faithfully — including Incognito's defining *subset
phases*, not just the final lattice sweep.

Why subset pruning is sound for (c,k)-safety: projecting the grouping onto a
subset of the quasi-identifiers merges buckets, i.e. moves **up** the paper's
partial order, so by Theorem 14 the projection's maximum disclosure is a
lower bound on the full grouping's. Contrapositive: if a node is already
unsafe on a *subset* of the attributes (at the same per-attribute levels),
every full node extending it is unsafe and need never be evaluated. This is
the same generalization/rollup property Incognito exploits for k-anonymity,
with the direction supplied by Theorem 14.

Phases run over attribute subsets of increasing size; each phase does a
bottom-up sweep of its sub-lattice with two prunings:

- **safe-ancestor** (within the phase): a node with a safe child is safe;
- **unsafe-projection** (across phases): a node whose (m-1)-attribute
  projection was unsafe is unsafe.

The final phase's evaluated-safe nodes are exactly the minimal (c,k)-safe
full-domain generalizations; :func:`incognito_minimal_safe_nodes` returns
them together with phase-by-phase statistics so the benchmark suite can
compare against the single-phase sweep of
:func:`repro.generalization.search.find_minimal_safe_nodes`.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from itertools import combinations

from repro.bucketization.bucketization import Bucketization
from repro.data.table import Table
from repro.generalization.lattice import GeneralizationLattice, Node

__all__ = ["IncognitoStats", "PhaseStats", "incognito_minimal_safe_nodes"]


@dataclass
class PhaseStats:
    """Statistics for one attribute subset's sweep."""

    attributes: tuple[str, ...]
    nodes: int = 0
    evaluated: int = 0
    pruned_safe_ancestor: int = 0
    pruned_unsafe_projection: int = 0


@dataclass
class IncognitoStats:
    """Aggregate statistics across all phases.

    ``evaluated`` counts actual safety-predicate evaluations — the expensive
    operation the multi-phase structure exists to minimize on the full
    lattice (the last phase).
    """

    phases: list[PhaseStats] = field(default_factory=list)

    @property
    def evaluated(self) -> int:
        return sum(phase.evaluated for phase in self.phases)

    @property
    def final_phase_evaluated(self) -> int:
        return self.phases[-1].evaluated if self.phases else 0


def _project(node: Node, keep: Sequence[int]) -> Node:
    return tuple(node[i] for i in keep)


def incognito_minimal_safe_nodes(
    table: Table,
    lattice: GeneralizationLattice,
    is_safe: Callable[[Bucketization], bool],
    *,
    stats: IncognitoStats | None = None,
) -> list[Node]:
    """All minimal (c,k)-safe nodes of ``lattice``, by multi-phase Incognito.

    Parameters
    ----------
    is_safe:
        Predicate on bucketizations; must be monotone under bucket merging
        (Theorem 14 provides this for (c,k)-safety, and it also holds for
        k-anonymity and the ℓ-diversity variants).
    stats:
        Optional :class:`IncognitoStats` to fill with per-phase counters.

    Returns
    -------
    list[Node]
        The same node set as
        :func:`repro.generalization.search.find_minimal_safe_nodes`
        (asserted equal in the tests), usually with fewer predicate
        evaluations on the full lattice.
    """
    if stats is None:
        stats = IncognitoStats()
    attributes = lattice.attributes
    hierarchies = lattice.hierarchies
    all_indices = tuple(range(len(attributes)))

    # unsafe[subset-of-indices] = set of level tuples known unsafe there.
    unsafe: dict[tuple[int, ...], set[Node]] = {}
    minimal_full: list[Node] = []

    for size in range(1, len(attributes) + 1):
        for keep in combinations(all_indices, size):
            subset_attrs = tuple(attributes[i] for i in keep)
            sub_lattice = GeneralizationLattice(
                {a: hierarchies[a] for a in subset_attrs}, subset_attrs
            )
            phase = PhaseStats(attributes=subset_attrs, nodes=sub_lattice.size)
            stats.phases.append(phase)

            def bucketize(levels: Node) -> Bucketization:
                def key(record: dict) -> tuple:
                    return tuple(
                        hierarchies[a].generalize(record[a], level)
                        for a, level in zip(subset_attrs, levels)
                    )

                return Bucketization.from_table(table, key=key)

            safe_nodes: list[Node] = []
            evaluated_safe: list[Node] = []
            unsafe_here: set[Node] = set()
            is_final = keep == all_indices

            for level_nodes in sub_lattice.nodes_by_height():
                for node in level_nodes:
                    # Safe-ancestor pruning within the phase.
                    if any(
                        sub_lattice.is_ancestor_or_equal(safe, node)
                        for safe in safe_nodes
                    ):
                        phase.pruned_safe_ancestor += 1
                        continue
                    # Unsafe-projection pruning across phases.
                    projected_unsafe = False
                    if size > 1:
                        for drop in range(size):
                            sub_keep = keep[:drop] + keep[drop + 1 :]
                            projection = node[:drop] + node[drop + 1 :]
                            if projection in unsafe.get(sub_keep, ()):
                                projected_unsafe = True
                                break
                    if projected_unsafe:
                        phase.pruned_unsafe_projection += 1
                        unsafe_here.add(node)
                        continue
                    phase.evaluated += 1
                    if is_safe(bucketize(node)):
                        safe_nodes.append(node)
                        evaluated_safe.append(node)
                    else:
                        unsafe_here.add(node)

            unsafe[keep] = unsafe_here
            if is_final:
                minimal_full = evaluated_safe
    return minimal_full
