"""Full-domain generalization: hierarchies, the lattice, and safe search.

Full-domain generalization (Samarati/Sweeney) coarsens each quasi-identifier
uniformly to one level of its value-generalization hierarchy. A choice of
levels for all quasi-identifiers is a *lattice node*; the set of nodes forms
the generalization lattice that Incognito-style algorithms search. Because
(c,k)-safety is monotone along this lattice (Theorem 14), minimal safe nodes
can be found bottom-up with pruning (:func:`repro.generalization.search.find_minimal_safe_nodes`)
or by binary search on chains (:func:`repro.generalization.search.binary_search_chain`).

``apply`` and ``search`` are imported lazily (PEP 562): they depend on the
bucketization package, which itself needs :class:`Hierarchy` through the data
package — eager imports here would close an import cycle.
"""

from repro.generalization.hierarchy import Hierarchy
from repro.generalization.lattice import GeneralizationLattice

__all__ = [
    "Hierarchy",
    "GeneralizationLattice",
    "generalize_table",
    "bucketize_at",
    "find_minimal_safe_nodes",
    "find_best_safe_node",
    "binary_search_chain",
    "node_safety_predicate",
    "SearchStats",
    "incognito_minimal_safe_nodes",
    "IncognitoStats",
]

_LAZY = {
    "generalize_table": "repro.generalization.apply",
    "bucketize_at": "repro.generalization.apply",
    "find_minimal_safe_nodes": "repro.generalization.search",
    "find_best_safe_node": "repro.generalization.search",
    "binary_search_chain": "repro.generalization.search",
    "node_safety_predicate": "repro.generalization.search",
    "SearchStats": "repro.generalization.search",
    "incognito_minimal_safe_nodes": "repro.generalization.incognito",
    "IncognitoStats": "repro.generalization.incognito",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
