"""Command-line interface: ``repro-wcbk`` (or ``python -m repro.cli``).

Subcommands
-----------
``generate``
    Write the synthetic Adult projection to a CSV.
``fig5`` / ``fig6``
    Reproduce the paper's evaluation figures and print their data series.
``disclosure``
    Maximum disclosure of one anonymization (by default both the implication
    and negation adversaries; ``--adversary`` selects any registered model).
``search``
    Find all minimal (c,k)-safe lattice nodes and the best one by precision.
``witness``
    Print a concrete worst-case formula for an anonymization.
``breach``
    Minimum attacker power k whose worst case reaches a disclosure level.
``estimate``
    Monte Carlo estimate of Pr(atom | B and formula) for a *given* formula
    (the #P-hard quantity of Theorem 8), with the formula written in the
    text syntax of :mod:`repro.knowledge.parser`.
``publish``
    Check and record the next version of a named table through the
    sequential republication engine
    (:class:`repro.publish.engine.RepublicationEngine`): the paper's
    (c,k)-safety per distinct bucket signature, incremental against the
    prior accepted release in the ledger, plus the cross-release
    composition check. Prints the JSON verdict; exit 0 = accepted,
    1 = rejected.
``serve``
    Run the JSON-over-HTTP disclosure service
    (:class:`repro.service.server.DisclosureService`): long-lived engines in
    both arithmetic modes, keep-alive connections, request coalescing, cache
    persistence across restarts, graceful SIGTERM shutdown. With
    ``--shards N`` (N >= 2) it instead runs the sharded tier
    (:class:`repro.service.router.ShardRouter`): N child service shards —
    subprocesses or embedded in the router, per ``--shard-mode`` — behind
    a plane-key hash router with restart-and-replay supervision and one
    persisted cache file pair per shard.

Every command accepts ``--rows``/``--seed`` to control the synthetic dataset
or ``--csv`` to use a file produced by ``generate`` (or the real Adult data
converted with :func:`repro.data.loader.load_adult_file`). The disclosure
analysis commands (``disclosure``, ``search``, ``breach``, ``witness``)
accept ``--adversary`` with any model name from the engine registry
(:func:`repro.engine.base.available_adversaries`). ``disclosure``,
``search``, ``fig5`` and ``fig6`` additionally take the engine knobs
``--workers`` (worker count for batch evaluation), ``--backend``
(``serial`` / ``pool`` / ``persistent`` execution backend), ``--kernel``
(``auto`` / ``numpy`` / ``scalar`` MINIMIZE1/MINIMIZE2 kernel for the float
path) and ``--cache-limit`` (LRU bound on the shared cache); ``disclosure
--cache-stats`` prints the cache's hit/parallel-hit/miss/eviction counters
and the active kernel.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.core.kernel import KERNELS
from repro.core.negation import NegationWitness
from repro.core.safety import SafetyChecker
from repro.core.sampling import sample_probability
from repro.core.witness import WorstCaseWitness
from repro.engine import (
    CachePolicy,
    DisclosureEngine,
    available_adversaries,
    available_backends,
)
from repro.knowledge.parser import parse_atom, parse_conjunction
from repro.data.adult import ADULT_SCHEMA, ADULT_SIZE
from repro.data.hierarchies import adult_hierarchies
from repro.data.loader import load_csv, save_csv
from repro.data.table import Table
from repro.errors import ReproError
from repro.experiments.fig5 import FIG5_NODE, run_figure5
from repro.experiments.fig6 import run_figure6
from repro.experiments.runner import (
    default_adult_table,
    figure5_csv,
    figure6_csv,
    render_figure5,
    render_figure6,
)
from repro.generalization.apply import bucketize_at
from repro.generalization.lattice import GeneralizationLattice
from repro.generalization.search import SearchStats
from repro.utility.metrics import precision

__all__ = ["main", "build_parser"]


def _add_dataset_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--rows",
        type=int,
        default=ADULT_SIZE,
        help=f"synthetic dataset size (default {ADULT_SIZE})",
    )
    parser.add_argument(
        "--seed", type=int, default=20070419, help="synthetic dataset seed"
    )
    parser.add_argument(
        "--csv", type=str, default=None, help="load this CSV instead of generating"
    )


def _add_adversary_option(
    parser: argparse.ArgumentParser, *, default: str = "implication"
) -> None:
    parser.add_argument(
        "--adversary",
        choices=available_adversaries(),
        default=default,
        help=f"background-knowledge model (default {default})",
    )


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}"
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value}"
        )
    return value


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help=(
            "process-pool size for batch disclosure evaluation; parallelizes "
            "multi-node sweeps (search, fig6), no effect on single-node "
            "commands (1 = serial)"
        ),
    )
    parser.add_argument(
        "--cache-limit",
        type=_positive_int,
        default=None,
        metavar="N",
        help="bound the engine's shared cache to N entries (LRU eviction)",
    )
    parser.add_argument(
        "--backend",
        choices=available_backends(),
        default="pool",
        help=(
            "execution backend for batch evaluation: 'serial' never spawns "
            "processes, 'pool' starts a fresh process pool per batch, "
            "'persistent' keeps long-lived workers that receive only "
            "newly seen signatures per batch (default pool)"
        ),
    )
    parser.add_argument(
        "--kernel",
        choices=KERNELS,
        default="auto",
        help=(
            "MINIMIZE1/MINIMIZE2 kernel for the float path: 'numpy' is the "
            "vectorized kernel (bit-identical to 'scalar'), 'auto' picks it "
            "when numpy is installed; exact mode always runs scalar "
            "(default auto)"
        ),
    )


def _build_engine(args: argparse.Namespace) -> DisclosureEngine:
    """One engine per command, configured from the shared engine flags.

    Commands use the engine as a context manager so a persistent backend's
    worker processes are shut down before exit.
    """
    policy = CachePolicy(max_entries=getattr(args, "cache_limit", None))
    return DisclosureEngine(
        policy=policy,
        workers=getattr(args, "workers", 1),
        backend=getattr(args, "backend", "pool"),
        kernel=getattr(args, "kernel", "auto"),
    )


def _print_cache_stats(engine: DisclosureEngine) -> None:
    stats = engine.stats
    print(
        f"cache: {engine.cache_size()} entries, {stats.cache_hits} hits / "
        f"{stats.parallel_hits} parallel hits / {stats.misses} misses "
        f"(hit rate {stats.hit_rate:.2%}), {stats.evictions} evictions, "
        f"kernel {stats.kernel}"
    )


def _parse_node(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(part) for part in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"node must be comma-separated integers, got {text!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and shell completion)."""
    parser = argparse.ArgumentParser(
        prog="repro-wcbk",
        description=(
            "Worst-case background knowledge for privacy-preserving data "
            "publishing (ICDE 2007) — reproduction toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser("generate", help="write the synthetic Adult CSV")
    p_gen.add_argument("--out", required=True, help="output CSV path")
    p_gen.add_argument("--rows", type=int, default=ADULT_SIZE)
    p_gen.add_argument("--seed", type=int, default=20070419)

    p_fig5 = sub.add_parser("fig5", help="reproduce Figure 5")
    _add_dataset_options(p_fig5)
    p_fig5.add_argument(
        "--node",
        type=_parse_node,
        default=FIG5_NODE,
        help="lattice node, e.g. 3,2,1,1 (default: the paper's)",
    )
    p_fig5.add_argument(
        "--out", type=str, default=None, help="also write the series as CSV"
    )
    _add_engine_options(p_fig5)

    p_fig6 = sub.add_parser("fig6", help="reproduce Figure 6")
    _add_dataset_options(p_fig6)
    p_fig6.add_argument(
        "--per-node", action="store_true", help="also print the raw node sweep"
    )
    p_fig6.add_argument(
        "--out", type=str, default=None, help="also write the envelopes as CSV"
    )
    _add_engine_options(p_fig6)

    p_disc = sub.add_parser(
        "disclosure", help="max disclosure of one anonymization"
    )
    _add_dataset_options(p_disc)
    p_disc.add_argument("--node", type=_parse_node, default=FIG5_NODE)
    p_disc.add_argument("--k", type=int, default=3, help="attacker power")
    p_disc.add_argument(
        "--adversary",
        choices=available_adversaries(),
        default=None,
        help="report a single model (default: both implication and negation)",
    )
    p_disc.add_argument(
        "--cache-stats",
        action="store_true",
        help="print engine cache behavior (hits/misses/evictions)",
    )
    _add_engine_options(p_disc)

    p_search = sub.add_parser(
        "search", help="find minimal (c,k)-safe lattice nodes"
    )
    _add_dataset_options(p_search)
    p_search.add_argument("--c", type=float, default=0.7, help="threshold")
    p_search.add_argument("--k", type=int, default=3, help="attacker power")
    p_search.add_argument(
        "--incognito",
        action="store_true",
        help="use the multi-phase Incognito search (subset pruning)",
    )
    _add_adversary_option(p_search)
    _add_engine_options(p_search)

    p_wit = sub.add_parser(
        "witness", help="print a worst-case formula for an anonymization"
    )
    _add_dataset_options(p_wit)
    p_wit.add_argument("--node", type=_parse_node, default=FIG5_NODE)
    p_wit.add_argument("--k", type=int, default=2, help="attacker power")
    _add_adversary_option(p_wit)

    p_breach = sub.add_parser(
        "breach", help="min attacker power reaching a disclosure level"
    )
    _add_dataset_options(p_breach)
    p_breach.add_argument("--node", type=_parse_node, default=FIG5_NODE)
    p_breach.add_argument(
        "--level", type=float, default=1.0, help="disclosure level to reach"
    )
    _add_adversary_option(p_breach)

    p_est = sub.add_parser(
        "estimate",
        help="Monte Carlo Pr(atom | B and formula) for a given formula",
    )
    _add_dataset_options(p_est)
    p_est.add_argument("--node", type=_parse_node, default=FIG5_NODE)
    p_est.add_argument(
        "--atom", required=True, help="target, e.g. 't[17] = Sales'"
    )
    p_est.add_argument(
        "--formula",
        default="",
        help="';'-joined implications, e.g. 't[3] = Sales -> t[17] = Sales'",
    )
    p_est.add_argument("--samples", type=int, default=20000)
    p_est.add_argument("--sample-seed", type=int, default=0)

    p_pub = sub.add_parser(
        "publish",
        help="check + record the next version of a table (release ledger)",
    )
    p_pub.add_argument(
        "table", help="table name (the ledger key, e.g. 'census')"
    )
    p_pub.add_argument(
        "--buckets",
        required=True,
        metavar="FILE",
        help="JSON file: a list of per-bucket sensitive-value lists",
    )
    p_pub.add_argument(
        "--c",
        required=True,
        help="safety threshold input (decimal like 0.9, or exact like 9/10)",
    )
    p_pub.add_argument("--k", type=int, default=1, help="attacker power")
    p_pub.add_argument(
        "--model",
        choices=available_adversaries(),
        default="implication",
        help="background-knowledge model (default implication)",
    )
    p_pub.add_argument(
        "--params",
        default=None,
        metavar="JSON",
        help='model parameters as a JSON object, e.g. \'{"weight": 2}\'',
    )
    p_pub.add_argument(
        "--exact",
        action="store_true",
        help="exact rational arithmetic (default: float)",
    )
    p_pub.add_argument(
        "--ledger-file",
        default=None,
        metavar="PATH",
        help=(
            "SQLite release ledger; versions accumulate across invocations "
            "(default: in-memory, i.e. a one-shot v1 check)"
        ),
    )
    p_pub.add_argument(
        "--tenant", default="", help="ledger tenant namespace (default none)"
    )
    p_pub.add_argument(
        "--full",
        action="store_true",
        help="force a from-scratch re-check (ignore reusable ledger values)",
    )
    p_pub.add_argument(
        "--witness",
        action="store_true",
        help="attach a worst-case formula to each violation",
    )

    p_serve = sub.add_parser(
        "serve", help="run the JSON-over-HTTP disclosure service"
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    p_serve.add_argument(
        "--port",
        type=int,
        default=8707,
        help="bind port; 0 picks an ephemeral port (default 8707)",
    )
    p_serve.add_argument(
        "--cache-file",
        default=None,
        metavar="PREFIX",
        help=(
            "persist engine caches across restarts: loads "
            "PREFIX.float.pkl / PREFIX.exact.pkl on boot (when present) "
            "and writes them back on shutdown"
        ),
    )
    p_serve.add_argument(
        "--ledger-file",
        default=None,
        metavar="PATH",
        help=(
            "persist the release ledger (POST /publish history) to this "
            "SQLite file; with --shards N each shard gets "
            "PATH.shard<i>.sqlite (default: in-memory, lost on shutdown)"
        ),
    )
    p_serve.add_argument(
        "--batch-window",
        type=float,
        default=0.002,
        metavar="SECONDS",
        help=(
            "how long the coalescer waits after the first pending single "
            "request before batching (default 0.002)"
        ),
    )
    p_serve.add_argument(
        "--shards",
        type=_positive_int,
        default=1,
        metavar="N",
        help=(
            "run N service shards behind a plane-key hash router "
            "(cache-affinity routing, restart-and-replay supervision, "
            "per-shard cache files); 1 = a single in-process service "
            "(default 1)"
        ),
    )
    p_serve.add_argument(
        "--shard-mode",
        choices=("auto", "process", "inproc"),
        default="auto",
        help=(
            "how --shards N shards run: 'process' = one subprocess per "
            "shard (the multi-core topology), 'inproc' = shards embedded "
            "in the router process (no socket hop; right when cores <= "
            "shards), 'auto' = process only when this host has more cores "
            "than shards (default auto)"
        ),
    )
    p_serve.add_argument(
        "--max-connections",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "cap concurrently open client connections (503 beyond the cap; "
            "default unbounded)"
        ),
    )
    p_serve.add_argument(
        "--tenants",
        default=None,
        metavar="FILE",
        help=(
            "serve multiple tenants from one process: FILE is a JSON "
            'object {tenant: {"model": name, "params": {...}}} giving '
            "each tenant its default threat model; every tenant gets its "
            "own engines, /stats counters and cache files "
            "(PREFIX.<tenant>[.shard<i>].<mode>.pkl); validated at boot"
        ),
    )
    _add_engine_options(p_serve)
    # A service is the persistent backend's home workload — but the backend
    # only engages when workers > 1 (the engine's serial path wins
    # otherwise), so serve's defaults enable both together.
    p_serve.set_defaults(backend="persistent", workers=2)

    p_lint = sub.add_parser(
        "lint",
        help="run the invariant linter (REP001-REP005) over the tree",
    )
    p_lint.add_argument(
        "--root",
        default=".",
        help="project root to scan (default: current directory)",
    )
    p_lint.add_argument(
        "--rules",
        nargs="+",
        metavar="RULE",
        default=None,
        help="run only these rule ids (default: all registered rules)",
    )
    p_lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="output_format",
        help="report format (default text)",
    )
    p_lint.add_argument(
        "--baseline",
        default="lint-baseline.json",
        metavar="PATH",
        help=(
            "baseline file of grandfathered findings, relative to --root "
            "(default lint-baseline.json; missing file = empty baseline)"
        ),
    )
    p_lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report every finding as active",
    )
    p_lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the baseline from the current findings and exit 0",
    )
    p_lint.add_argument(
        "--verbose",
        action="store_true",
        help="also list baselined findings in the text report",
    )

    return parser


def _load_table(args: argparse.Namespace) -> Table:
    if args.csv:
        return load_csv(args.csv, ADULT_SCHEMA)
    return default_adult_table(args.rows, args.seed)


def _adult_lattice() -> GeneralizationLattice:
    return GeneralizationLattice(
        adult_hierarchies(), ADULT_SCHEMA.quasi_identifiers
    )


def _cmd_generate(args: argparse.Namespace) -> int:
    table = default_adult_table(args.rows, args.seed)
    save_csv(table, args.out)
    print(f"wrote {len(table)} rows to {args.out}")
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    with _build_engine(args) as engine:
        result = run_figure5(_load_table(args), node=args.node, engine=engine)
    print(render_figure5(result))
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(figure5_csv(result))
        print(f"series written to {args.out}")
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    with _build_engine(args) as engine:
        result = run_figure6(
            _load_table(args), engine=engine, workers=args.workers
        )
    print(render_figure6(result, per_node=args.per_node))
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(figure6_csv(result))
        print(f"envelopes written to {args.out}")
    return 0


def _cmd_disclosure(args: argparse.Namespace) -> int:
    table = _load_table(args)
    bucketization = bucketize_at(table, _adult_lattice(), args.node)
    with _build_engine(args) as engine:
        print(f"node {tuple(args.node)}: {len(bucketization)} buckets")
        if args.adversary is None:
            comparison = engine.compare(
                bucketization, [args.k], models=("implication", "negation")
            )
            implication = comparison["implication"][args.k]
            negation = comparison["negation"][args.k]
            print(f"max disclosure, {args.k} implications : {implication:.6f}")
            print(f"max disclosure, {args.k} negations    : {negation:.6f}")
            print(f"kernel: {engine.kernel}")
        else:
            value = engine.evaluate(bucketization, args.k, model=args.adversary)
            print(
                f"max disclosure, {args.adversary} adversary, k={args.k} : "
                f"{float(value):.6f}"
            )
        if args.cache_stats:
            _print_cache_stats(engine)
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    table = _load_table(args)
    lattice = _adult_lattice()
    with _build_engine(args) as engine:
        return _run_search(args, table, lattice, engine)


def _run_search(args, table, lattice, engine: DisclosureEngine) -> int:
    checker = SafetyChecker(args.c, args.k, model=args.adversary, engine=engine)
    if not checker.model.monotone:
        print(
            f"warning: the {checker.model.name!r} adversary is not monotone "
            f"under generalization; pruning may misreport minimal nodes",
            file=sys.stderr,
        )
    if args.incognito:
        from repro.generalization.incognito import (
            IncognitoStats,
            incognito_minimal_safe_nodes,
        )

        incognito_stats = IncognitoStats()
        minimal = sorted(
            incognito_minimal_safe_nodes(
                table, lattice, checker.is_safe, stats=incognito_stats
            )
        )
        print(
            f"(c={args.c}, k={args.k})-safety [{args.adversary}] via "
            f"multi-phase Incognito: {len(minimal)} minimal safe node(s); "
            f"{incognito_stats.final_phase_evaluated} full-lattice checks "
            f"({incognito_stats.evaluated} incl. subset phases)"
        )
    else:
        stats = SearchStats()
        # The engine search: signature-memoized predicate, plus a parallel
        # prewarm of every node's disclosure when --workers > 1 (the pruned
        # sweep then runs on pure cache hits).
        minimal = engine.find_minimal_safe_nodes(
            table,
            lattice,
            args.c,
            args.k,
            model=args.adversary,
            stats=stats,
            workers=args.workers,
        )
        print(
            f"(c={args.c}, k={args.k})-safety [{args.adversary}]: "
            f"{len(minimal)} minimal safe "
            f"node(s); {stats.predicate_checks} checks, {stats.pruned} pruned "
            f"of {stats.nodes_total} nodes"
        )
    if not minimal:
        print("no safe node exists in this lattice", file=sys.stderr)
        return 1
    for node in minimal:
        disclosure = checker.disclosure(bucketize_at(table, lattice, node))
        print(
            f"  node {node}  disclosure={disclosure:.6f}  "
            f"precision={precision(lattice, node):.4f}"
        )
    best = max(minimal, key=lambda node: precision(lattice, node))
    print(f"best by precision: {best}")
    return 0


def _cmd_witness(args: argparse.Namespace) -> int:
    table = _load_table(args)
    bucketization = bucketize_at(table, _adult_lattice(), args.node)
    engine = DisclosureEngine()
    try:
        witness = engine.witness(bucketization, args.k, model=args.adversary)
    except NotImplementedError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if isinstance(witness, WorstCaseWitness):
        print(
            f"disclosure {witness.disclosure:.6f} via consequent "
            f"{witness.consequent}"
        )
        for implication in witness.implications:
            print(f"  {implication}")
    elif isinstance(witness, NegationWitness):
        print(
            f"disclosure {witness.disclosure:.6f} via target "
            f"t[{witness.person}] = {witness.target_value} "
            f"(bucket {witness.bucket_index})"
        )
        for value in witness.negated_values:
            print(f"  NOT t[{witness.person}] = {value}")
    else:  # future plugins: rely on the uniform `disclosure` attribute
        print(f"disclosure {float(witness.disclosure):.6f}")
        print(f"  {witness}")
    return 0


def _cmd_breach(args: argparse.Namespace) -> int:
    table = _load_table(args)
    bucketization = bucketize_at(table, _adult_lattice(), args.node)
    engine = DisclosureEngine()
    k = engine.min_k_to_breach(bucketization, args.level, model=args.adversary)
    pieces = {
        "implication": "basic implication(s)",
        "negation": "negated atom(s)",
    }.get(args.adversary, f"piece(s) of {args.adversary} knowledge")
    print(
        f"node {tuple(args.node)}: {k} {pieces} suffice to reach "
        f"disclosure >= {args.level}"
    )
    return 0


def _coerce_person(atom):
    """Person ids in generated tables are integer row indices; parsed atoms
    carry strings. Coerce when the text is an integer literal."""
    from repro.knowledge.atoms import Atom

    try:
        return Atom(int(atom.person), atom.value)
    except (TypeError, ValueError):
        return atom


def _cmd_estimate(args: argparse.Namespace) -> int:
    from repro.knowledge.formulas import BasicImplication, Conjunction

    table = _load_table(args)
    bucketization = bucketize_at(table, _adult_lattice(), args.node)
    atom = _coerce_person(parse_atom(args.atom))
    phi = parse_conjunction(args.formula)
    phi = Conjunction(
        tuple(
            BasicImplication(
                antecedents=tuple(_coerce_person(a) for a in imp.antecedents),
                consequents=tuple(_coerce_person(b) for b in imp.consequents),
            )
            for imp in phi.implications
        )
    )
    result = sample_probability(
        bucketization,
        atom,
        phi if phi.k else None,
        samples=args.samples,
        seed=args.sample_seed,
    )
    print(
        f"Pr({atom} | B{' and ' + str(phi) if phi.k else ''}) "
        f"~ {result.estimate:.4f}  "
        f"(95% CI [{result.low:.4f}, {result.high:.4f}], "
        f"{result.accepted}/{result.samples} worlds accepted)"
    )
    return 0


def _cmd_publish(args: argparse.Namespace) -> int:
    import json
    from fractions import Fraction

    from repro.publish import ReleaseLedger, RepublicationEngine
    from repro.service.wire import bucketization_from_payload

    with open(args.buckets) as handle:
        payload = json.load(handle)
    # Accept the endpoint's envelope form ({"buckets": [...]}) as well as
    # a bare list of value lists, so a /publish request body works as-is.
    if isinstance(payload, dict) and "buckets" in payload:
        payload = payload["buckets"]
    bucketization = bucketization_from_payload(payload)
    try:
        c = Fraction(args.c)
    except (ValueError, ZeroDivisionError):
        raise ValueError(
            f"--c must be a decimal or a fraction, got {args.c!r}"
        ) from None
    if not args.exact:
        c = float(c)
    params = json.loads(args.params) if args.params else None
    if params is not None and not isinstance(params, dict):
        raise ValueError("--params must be a JSON object")
    engine = DisclosureEngine(exact=args.exact)
    with ReleaseLedger(args.ledger_file or ":memory:") as ledger:
        republisher = RepublicationEngine(engine, ledger, tenant=args.tenant)
        verdict = republisher.publish(
            args.table,
            bucketization,
            c=c,
            k=args.k,
            model=args.model,
            params=params,
            full=args.full,
            with_witness=args.witness,
        )
    print(json.dumps(verdict, indent=2, sort_keys=True))
    return 0 if verdict["accepted"] else 1


async def _serve_until_signalled(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    if args.shards > 1:
        from repro.service.router import ShardRouter

        service = ShardRouter(
            host=args.host,
            port=args.port,
            shards=args.shards,
            shard_mode=args.shard_mode,
            backend=args.backend,
            workers=args.workers,
            kernel=args.kernel,
            cache_limit=args.cache_limit,
            cache_path=args.cache_file,
            batch_window=args.batch_window,
            max_connections=args.max_connections,
            tenants=args.tenants,
            ledger_file=args.ledger_file,
        )
    else:
        from repro.service.server import DisclosureService

        service = DisclosureService(
            host=args.host,
            port=args.port,
            backend=args.backend,
            workers=args.workers,
            kernel=args.kernel,
            cache_limit=args.cache_limit,
            cache_path=args.cache_file,
            batch_window=args.batch_window,
            max_connections=args.max_connections,
            tenants=args.tenants,
            ledger_file=args.ledger_file,
        )
    # Handlers go in BEFORE the port line is printed: a supervisor (the
    # shard router, a test harness) treats the port line as "booted" and
    # may SIGTERM immediately — which must always mean a graceful,
    # cache-saving shutdown, never the default handler.
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # non-Unix event loops
            signal.signal(signum, lambda *_: stop.set())

    await service.start()
    # The port line goes out first (and flushed) so wrappers binding
    # --port 0 can read the ephemeral port back.
    print(f"serving on http://{service.host}:{service.port}", flush=True)
    if args.shards > 1:
        if service.shard_mode == "inproc":
            print(
                f"router: {args.shards} in-process shards; "
                f"backend={args.backend}, workers={args.workers} per shard",
                flush=True,
            )
        else:
            ports = [shard.port for shard in service.shards]
            print(
                f"router: {args.shards} shards on ports {ports}; "
                f"backend={args.backend}, workers={args.workers} per shard",
                flush=True,
            )
    else:
        loaded = service.loaded_entries
        print(
            f"cache: loaded {loaded['float']} float / {loaded['exact']} exact "
            f"entries; backend={args.backend}, workers={args.workers}",
            flush=True,
        )

    await stop.wait()
    print("shutting down...", flush=True)
    await service.stop()
    if args.shards > 1:
        if args.cache_file is not None:
            print(
                f"cache: each shard saved to "
                f"{args.cache_file}.shard<i>.*.pkl",
                flush=True,
            )
    elif args.cache_file is not None:
        saved = service.saved_entries
        print(
            f"cache: saved {saved['float']} float / {saved['exact']} exact "
            f"entries to {args.cache_file}.*.pkl",
            flush=True,
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    try:
        return asyncio.run(_serve_until_signalled(args))
    except KeyboardInterrupt:  # Ctrl-C before the handler was installed
        return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    # Imported lazily: the analysis framework is a dev/CI tool and should
    # add nothing to the cost of the numeric commands.
    from pathlib import Path

    from repro.analysis import (
        Baseline,
        Project,
        get_rules,
        render_json,
        render_text,
        run_rules,
    )

    root = Path(args.root).resolve()
    if not root.is_dir():
        raise ValueError(f"--root {args.root!r} is not a directory")
    project = Project(root)
    rules = get_rules(args.rules)
    baseline_path = root / args.baseline
    if args.write_baseline:
        findings, _ = run_rules(project, rules, baseline=None)
        Baseline.from_findings(findings).save(baseline_path)
        print(
            f"wrote {len(findings)} grandfathered finding(s) to "
            f"{baseline_path}"
        )
        return 0
    baseline = None
    if not args.no_baseline and baseline_path.is_file():
        baseline = Baseline.load(baseline_path)
    active, baselined = run_rules(project, rules, baseline=baseline)
    if args.output_format == "json":
        print(render_json(active, baselined))
    else:
        print(render_text(active, baselined, verbose=args.verbose))
    return 1 if active else 0


_COMMANDS = {
    "generate": _cmd_generate,
    "fig5": _cmd_fig5,
    "fig6": _cmd_fig6,
    "disclosure": _cmd_disclosure,
    "search": _cmd_search,
    "witness": _cmd_witness,
    "breach": _cmd_breach,
    "estimate": _cmd_estimate,
    "publish": _cmd_publish,
    "serve": _cmd_serve,
    "lint": _cmd_lint,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ReproError, ValueError, ModuleNotFoundError) as exc:
        # Library errors (no safe node, oracle guard tripped by an
        # oracle-only adversary, inconsistent knowledge), argument
        # validation, and a missing optional dependency (numpy for the
        # synthetic Adult generator) all surface as one clean diagnostic.
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
