"""The serving layer: the engine's request/response workload as a process.

PR 3 built the pieces a long-running service needs — a bounded LRU cache
with :meth:`~repro.engine.engine.DisclosureEngine.save_cache` /
``load_cache`` persistence, and execution backends whose lifecycle
(``PersistentBackend(idle_timeout=...)``, ``engine.close()``) matches a
server's. This package is that server:

- :mod:`repro.service.wire` — the JSON wire format (lossless in both
  arithmetic modes: floats as JSON numbers, Fractions as ``"num/den"``).
- :mod:`repro.service.server` — :class:`DisclosureService`, a stdlib-only
  asyncio HTTP server with request coalescing (concurrent singles become
  one ``evaluate_many`` batch on the signature plane), graceful
  load-cache/save-cache lifecycle, and :class:`BackgroundService` for
  in-process embedding.
- :mod:`repro.service.client` — :class:`ServiceClient`, the blocking
  stdlib client whose answers are bit-identical to direct engine calls.

Start one with ``repro serve`` (see the CLI) or embed it::

    from repro.service import BackgroundService

    with BackgroundService(backend="persistent", workers=4) as bg:
        client = bg.client()
        client.disclosure(bucketization, k=3, model="negation")
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.server import (
    BackgroundService,
    DisclosureService,
    ServiceStats,
)
from repro.service.wire import (
    bucket_lists,
    bucketization_from_payload,
    decode_series,
    decode_value,
    encode_series,
    encode_value,
)

__all__ = [
    "DisclosureService",
    "BackgroundService",
    "ServiceStats",
    "ServiceClient",
    "ServiceError",
    "encode_value",
    "decode_value",
    "encode_series",
    "decode_series",
    "bucket_lists",
    "bucketization_from_payload",
]
