"""The serving layer: the engine's request/response workload as a process.

PR 3 built the pieces a long-running service needs — a bounded LRU cache
with :meth:`~repro.engine.engine.DisclosureEngine.save_cache` /
``load_cache`` persistence, and execution backends whose lifecycle
(``PersistentBackend(idle_timeout=...)``, ``engine.close()``) matches a
server's. This package is that server, and its horizontal scaling tier:

- :mod:`repro.service.wire` — the JSON wire format (lossless in both
  arithmetic modes: floats as JSON numbers, Fractions as ``"num/den"``;
  non-finite floats are rejected at encode time).
- :mod:`repro.service.httpbase` — the shared keep-alive HTTP/1.1 dialect:
  per-connection request loops, read timeouts, connection caps.
- :mod:`repro.service.server` — :class:`DisclosureService`, a stdlib-only
  asyncio HTTP server with request coalescing (concurrent singles become
  one ``evaluate_many`` batch on the signature plane), graceful
  load-cache/save-cache lifecycle, and :class:`BackgroundService` for
  in-process embedding.
- :mod:`repro.service.router` — :class:`ShardRouter`, N supervised
  service shards behind a plane-key hash router (cache-affinity routing
  with a zero-reparse byte memo, lossless batch split/merge, upstream
  coalescing, restart-and-replay, aggregated stats). Shards run as
  subprocesses or embedded in the router process
  (``shard_mode="process"/"inproc"/"auto"``), plus
  :class:`BackgroundRouter`.
- :mod:`repro.service.client` — :class:`ServiceClient`, the blocking
  stdlib client with a bounded keep-alive connection pool whose answers
  are bit-identical to direct engine calls.

Start one with ``repro serve`` (``--shards N`` for the sharded topology)
or embed it::

    from repro.service import BackgroundRouter, BackgroundService

    with BackgroundService(backend="persistent", workers=4) as bg:
        client = bg.client()
        client.disclosure(bucketization, k=3, model="negation")

    with BackgroundRouter(shards=3) as bg:
        bg.client().disclosure(bucketization, k=3)  # same bits, 3 processes
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.httpbase import ConnectionStats, JsonHttpServer
from repro.service.router import (
    BackgroundRouter,
    InprocShard,
    ProcessShard,
    RouterStats,
    Shard,
    ShardRouter,
    resolve_shard_mode,
)
from repro.service.server import (
    BackgroundService,
    DisclosureService,
    ServiceStats,
    load_tenants,
)
from repro.service.wire import (
    bucket_lists,
    bucketization_from_payload,
    decode_params,
    decode_series,
    decode_value,
    encode_params,
    encode_series,
    encode_value,
)

__all__ = [
    "DisclosureService",
    "BackgroundService",
    "ServiceStats",
    "load_tenants",
    "ShardRouter",
    "BackgroundRouter",
    "RouterStats",
    "Shard",
    "ProcessShard",
    "InprocShard",
    "resolve_shard_mode",
    "JsonHttpServer",
    "ConnectionStats",
    "ServiceClient",
    "ServiceError",
    "encode_value",
    "decode_value",
    "encode_series",
    "decode_series",
    "encode_params",
    "decode_params",
    "bucket_lists",
    "bucketization_from_payload",
]
