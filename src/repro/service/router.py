"""Horizontal sharding: N disclosure services behind a plane-key hash router.

One :class:`~repro.service.server.DisclosureService` process is capped by
its single engine thread and by the fact that its plane-keyed cache lives
in one address space. :class:`ShardRouter` is the scale-out tier the
ROADMAP names: it supervises ``N`` child service processes (each a plain
``repro serve`` subprocess with its own engines, coalescer and persisted
cache file) and routes every request by its **plane key** —
``(mode, model, k, signature-multiset)``, exactly the engine's cache key —
so repeated and same-shaped questions always land on the shard that
already has them cached. Cache locality is not best-effort here; it is
the routing invariant.

What the router guarantees:

- **bit-identical answers**: the router never computes; it forwards the
  original request bytes (or, for split batches, a lossless re-encoding)
  and returns the shard's JSON untouched, so a 3-shard deployment answers
  exactly like one engine, in both arithmetic modes.
- **lossless batch split/merge**: a ``/disclosure`` batch is partitioned
  by each bucketization's plane key, the sub-batches run on their shards
  concurrently, and the per-bucketization series are reassembled in the
  original order.
- **supervision**: shards are health-checked; a dead shard is restarted
  and the in-flight request **replayed** on the fresh process (counted in
  ``restarts`` / ``replays``). Shutdown SIGTERMs every shard so each
  persists its own cache under the shared prefix
  (``<prefix>.shard<i>.<mode>.pkl``).
- **aggregated observability**: ``/stats`` merges router counters with
  every shard's ``/stats``; ``/healthz`` reports per-shard liveness.

The router speaks the same keep-alive HTTP dialect as the shards (both
subclass :class:`~repro.service.httpbase.JsonHttpServer`) and keeps a
small keep-alive connection pool **per shard**, so a request costs one
hop, not one handshake. Start one with ``repro serve --shards N`` or
embed :class:`BackgroundRouter` in tests.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import re
import subprocess
import sys
import time
from collections import Counter
from pathlib import Path
from typing import Any

from repro.engine.base import available_adversaries
from repro.service.httpbase import (
    BackgroundHost,
    BadRequest,
    JsonHttpServer,
    Unavailable,
    require,
    require_ks,
)
from repro.service.server import parse_json_body
from repro.service.wire import bucketization_from_payload

__all__ = ["RouterStats", "Shard", "ShardRouter", "BackgroundRouter"]

#: How long a shard subprocess may take to print its port line.
_BOOT_TIMEOUT = 60.0
#: Idle keep-alive connections the router retains per shard.
_POOL_PER_SHARD = 8

_PORT_LINE = re.compile(r"http://([^\s:]+):(\d+)")


def shard_key(
    mode: str, model: Any, ks: tuple[int, ...], signature_items
) -> int:
    """Stable hash of the plane key ``(mode, model, ks, signature-multiset)``.

    Uses SHA-256 over the ``repr`` (not :func:`hash`, which is randomized
    per process) so every router process — and a restarted one — routes a
    given question to the same shard, which is what keeps the per-shard
    caches hot and the persisted cache files meaningful across restarts.
    """
    payload = repr((mode, model, ks, signature_items)).encode()
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")


class RouterStats:
    """The routing-layer counters behind the aggregated ``/stats``."""

    def __init__(self) -> None:
        self.started = time.monotonic()
        self.requests_total = 0
        self.by_endpoint: Counter[str] = Counter()
        self.by_status: Counter[int] = Counter()
        self.proxied = 0
        self.split_batches = 0
        self.whole_batches = 0
        self.restarts = 0
        self.replays = 0
        self.by_shard: Counter[int] = Counter()

    def as_dict(self) -> dict[str, Any]:
        return {
            "uptime_s": round(time.monotonic() - self.started, 3),
            "requests_total": self.requests_total,
            "by_endpoint": dict(self.by_endpoint),
            "by_status": {str(k): v for k, v in self.by_status.items()},
            "proxied": self.proxied,
            "split_batches": self.split_batches,
            "whole_batches": self.whole_batches,
            "restarts": self.restarts,
            "replays": self.replays,
            "by_shard": {str(k): v for k, v in self.by_shard.items()},
        }


class Shard:
    """One supervised child service process plus its connection pool."""

    __slots__ = ("index", "process", "host", "port", "pool", "lock", "boots")

    def __init__(self, index: int) -> None:
        self.index = index
        self.process: subprocess.Popen | None = None
        self.host: str = "127.0.0.1"
        self.port: int = 0
        #: Idle keep-alive connections: ``(reader, writer)`` pairs.
        self.pool: list[tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
        #: Serializes restarts (request path vs. health loop).
        self.lock: asyncio.Lock = asyncio.Lock()
        self.boots = 0

    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def drop_connections(self) -> None:
        pool, self.pool = self.pool, []
        for _, writer in pool:
            writer.close()


class ShardRouter(JsonHttpServer):
    """A front router over ``shards`` child ``repro serve`` processes.

    Parameters
    ----------
    shards:
        Number of child service processes (>= 1).
    backend, workers, kernel, cache_limit, batch_window:
        Passed through to every shard as its engine/coalescer knobs.
    cache_path:
        Shared persistence *prefix*: shard ``i`` persists to
        ``<prefix>.shard<i>.float.pkl`` / ``.exact.pkl`` (each shard owns
        its slice of the keyspace, so the files never contend).
    health_interval:
        Seconds between liveness sweeps over the shard processes (dead
        ones are restarted); 0 disables the background sweep — dead shards
        are then only restarted on demand by the request path.
    forward_timeout:
        Seconds the router waits for a shard's answer before treating the
        shard as failed (restart-and-replay, then 503).
    host, port, request_timeout, max_connections:
        The router's own listening socket, as in
        :class:`~repro.service.httpbase.JsonHttpServer`.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        shards: int = 2,
        backend: str = "serial",
        workers: int = 1,
        kernel: str = "auto",
        cache_limit: int | None = None,
        cache_path: str | Path | None = None,
        batch_window: float = 0.002,
        health_interval: float = 2.0,
        forward_timeout: float = 120.0,
        request_timeout: float | None = 30.0,
        max_connections: int | None = None,
    ) -> None:
        super().__init__(
            host=host,
            port=port,
            request_timeout=request_timeout,
            max_connections=max_connections,
        )
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if forward_timeout <= 0:
            raise ValueError(
                f"forward_timeout must be positive, got {forward_timeout}"
            )
        if health_interval < 0:
            raise ValueError(
                f"health_interval must be >= 0, got {health_interval}"
            )
        self.backend = backend
        self.workers = workers
        self.kernel = kernel
        self.cache_limit = cache_limit
        self.cache_path = Path(cache_path) if cache_path is not None else None
        self.batch_window = batch_window
        self.health_interval = health_interval
        self.forward_timeout = forward_timeout
        self.shards = [Shard(index) for index in range(shards)]
        self.stats = RouterStats()
        self._health_task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # Shard process supervision
    # ------------------------------------------------------------------
    def _shard_argv(self, shard: Shard) -> list[str]:
        argv = [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--host",
            "127.0.0.1",
            "--port",
            "0",
            "--backend",
            self.backend,
            "--workers",
            str(self.workers),
            "--kernel",
            self.kernel,
            "--batch-window",
            str(self.batch_window),
        ]
        if self.cache_limit is not None:
            argv += ["--cache-limit", str(self.cache_limit)]
        if self.cache_path is not None:
            argv += [
                "--cache-file",
                str(
                    self.cache_path.with_name(
                        f"{self.cache_path.name}.shard{shard.index}"
                    )
                ),
            ]
        return argv

    @staticmethod
    def _shard_env() -> dict[str, str]:
        """The child's environment, with this package importable."""
        import repro

        env = dict(os.environ)
        package_root = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )
        return env

    async def _spawn_shard(self, shard: Shard) -> None:
        """Start one child process and read its bound port off stdout."""
        process = subprocess.Popen(
            self._shard_argv(shard),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=self._shard_env(),
        )
        shard.process = process
        loop = asyncio.get_running_loop()
        deadline = loop.time() + _BOOT_TIMEOUT
        lines: list[str] = []
        while True:
            remaining = deadline - loop.time()
            if remaining <= 0:
                process.kill()
                raise RuntimeError(
                    f"shard {shard.index} did not print a port within "
                    f"{_BOOT_TIMEOUT}s; output so far: {lines!r}"
                )
            try:
                line = await asyncio.wait_for(
                    loop.run_in_executor(None, process.stdout.readline),
                    timeout=remaining,
                )
            except asyncio.TimeoutError:
                continue
            if not line:  # child exited before binding
                process.wait()
                raise RuntimeError(
                    f"shard {shard.index} exited with code "
                    f"{process.returncode} before binding; output: {lines!r}"
                )
            lines.append(line.rstrip())
            match = _PORT_LINE.search(line)
            if match:
                shard.host = match.group(1)
                shard.port = int(match.group(2))
                shard.boots += 1
                return
            if len(lines) > 50:
                process.kill()
                raise RuntimeError(
                    f"shard {shard.index} never printed a port; "
                    f"output: {lines[:5]!r}..."
                )

    async def _restart_shard(self, shard: Shard) -> None:
        """Replace a dead (or wedged) shard process with a fresh one."""
        if shard.process is not None and shard.process.poll() is None:
            shard.process.kill()
            shard.process.wait()
        shard.drop_connections()
        await self._spawn_shard(shard)
        self.stats.restarts += 1

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.health_interval)
            for shard in self.shards:
                if not shard.alive():
                    async with shard.lock:
                        if not shard.alive():
                            try:
                                await self._restart_shard(shard)
                            except RuntimeError:
                                # Leave it dead; the request path (or the
                                # next sweep) will try again.
                                pass

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Boot every shard, start the health sweep and the front socket."""
        try:
            await asyncio.gather(
                *(self._spawn_shard(shard) for shard in self.shards)
            )
        except BaseException:
            self._terminate_shards()
            raise
        if self.health_interval > 0:
            self._health_task = asyncio.create_task(
                self._health_loop(), name="repro-shard-health"
            )
        await self.start_http()

    def _terminate_shards(self) -> None:
        for shard in self.shards:
            shard.drop_connections()
            if shard.process is not None and shard.process.poll() is None:
                shard.process.terminate()  # SIGTERM: each shard saves cache

    async def stop(self) -> None:
        """Stop accepting, then SIGTERM every shard and wait for it to
        persist its cache and exit."""
        await self.stop_http()
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
        self._terminate_shards()
        loop = asyncio.get_running_loop()

        def _reap(process: subprocess.Popen) -> None:
            try:
                process.wait(timeout=60)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()

        await asyncio.gather(
            *(
                loop.run_in_executor(None, _reap, shard.process)
                for shard in self.shards
                if shard.process is not None
            )
        )

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    async def _exchange(
        self, shard: Shard, reader, writer, method: str, path: str, body: bytes
    ) -> tuple[int, dict]:
        """One keep-alive HTTP exchange on an open shard connection."""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {shard.host}:{shard.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()
        status_line = await reader.readline()
        parts = status_line.decode("latin-1").split()
        if len(parts) < 2 or not parts[1].isdigit():
            raise ConnectionError(f"bad status line from shard: {status_line!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise ConnectionError("shard closed mid-headers")
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        payload = await reader.readexactly(length) if length else b"{}"
        if (
            headers.get("connection", "").lower() == "close"
            or len(shard.pool) >= _POOL_PER_SHARD
        ):
            writer.close()
        else:
            shard.pool.append((reader, writer))
        try:
            return status, json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ConnectionError(f"non-JSON shard response: {exc}") from None

    async def _forward_once(
        self, shard: Shard, method: str, path: str, body: bytes
    ) -> tuple[int, dict]:
        """Try a pooled connection first; fall back to a fresh one."""
        if shard.pool:
            reader, writer = shard.pool.pop()
            try:
                return await self._exchange(
                    shard, reader, writer, method, path, body
                )
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                writer.close()
                shard.drop_connections()  # siblings are as stale as this one
            except BaseException:  # timeout/cancel: half-read, unusable
                writer.close()
                raise
        reader, writer = await asyncio.open_connection(shard.host, shard.port)
        try:
            return await self._exchange(
                shard, reader, writer, method, path, body
            )
        except BaseException:
            writer.close()
            raise

    async def _forward(
        self, shard: Shard, method: str, path: str, body: bytes
    ) -> tuple[int, dict]:
        """Forward with restart-and-replay.

        A failed exchange is replayed after either reconnecting (shard
        alive, connection stale) or restarting the shard process — the
        latter when the process is visibly dead *or* actively refusing
        connections (a freshly killed process can refuse before it is
        reapable, so ``poll()`` alone would under-diagnose). At most one
        restart and two replays per request; the boot counter guards
        against stacking restarts when concurrent requests fail together.
        """
        self.stats.proxied += 1
        self.stats.by_shard[shard.index] += 1
        restarted = False
        for attempt in range(3):
            boots_seen = shard.boots
            try:
                return await asyncio.wait_for(
                    self._forward_once(shard, method, path, body),
                    timeout=self.forward_timeout,
                )
            except (
                ConnectionError,
                OSError,
                asyncio.IncompleteReadError,
                asyncio.TimeoutError,
            ) as exc:
                if attempt == 2 or self._stopping:
                    break
                async with shard.lock:
                    if shard.boots != boots_seen:
                        pass  # a concurrent request already revived it
                    elif not shard.alive() or isinstance(
                        exc, ConnectionRefusedError
                    ):
                        if restarted:
                            break
                        try:
                            await self._restart_shard(shard)
                        except RuntimeError:
                            break
                        restarted = True
                    else:
                        shard.drop_connections()
                self.stats.replays += 1
        raise Unavailable(f"shard {shard.index} is unavailable")

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def note_request(self, endpoint: str | None, status: int) -> None:
        self.stats.requests_total += 1
        if endpoint is not None and status != 404:
            self.stats.by_endpoint[endpoint] += 1
        self.stats.by_status[status] += 1

    def _mode(self, payload: dict) -> str:
        exact = require(payload, "exact", bool, optional=True, default=False)
        return "exact" if exact else "float"

    def _model_name(self, payload: dict) -> str:
        name = require(
            payload, "model", str, optional=True, default="implication"
        )
        if name not in available_adversaries():
            raise BadRequest(
                f"unknown adversary model {name!r}; registered: "
                f"{', '.join(available_adversaries())}"
            )
        return name

    def _shard_for(
        self, mode: str, model: Any, ks: tuple[int, ...], buckets: Any
    ) -> Shard:
        bucketization = bucketization_from_payload(buckets)
        key = shard_key(mode, model, ks, bucketization.signature_items())
        return self.shards[key % len(self.shards)]

    async def _route(self, method: str, path: str, body: bytes):
        routes = {
            "/disclosure": ("POST", self._ep_disclosure),
            "/safety": ("POST", self._ep_single_key),
            "/compare": ("POST", self._ep_compare),
            "/models": ("GET", self._ep_models),
            "/stats": ("GET", self._ep_stats),
            "/healthz": ("GET", self._ep_healthz),
        }
        route = routes.get(path)
        if route is None:
            return 404, {"error": f"unknown path {path!r}"}
        verb, handler = route
        if method != verb:
            return 405, {"error": f"{path} only accepts {verb}"}
        if self._stopping:
            return 503, {"error": "service is shutting down"}
        if verb == "POST":
            return await handler(path, parse_json_body(body), body)
        return await handler()

    async def _ep_disclosure(self, path: str, payload: dict, body: bytes):
        if "bucketizations" in payload:
            return await self._ep_batch(path, payload, body)
        return await self._ep_single_key(path, payload, body)

    async def _ep_single_key(self, path: str, payload: dict, body: bytes):
        """Single-bucketization endpoints (``/disclosure``, ``/safety``):
        hash the plane key, forward the original bytes."""
        mode = self._mode(payload)
        model = self._model_name(payload)
        k = require(payload, "k", int)
        shard = self._shard_for(
            mode, model, (k,), require(payload, "buckets", list)
        )
        return await self._forward(shard, "POST", path, body)

    async def _ep_compare(self, path: str, payload: dict, body: bytes):
        """``/compare`` spans models; its plane key uses the model tuple."""
        mode = self._mode(payload)
        models = payload.get("models", ["implication", "negation"])
        if not isinstance(models, list) or not all(
            isinstance(name, str) for name in models
        ):
            raise BadRequest("'models' must be a list of model names")
        ks = tuple(require_ks(payload))
        shard = self._shard_for(
            mode, tuple(models), ks, require(payload, "buckets", list)
        )
        return await self._forward(shard, "POST", path, body)

    async def _ep_batch(self, path: str, payload: dict, body: bytes):
        """Split a batch by per-bucketization plane key, merge losslessly.

        When every bucketization hashes to one shard there is nothing to
        split: the original request bytes are forwarded whole (no sub-batch
        re-encoding, no merge pass) and the skip is counted in
        ``whole_batches``.
        """
        mode = self._mode(payload)
        model = self._model_name(payload)
        ks = require_ks(payload)
        raw = require(payload, "bucketizations", list)
        if not raw:
            raise BadRequest("'bucketizations' must be a non-empty list")
        groups: dict[int, list[int]] = {}
        for position, buckets in enumerate(raw):
            shard = self._shard_for(mode, model, tuple(ks), buckets)
            groups.setdefault(shard.index, []).append(position)
        if len(groups) == 1:
            self.stats.whole_batches += 1
            shard = self.shards[next(iter(groups))]
            return await self._forward(shard, "POST", path, body)
        self.stats.split_batches += 1

        async def _sub(shard_index: int, positions: list[int]):
            sub_payload = {
                "bucketizations": [raw[p] for p in positions],
                "ks": ks,
                "model": model,
                "exact": mode == "exact",
            }
            return await self._forward(
                self.shards[shard_index],
                "POST",
                path,
                json.dumps(sub_payload).encode(),
            )

        answers = await asyncio.gather(
            *(_sub(index, positions) for index, positions in groups.items())
        )
        merged: list[Any] = [None] * len(raw)
        for (status, answer), positions in zip(answers, groups.values()):
            if status != 200:
                return status, answer
            for position, series in zip(positions, answer["series"]):
                merged[position] = series
        return 200, {
            "model": model,
            "ks": sorted(set(ks)),
            "exact": mode == "exact",
            "series": merged,
        }

    async def _ep_models(self):
        """Registry introspection is shard-independent: ask shard 0."""
        return await self._forward(self.shards[0], "GET", "/models", b"")

    async def _ep_healthz(self):
        async def _probe(shard: Shard) -> dict[str, Any]:
            entry: dict[str, Any] = {
                "shard": shard.index,
                "alive": shard.alive(),
                "port": shard.port,
                "boots": shard.boots,
            }
            try:
                status, answer = await asyncio.wait_for(
                    self._forward_once(shard, "GET", "/healthz", b""),
                    timeout=min(self.forward_timeout, 10.0),
                )
                entry["ok"] = status == 200 and answer.get("ok", False)
            except (
                ConnectionError,
                OSError,
                asyncio.IncompleteReadError,
                asyncio.TimeoutError,
            ):
                entry["ok"] = False
            return entry

        shards = await asyncio.gather(*(_probe(s) for s in self.shards))
        ok = all(entry["ok"] for entry in shards)
        return (200 if ok else 503), {
            "ok": ok,
            "shards": shards,
            "uptime_s": round(time.monotonic() - self.stats.started, 3),
        }

    async def _ep_stats(self):
        async def _shard_stats(shard: Shard) -> dict[str, Any]:
            try:
                status, answer = await self._forward(
                    shard, "GET", "/stats", b""
                )
            except Unavailable:
                return {"shard": shard.index, "unreachable": True}
            if status != 200:
                return {"shard": shard.index, "unreachable": True}
            answer["shard"] = shard.index
            return answer

        shard_stats = await asyncio.gather(
            *(_shard_stats(shard) for shard in self.shards)
        )
        totals: Counter[str] = Counter()
        for entry in shard_stats:
            service = entry.get("service")
            if not isinstance(service, dict):
                continue
            for field in (
                "requests_total",
                "single_requests",
                "batch_requests",
                "coalesced_batches",
                "coalesced_singles",
            ):
                value = service.get(field)
                if isinstance(value, int):
                    totals[field] += value
        router = self.stats.as_dict()
        router["shards"] = len(self.shards)
        router["connections"] = self.connections.as_dict()
        router["max_connections"] = self.max_connections
        return 200, {
            "router": router,
            "totals": dict(totals),
            "shards": shard_stats,
        }


class BackgroundRouter(BackgroundHost):
    """Run a :class:`ShardRouter` on a daemon thread (tests, benchmarks).

    Usage::

        with BackgroundRouter(shards=3, backend="serial") as bg:
            value = bg.client().disclosure(bucketization, k=3)
    """

    def _make_service(self) -> ShardRouter:
        return ShardRouter(**self._kwargs)
