"""Horizontal sharding: N disclosure services behind a plane-key hash router.

One :class:`~repro.service.server.DisclosureService` process is capped by
its single engine thread and by the fact that its plane-keyed cache lives
in one address space. :class:`ShardRouter` is the scale-out tier the
ROADMAP names: it supervises ``N`` child services and routes every request
by its **plane key** — ``(mode, model, k, signature-multiset)``, exactly
the engine's cache key — so repeated and same-shaped questions always land
on the shard that already has them cached. Cache locality is not
best-effort here; it is the routing invariant.

Shards come in two **modes** (``shard_mode``):

- ``"process"`` — each shard is a plain ``repro serve`` subprocess with
  its own engines, coalescer and persisted cache file, supervised over
  asyncio subprocess pipes. This is the multi-core topology: N engine
  threads in N address spaces.
- ``"inproc"`` — each shard is a :class:`DisclosureService` embedded in
  the router process itself (booted via ``start_local``: engines,
  coalescer, stats and per-shard cache persistence exactly as a
  subprocess shard, minus the socket). Requests reach it through the
  shared :meth:`~repro.service.httpbase.JsonHttpServer.dispatch` code
  path, so answers are bit-identical — but a hop costs a method call,
  not a socket round trip. This is the low-core topology: on a box with
  fewer cores than shards, process shards only add context switches and
  serialization.
- ``"auto"`` (the default) picks per host: ``process`` when the machine
  has more cores than shards, ``inproc`` otherwise
  (:func:`resolve_shard_mode`).

The routing hot path never re-parses what it has already seen: a bounded
memo keyed on the **raw request bytes** maps straight to the routing
decision (``route_memo_hits`` / ``reparse_avoided`` in ``/stats``), and a
memo miss derives the shard key with one
:func:`~repro.service.wire.signature_items_from_lists` pass over the
JSON — no :class:`~repro.bucketization.bucketization.Bucketization`
object graph. Single requests are forwarded as their original bytes,
untouched; for in-process shards a routed single whose answer is already
cached is answered on the router's event loop without any dispatch at all
(``fast_hits``). Concurrent singles bound for the same process shard are
drained into one upstream batch (``coalesced_batches`` /
``coalesced_singles``), so N pending questions cost one socket round
trip; in-process shards rely on their own coalescer, which already lives
on the same loop.

What the router guarantees:

- **bit-identical answers**: the router forwards the original request
  bytes (or, for split batches, a lossless re-encoding) and returns the
  shard's JSON untouched; its fast paths only ever answer from the exact
  engine cache entry the shard itself would have hit. A 3-shard
  deployment answers exactly like one engine, in both arithmetic modes
  and all shard modes.
- **lossless batch split/merge**: a ``/disclosure`` batch is partitioned
  by each bucketization's plane key, the sub-batches run on their shards
  concurrently, and the per-bucketization series are reassembled in the
  original order.
- **supervision**: process shards are health-checked; a dead shard is
  restarted and the in-flight request **replayed** on the fresh process
  (counted in ``restarts`` / ``replays``). Shutdown SIGTERMs every shard
  so each persists its own cache under the shared prefix
  (``<prefix>.shard<i>.<mode>.pkl``); in-process shards persist the same
  files from the router's own shutdown.
- **aggregated observability**: ``/stats`` merges router counters with
  every shard's ``/stats``; ``/healthz`` reports per-shard liveness.

The router speaks the same keep-alive HTTP dialect as the shards (both
subclass :class:`~repro.service.httpbase.JsonHttpServer`) and keeps a
small keep-alive connection pool **per process shard**, so a request
costs one hop, not one handshake. Start one with
``repro serve --shards N [--shard-mode MODE]`` or embed
:class:`BackgroundRouter` in tests.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import re
import sys
import tempfile
import time
from collections import Counter
from collections.abc import Mapping
from pathlib import Path
from typing import Any

from repro.engine.base import available_adversaries, canonical_params
from repro.service.httpbase import (
    BackgroundHost,
    BadRequest,
    JsonHttpServer,
    Unavailable,
    require,
    require_ks,
    set_nodelay,
)
from repro.service.server import (
    DisclosureService,
    load_tenants,
    parse_json_body,
)
from repro.service.wire import decode_params, signature_items_from_lists

__all__ = [
    "RouterStats",
    "Shard",
    "ProcessShard",
    "InprocShard",
    "resolve_shard_mode",
    "shard_key",
    "table_shard_key",
    "ShardRouter",
    "BackgroundRouter",
]

#: How long a shard subprocess may take to print its port line.
_BOOT_TIMEOUT = 60.0
#: Idle keep-alive connections the router retains per shard.
_POOL_PER_SHARD = 8
#: Routing decisions memoized by raw request bytes (entries / body size).
_ROUTE_MEMO_MAX = 1024
_ROUTE_MEMO_BODY_MAX = 64 * 1024

_PORT_LINE = re.compile(r"http://([^\s:]+):(\d+)")

#: The shard modes ``repro serve --shard-mode`` accepts.
SHARD_MODES = ("auto", "process", "inproc")


def resolve_shard_mode(shard_mode: str, shards: int) -> str:
    """``"auto"`` resolved against this host: ``"process"`` only when the
    machine has more cores than shards — otherwise the extra processes
    cannot run in parallel anyway and every hop still pays serialization
    plus a socket round trip, so ``"inproc"`` is strictly better."""
    if shard_mode not in SHARD_MODES:
        raise ValueError(
            f"shard_mode must be one of {SHARD_MODES}, got {shard_mode!r}"
        )
    if shard_mode != "auto":
        return shard_mode
    return "process" if (os.cpu_count() or 1) > shards else "inproc"


def shard_key(
    mode: str,
    model: Any,
    ks: tuple[int, ...],
    signature_items,
    params: tuple = (),
    tenant: str | None = None,
) -> int:
    """Stable hash of the plane key ``(mode, model, ks, signature-multiset,
    canonical params, tenant)``.

    Uses SHA-256 over the ``repr`` (not :func:`hash`, which is randomized
    per process) so every router process — and a restarted one — routes a
    given question to the same shard, which is what keeps the per-shard
    caches hot and the persisted cache files meaningful across restarts.
    ``params`` must be the **canonical** tuple from
    :func:`~repro.engine.base.canonical_params` — never an instance repr,
    whose ``object at 0x..`` addresses would scatter identical requests
    across shards between restarts.
    """
    payload = repr((mode, model, ks, signature_items, params, tenant)).encode()
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")


def table_shard_key(table: str, tenant: str | None) -> int:
    """Stable hash of a ledger identity ``(tenant, table)``.

    Publish traffic routes by **table affinity**, not plane key: every
    version of one table must land on the shard that owns its slice of
    the release ledger (each subprocess shard keeps its own
    ``<prefix>.shard<i>.sqlite``), or the incremental re-check would never
    see its own prior release. Same SHA-256-over-``repr`` construction as
    :func:`shard_key`, for the same restart-stability reasons.
    """
    payload = repr(("publish", tenant or "", table)).encode()
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")


class RouterStats:
    """The routing-layer counters behind the aggregated ``/stats``."""

    def __init__(self) -> None:
        self.started = time.monotonic()
        self.requests_total = 0
        self.by_endpoint: Counter[str] = Counter()
        self.by_status: Counter[int] = Counter()
        self.proxied = 0
        self.split_batches = 0
        self.whole_batches = 0
        self.restarts = 0
        self.replays = 0
        self.route_memo_hits = 0
        self.reparse_avoided = 0
        self.fast_hits = 0
        self.coalesced_batches = 0
        self.coalesced_singles = 0
        self.by_shard: Counter[int] = Counter()

    def as_dict(self) -> dict[str, Any]:
        """The router counters as the ``/stats -> router`` JSON section."""
        return {
            "uptime_s": round(time.monotonic() - self.started, 3),
            "requests_total": self.requests_total,
            "by_endpoint": dict(self.by_endpoint),
            "by_status": {str(k): v for k, v in self.by_status.items()},
            "proxied": self.proxied,
            "split_batches": self.split_batches,
            "whole_batches": self.whole_batches,
            "restarts": self.restarts,
            "replays": self.replays,
            "route_memo_hits": self.route_memo_hits,
            "reparse_avoided": self.reparse_avoided,
            "fast_hits": self.fast_hits,
            "coalesced_batches": self.coalesced_batches,
            "coalesced_singles": self.coalesced_singles,
            "by_shard": {str(k): v for k, v in self.by_shard.items()},
        }


class ProcessShard:
    """One supervised child service process plus its connection pool."""

    mode = "process"

    __slots__ = ("index", "process", "host", "port", "pool", "lock", "boots")

    def __init__(self, index: int) -> None:
        self.index = index
        self.process: asyncio.subprocess.Process | None = None
        self.host: str = "127.0.0.1"
        self.port: int = 0
        #: Idle keep-alive connections: ``(reader, writer)`` pairs.
        self.pool: list[tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
        #: Serializes restarts (request path vs. health loop).
        self.lock: asyncio.Lock = asyncio.Lock()
        self.boots = 0

    def alive(self) -> bool:
        """Whether the shard subprocess is running."""
        return self.process is not None and self.process.returncode is None

    def drop_connections(self) -> None:
        """Close every pooled upstream connection (e.g. after a restart)."""
        pool, self.pool = self.pool, []
        for _, writer in pool:
            writer.close()


#: Legacy alias: ``Shard`` predates the in-process mode.
Shard = ProcessShard


class InprocShard:
    """One embedded :class:`DisclosureService` shard (no process, no socket).

    It cannot die independently of the router, so ``alive()`` is simply
    "started" and there is nothing to supervise; its engines, coalescer,
    stats and per-shard cache files behave exactly as a subprocess
    shard's because it *is* a :class:`DisclosureService`, reached through
    the same dispatch path a socket would reach.
    """

    mode = "inproc"

    __slots__ = ("index", "service", "host", "port", "lock", "boots")

    def __init__(self, index: int) -> None:
        self.index = index
        self.service: DisclosureService | None = None
        self.host: str = "inproc"
        self.port: int = 0
        self.lock: asyncio.Lock = asyncio.Lock()
        self.boots = 0

    def alive(self) -> bool:
        """Whether the in-process shard service is built."""
        return self.service is not None

    def drop_connections(self) -> None:
        """No-op: an in-process shard holds no upstream sockets."""


class _RouteEntry:
    """One memoized routing decision for a single-bucketization body."""

    __slots__ = ("shard_index", "mode", "model", "k", "items", "buckets",
                 "coalescible", "tenant", "params", "cparams", "params_wire")

    def __init__(
        self, shard_index, mode, model, k, items, buckets, coalescible,
        tenant, params, cparams, params_wire,
    ) -> None:
        self.shard_index = shard_index
        self.mode = mode
        self.model = model
        self.k = k
        self.items = items
        #: Raw bucket lists, kept only for coalescible entries (they are
        #: what an upstream batch is built from on a memo hit).
        self.buckets = buckets
        self.coalescible = coalescible
        self.tenant = tenant
        #: Decoded constructor kwargs (the inproc peek needs real values),
        #: their canonical tuple (the group/shard key needs hashability),
        #: and the original wire object (a rebuilt upstream batch needs
        #: the JSON shape back).
        self.params = params
        self.cparams = cparams
        self.params_wire = params_wire


class _RouterPending:
    """One single request awaiting the router-side upstream coalescer."""

    __slots__ = ("body", "buckets", "params_wire", "future")

    def __init__(self, body: bytes, buckets, params_wire, future) -> None:
        self.body = body
        self.buckets = buckets
        self.params_wire = params_wire
        self.future = future


async def _drain_stream(stream: asyncio.StreamReader) -> None:
    """Consume a shard's stdout after boot so the pipe never fills (a full
    pipe would eventually block the child's prints)."""
    try:
        while await stream.read(65536):
            pass
    except Exception:
        pass


class ShardRouter(JsonHttpServer):
    """A front router over ``shards`` child disclosure services.

    Parameters
    ----------
    shards:
        Number of child services (>= 1).
    shard_mode:
        ``"process"`` (subprocess shards), ``"inproc"`` (embedded shards)
        or ``"auto"`` (default; see :func:`resolve_shard_mode`). The
        resolved value is readable back from :attr:`shard_mode`.
    backend, workers, kernel, cache_limit, batch_window:
        Passed through to every shard as its engine/coalescer knobs.
        ``batch_window`` also paces the router's own upstream coalescer
        for process shards.
    cache_path:
        Shared persistence *prefix*: shard ``i`` persists to
        ``<prefix>.shard<i>.float.pkl`` / ``.exact.pkl`` (each shard owns
        its slice of the keyspace, so the files never contend).
    health_interval:
        Seconds between liveness sweeps over the shard processes (dead
        ones are restarted); 0 disables the background sweep — dead shards
        are then only restarted on demand by the request path. Meaningless
        for in-process shards (they cannot die independently).
    forward_timeout:
        Seconds the router waits for a shard's answer before treating the
        shard as failed (restart-and-replay, then 503).
    tenants:
        Optional multi-tenant topology — a JSON file path or its parsed
        mapping, validated at boot by
        :func:`~repro.service.server.load_tenants` and handed to every
        shard (``--tenants`` for subprocesses, the constructor for
        embedded services), so each shard carries per-tenant engines and
        cache files. The tenant id joins the shard key: two tenants'
        identical questions may land on different shards, and never on
        the same cache entry.
    ledger_file:
        Optional release-ledger persistence *prefix*: shard ``i`` keeps
        its slice of the publish ledger in ``<prefix>.shard<i>.sqlite``.
        ``/publish`` and ``/releases/{table}/{version}`` route by table
        affinity (:func:`table_shard_key`), so one table's whole release
        history lives on one shard. ``None`` = in-memory ledgers.
    host, port, request_timeout, max_connections:
        The router's own listening socket, as in
        :class:`~repro.service.httpbase.JsonHttpServer`.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        shards: int = 2,
        shard_mode: str = "auto",
        backend: str = "serial",
        workers: int = 1,
        kernel: str = "auto",
        cache_limit: int | None = None,
        cache_path: str | Path | None = None,
        batch_window: float = 0.002,
        health_interval: float = 2.0,
        forward_timeout: float = 120.0,
        request_timeout: float | None = 30.0,
        max_connections: int | None = None,
        tenants: str | Path | Mapping[str, Any] | None = None,
        ledger_file: str | Path | None = None,
    ) -> None:
        super().__init__(
            host=host,
            port=port,
            request_timeout=request_timeout,
            max_connections=max_connections,
        )
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if forward_timeout <= 0:
            raise ValueError(
                f"forward_timeout must be positive, got {forward_timeout}"
            )
        if health_interval < 0:
            raise ValueError(
                f"health_interval must be >= 0, got {health_interval}"
            )
        self.shard_mode = resolve_shard_mode(shard_mode, shards)
        self.backend = backend
        self.workers = workers
        self.kernel = kernel
        self.cache_limit = cache_limit
        self.cache_path = Path(cache_path) if cache_path is not None else None
        #: Ledger persistence *prefix*: shard ``i`` keeps its slice of the
        #: release ledger in ``<prefix>.shard<i>.sqlite`` (publish traffic
        #: routes by table affinity, so one table's history lives whole on
        #: one shard). ``None`` leaves every shard on an in-memory ledger.
        self.ledger_path = (
            Path(ledger_file) if ledger_file is not None else None
        )
        self.batch_window = batch_window
        self.health_interval = health_interval
        self.forward_timeout = forward_timeout
        #: The tenant topology: validated now (a bad file fails the boot,
        #: not the first request), while the original source is kept so
        #: shards can re-validate the same JSON themselves.
        self.tenants: dict[str, dict] = (
            load_tenants(tenants) if tenants is not None else {}
        )
        self.tenants_path: Path | None = (
            Path(tenants) if isinstance(tenants, (str, Path)) else None
        )
        self._tenants_raw: Mapping[str, Any] | None = (
            tenants if isinstance(tenants, Mapping) else None
        )
        self._tenants_tmp: Path | None = None
        shard_class = (
            InprocShard if self.shard_mode == "inproc" else ProcessShard
        )
        self.shards = [shard_class(index) for index in range(shards)]
        self.stats = RouterStats()
        self._health_task: asyncio.Task | None = None
        #: ``(path, body) -> _RouteEntry``: the zero-reparse routing memo.
        self._route_memo: dict[tuple[str, bytes], _RouteEntry] = {}
        #: The upstream coalescer's queue, keyed like the shard's own
        #: coalescer plus the owning shard:
        #: ``(shard, tenant, mode, model, k, canonical params)``.
        self._pending: dict[
            tuple[int, str | None, str, str, int, tuple],
            list[_RouterPending],
        ] = {}
        self._kick: asyncio.Event | None = None
        self._coalescer: asyncio.Task | None = None
        self._drain_tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # Shard supervision
    # ------------------------------------------------------------------
    def _shard_cache_prefix(self, shard) -> Path | None:
        if self.cache_path is None:
            return None
        return self.cache_path.with_name(
            f"{self.cache_path.name}.shard{shard.index}"
        )

    def _shard_ledger_file(self, shard) -> Path | None:
        if self.ledger_path is None:
            return None
        return self.ledger_path.with_name(
            f"{self.ledger_path.name}.shard{shard.index}.sqlite"
        )

    def _tenants_file(self) -> Path | None:
        """The tenants topology as a file path for ``--tenants`` — the
        user's own file when one was given, otherwise a lazily written
        tempfile of the mapping (removed in :meth:`stop`)."""
        if not self.tenants:
            return None
        if self.tenants_path is not None:
            return self.tenants_path
        if self._tenants_tmp is None:
            fd, name = tempfile.mkstemp(
                prefix="repro-tenants-", suffix=".json"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(self._tenants_raw, handle)
            self._tenants_tmp = Path(name)
        return self._tenants_tmp

    def _shard_argv(self, shard: ProcessShard) -> list[str]:
        argv = [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--host",
            "127.0.0.1",
            "--port",
            "0",
            "--backend",
            self.backend,
            "--workers",
            str(self.workers),
            "--kernel",
            self.kernel,
            "--batch-window",
            str(self.batch_window),
        ]
        if self.cache_limit is not None:
            argv += ["--cache-limit", str(self.cache_limit)]
        if self.cache_path is not None:
            argv += ["--cache-file", str(self._shard_cache_prefix(shard))]
        if self.ledger_path is not None:
            argv += ["--ledger-file", str(self._shard_ledger_file(shard))]
        tenants_file = self._tenants_file()
        if tenants_file is not None:
            argv += ["--tenants", str(tenants_file)]
        return argv

    @staticmethod
    def _shard_env() -> dict[str, str]:
        """The child's environment, with this package importable."""
        import repro

        env = dict(os.environ)
        package_root = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )
        return env

    async def _spawn_shard(self, shard) -> None:
        """Boot one shard: a child process (reading its bound port off the
        subprocess pipe) or an embedded socketless service."""
        if shard.mode == "inproc":
            service = DisclosureService(
                backend=self.backend,
                workers=self.workers,
                kernel=self.kernel,
                cache_limit=self.cache_limit,
                cache_path=self._shard_cache_prefix(shard),
                ledger_file=self._shard_ledger_file(shard),
                batch_window=self.batch_window,
                tenants=(
                    self.tenants_path
                    if self.tenants_path is not None
                    else self._tenants_raw
                ),
            )
            await service.start_local()
            shard.service = service
            shard.boots += 1
            return
        process = await asyncio.create_subprocess_exec(
            *self._shard_argv(shard),
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.STDOUT,
            env=self._shard_env(),
        )
        shard.process = process
        assert process.stdout is not None
        loop = asyncio.get_running_loop()
        deadline = loop.time() + _BOOT_TIMEOUT
        lines: list[str] = []
        while True:
            remaining = deadline - loop.time()
            if remaining <= 0:
                process.kill()
                raise RuntimeError(
                    f"shard {shard.index} did not print a port within "
                    f"{_BOOT_TIMEOUT}s; output so far: {lines!r}"
                )
            try:
                raw = await asyncio.wait_for(
                    process.stdout.readline(), timeout=remaining
                )
            except asyncio.TimeoutError:
                continue
            if not raw:  # child exited before binding
                await process.wait()
                raise RuntimeError(
                    f"shard {shard.index} exited with code "
                    f"{process.returncode} before binding; output: {lines!r}"
                )
            line = raw.decode(errors="replace").rstrip()
            lines.append(line)
            match = _PORT_LINE.search(line)
            if match:
                shard.host = match.group(1)
                shard.port = int(match.group(2))
                shard.boots += 1
                # From here on nobody reads the pipe on the request path;
                # a background drain keeps it from filling up.
                task = asyncio.create_task(
                    _drain_stream(process.stdout),
                    name=f"repro-shard{shard.index}-drain",
                )
                self._drain_tasks.add(task)
                task.add_done_callback(self._drain_tasks.discard)
                return
            if len(lines) > 50:
                process.kill()
                raise RuntimeError(
                    f"shard {shard.index} never printed a port; "
                    f"output: {lines[:5]!r}..."
                )

    async def _restart_shard(self, shard) -> None:
        """Replace a dead (or wedged) shard process with a fresh one."""
        if shard.mode == "inproc":  # shares our fate; nothing to revive
            return
        process = shard.process
        if process is not None and process.returncode is None:
            process.kill()
            await process.wait()
        shard.drop_connections()
        await self._spawn_shard(shard)
        self.stats.restarts += 1

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.health_interval)
            for shard in self.shards:
                if not shard.alive():
                    async with shard.lock:
                        if not shard.alive():
                            try:
                                await self._restart_shard(shard)
                            except RuntimeError:
                                # Leave it dead; the request path (or the
                                # next sweep) will try again.
                                pass

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Boot every shard, start the health sweep, the upstream
        coalescer and the front socket."""
        try:
            await asyncio.gather(
                *(self._spawn_shard(shard) for shard in self.shards)
            )
        except BaseException:
            self._terminate_shards()
            raise
        if self.health_interval > 0 and self.shard_mode == "process":
            self._health_task = asyncio.create_task(
                self._health_loop(), name="repro-shard-health"
            )
        self._kick = asyncio.Event()
        self._coalescer = asyncio.create_task(
            self._coalesce_loop(), name="repro-router-coalescer"
        )
        await self.start_http()

    def _terminate_shards(self) -> None:
        for shard in self.shards:
            shard.drop_connections()
            if (
                shard.mode == "process"
                and shard.process is not None
                and shard.process.returncode is None
            ):
                shard.process.terminate()  # SIGTERM: each shard saves cache

    async def stop(self) -> None:
        """Stop accepting, fail queued singles, then stop every shard
        (SIGTERM for processes, ``stop_local`` for embedded services) and
        wait for each to persist its cache."""
        await self.stop_http()
        for task in (self._health_task, self._coalescer):
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        for items in self._pending.values():
            for pending in items:
                if not pending.future.done():
                    pending.future.set_exception(
                        Unavailable("service is shutting down")
                    )
        self._pending.clear()
        self._terminate_shards()

        async def _reap(shard) -> None:
            if shard.mode == "inproc":
                if shard.service is not None:
                    await shard.service.stop_local()
                return
            process = shard.process
            if process is None:
                return
            try:
                await asyncio.wait_for(process.wait(), timeout=60)
            except asyncio.TimeoutError:
                process.kill()
                await process.wait()

        await asyncio.gather(*(_reap(shard) for shard in self.shards))
        if self._tenants_tmp is not None:
            self._tenants_tmp.unlink(missing_ok=True)
            self._tenants_tmp = None

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    async def _exchange(
        self, shard, reader, writer, method: str, path: str, body: bytes
    ) -> tuple[int, dict]:
        """One keep-alive HTTP exchange on an open shard connection."""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {shard.host}:{shard.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()
        status_line = await reader.readline()
        parts = status_line.decode("latin-1").split()
        if len(parts) < 2 or not parts[1].isdigit():
            raise ConnectionError(f"bad status line from shard: {status_line!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise ConnectionError("shard closed mid-headers")
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        payload = await reader.readexactly(length) if length else b"{}"
        if (
            headers.get("connection", "").lower() == "close"
            or len(shard.pool) >= _POOL_PER_SHARD
        ):
            writer.close()
        else:
            shard.pool.append((reader, writer))
        try:
            return status, json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ConnectionError(f"non-JSON shard response: {exc}") from None

    async def _forward_inproc(
        self, shard: InprocShard, method: str, path: str, body: bytes
    ) -> tuple[int, dict]:
        """A hop to an embedded shard: the same request semantics as a
        socket exchange, via the shared dispatch path."""
        service = shard.service
        if service is None:
            raise Unavailable(f"shard {shard.index} is unavailable")
        status, payload, _ = await service.dispatch(method, path, body)
        service.note_request(path, status)
        return status, payload

    async def _forward_once(
        self, shard, method: str, path: str, body: bytes
    ) -> tuple[int, dict]:
        """Try a pooled connection first; fall back to a fresh one."""
        if shard.mode == "inproc":
            return await self._forward_inproc(shard, method, path, body)
        if shard.pool:
            reader, writer = shard.pool.pop()
            try:
                return await self._exchange(
                    shard, reader, writer, method, path, body
                )
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                writer.close()
                shard.drop_connections()  # siblings are as stale as this one
            except BaseException:  # timeout/cancel: half-read, unusable
                writer.close()
                raise
        reader, writer = await asyncio.open_connection(shard.host, shard.port)
        set_nodelay(writer.get_extra_info("socket"))
        try:
            return await self._exchange(
                shard, reader, writer, method, path, body
            )
        except BaseException:
            writer.close()
            raise

    async def _forward(
        self, shard, method: str, path: str, body: bytes
    ) -> tuple[int, dict]:
        """Forward with restart-and-replay.

        A failed exchange is replayed after either reconnecting (shard
        alive, connection stale) or restarting the shard process — the
        latter when the process is visibly dead *or* actively refusing
        connections (a freshly killed process can refuse before it is
        reapable, so liveness alone would under-diagnose). At most one
        restart and two replays per request; the boot counter guards
        against stacking restarts when concurrent requests fail together.
        In-process shards cannot lose a connection or die on their own,
        so their hop is a single local dispatch.
        """
        self.stats.proxied += 1
        self.stats.by_shard[shard.index] += 1
        if shard.mode == "inproc":
            return await self._forward_inproc(shard, method, path, body)
        restarted = False
        for attempt in range(3):
            boots_seen = shard.boots
            try:
                return await asyncio.wait_for(
                    self._forward_once(shard, method, path, body),
                    timeout=self.forward_timeout,
                )
            except (
                ConnectionError,
                OSError,
                asyncio.IncompleteReadError,
                asyncio.TimeoutError,
            ) as exc:
                if attempt == 2 or self._stopping:
                    break
                async with shard.lock:
                    if shard.boots != boots_seen:
                        pass  # a concurrent request already revived it
                    elif not shard.alive() or isinstance(
                        exc, ConnectionRefusedError
                    ):
                        if restarted:
                            break
                        try:
                            await self._restart_shard(shard)
                        except RuntimeError:
                            break
                        restarted = True
                    else:
                        shard.drop_connections()
                self.stats.replays += 1
        raise Unavailable(f"shard {shard.index} is unavailable")

    # ------------------------------------------------------------------
    # The upstream coalescer (process shards)
    # ------------------------------------------------------------------
    async def _enqueue_single(
        self, entry: _RouteEntry, body: bytes
    ) -> tuple[int, dict]:
        """Queue one routed single and await its (possibly batched) answer."""
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        key = (
            entry.shard_index,
            entry.tenant,
            entry.mode,
            entry.model,
            entry.k,
            entry.cparams,
        )
        self._pending.setdefault(key, []).append(
            _RouterPending(body, entry.buckets, entry.params_wire, future)
        )
        assert self._kick is not None
        self._kick.set()
        return await future

    async def _coalesce_loop(self) -> None:
        """Drain pending singles into one upstream request per
        ``(shard, tenant, mode, model, k, params)`` group.

        Mirrors the shard-side coalescer: while upstream exchanges are in
        flight, newly arriving singles keep queueing, so batches form
        organically under concurrency even with ``batch_window = 0`` —
        N waiting singles cost the socket one batch round trip instead
        of N.
        """
        assert self._kick is not None
        while True:
            await self._kick.wait()
            self._kick.clear()
            if self.batch_window > 0:
                await asyncio.sleep(self.batch_window)
            while self._pending:
                groups, self._pending = self._pending, {}
                try:
                    await asyncio.gather(
                        *(
                            self._run_group(key, items)
                            for key, items in groups.items()
                        )
                    )
                except asyncio.CancelledError:
                    for items in groups.values():
                        for pending in items:
                            if not pending.future.done():
                                pending.future.set_exception(
                                    Unavailable("service is shutting down")
                                )
                    raise

    async def _run_group(
        self,
        key: tuple[int, str | None, str, str, int, tuple],
        items: list[_RouterPending],
    ) -> None:
        """One drained group: forward solo bytes untouched, or batch."""
        shard_index, tenant, mode, model, k, _cparams = key
        shard = self.shards[shard_index]
        try:
            if len(items) == 1:
                results = [
                    await self._forward(
                        shard, "POST", "/disclosure", items[0].body
                    )
                ]
            else:
                batch = {
                    "bucketizations": [p.buckets for p in items],
                    "ks": [k],
                    "model": model,
                    "exact": mode == "exact",
                }
                # The rebuilt batch names the model explicitly, which at
                # the shard suppresses tenant *defaults* — so the group's
                # effective params ride along explicitly too (every member
                # shares them: params are part of the group key).
                if items[0].params_wire is not None:
                    batch["params"] = items[0].params_wire
                if tenant is not None:
                    batch["tenant"] = tenant
                status, answer = await self._forward(
                    shard, "POST", "/disclosure", json.dumps(batch).encode()
                )
                if status != 200:
                    results = [(status, answer)] * len(items)
                else:
                    self.stats.coalesced_batches += 1
                    self.stats.coalesced_singles += len(items)
                    results = [
                        (
                            200,
                            {
                                "model": model,
                                "k": k,
                                "exact": mode == "exact",
                                "value": series[str(k)],
                            },
                        )
                        for series in answer["series"]
                    ]
        except Exception as exc:
            for pending in items:
                if not pending.future.done():
                    pending.future.set_exception(exc)
            return
        for pending, result in zip(items, results):
            if not pending.future.done():
                pending.future.set_result(result)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def note_request(self, endpoint: str | None, status: int) -> None:
        """Count one routed request in the router stats."""
        self.stats.requests_total += 1
        if endpoint is not None and status != 404:
            self.stats.by_endpoint[endpoint] += 1
        self.stats.by_status[status] += 1

    def _mode(self, payload: dict) -> str:
        exact = require(payload, "exact", bool, optional=True, default=False)
        return "exact" if exact else "float"

    def _model_name(self, payload: dict, default: str = "implication") -> str:
        name = require(payload, "model", str, optional=True, default=default)
        if name not in available_adversaries():
            raise BadRequest(
                f"unknown adversary model {name!r}; registered: "
                f"{', '.join(available_adversaries())}"
            )
        return name

    def _tenant(self, payload: dict) -> str | None:
        """Validate the optional ``tenant`` field against the topology —
        the same 400 the shard itself would produce, but before any
        routing work."""
        tenant = require(payload, "tenant", str, optional=True, default=None)
        if tenant is None:
            return None
        if tenant not in self.tenants:
            raise BadRequest(
                f"unknown tenant {tenant!r}"
                + (
                    f"; configured: {', '.join(sorted(self.tenants))}"
                    if self.tenants
                    else " (no tenants configured)"
                )
            )
        return tenant

    def _effective_threat(
        self, payload: dict, tenant: str | None
    ) -> tuple[str, dict, tuple, Any]:
        """The request's effective threat model, resolved exactly as the
        shard's ``_resolve_model`` will resolve it — ``(name, decoded
        params, canonical params, wire params)`` — so router and shard
        always agree on the identity the shard key and cache key hash.
        """
        config = self.tenants.get(tenant) if tenant is not None else None
        name = self._model_name(
            payload, default=config["model"] if config else "implication"
        )
        if "params" in payload:
            params = decode_params(payload["params"])  # ValueError -> 400
            params_wire = payload["params"]
        elif config is not None and "model" not in payload:
            params = config["params"]
            params_wire = config["params_wire"]
        else:
            params = {}
            params_wire = None
        return name, params, canonical_params(params), params_wire

    def _shard_for(
        self,
        mode: str,
        model: Any,
        ks: tuple[int, ...],
        buckets,
        cparams: tuple = (),
        tenant: str | None = None,
    ):
        """The owning shard, keyed without building a ``Bucketization``."""
        key = shard_key(
            mode, model, ks, signature_items_from_lists(buckets),
            cparams, tenant,
        )
        return self.shards[key % len(self.shards)]

    def _memoize(self, path: str, body: bytes, entry: _RouteEntry) -> None:
        if len(body) > _ROUTE_MEMO_BODY_MAX:
            return
        memo = self._route_memo
        if (path, body) not in memo and len(memo) >= _ROUTE_MEMO_MAX:
            memo.pop(next(iter(memo)))  # bounded: drop the oldest entry
        memo[(path, body)] = entry

    async def _route(self, method: str, path: str, body: bytes):
        """Dispatch one request: the same endpoint table as the shards
        (exact paths plus the ``/releases/{table}/{version}`` prefix),
        routed by plane key or, for publish traffic, table affinity."""
        routes = {
            "/disclosure": ("POST", self._ep_disclosure),
            "/safety": ("POST", self._ep_single_key),
            "/compare": ("POST", self._ep_compare),
            "/publish": ("POST", self._ep_publish),
            "/models": ("GET", self._ep_models),
            "/releases": ("GET", self._ep_releases),
            "/stats": ("GET", self._ep_stats),
            "/healthz": ("GET", self._ep_healthz),
        }
        route = routes.get(path)
        if route is None and path.startswith("/releases/"):
            if method != "GET":
                return 405, {"error": f"{path} only accepts GET"}
            if self._stopping:
                return 503, {"error": "service is shutting down"}
            return await self._ep_release(path)
        if route is None:
            return 404, {"error": f"unknown path {path!r}"}
        verb, handler = route
        if method != verb:
            return 405, {"error": f"{path} only accepts {verb}"}
        if self._stopping:
            return 503, {"error": "service is shutting down"}
        if verb == "POST":
            entry = self._route_memo.get((path, body))
            if entry is not None:
                # Byte-identical body seen before: route it without
                # touching JSON at all.
                self.stats.route_memo_hits += 1
                self.stats.reparse_avoided += 1
                return await self._dispatch_single(path, body, entry)
            return await handler(path, parse_json_body(body), body)
        return await handler()

    async def _dispatch_single(
        self, path: str, body: bytes, entry: _RouteEntry
    ):
        """Answer one routed single-bucketization request.

        In-process shards first try the lock-free cache peek (a hit is
        answered entirely on this event loop, no dispatch); coalescible
        singles bound for process shards go through the upstream
        coalescer; everything else forwards the original bytes.
        """
        shard = self.shards[entry.shard_index]
        if shard.mode == "inproc":
            if entry.coalescible and shard.service is not None:
                answer = shard.service.peek_single(
                    entry.mode,
                    entry.model,
                    entry.k,
                    entry.items,
                    params=entry.params,
                    tenant=entry.tenant,
                )
                if answer is not None:
                    self.stats.fast_hits += 1
                    self.stats.by_shard[shard.index] += 1
                    return 200, answer
            return await self._forward(shard, "POST", path, body)
        if entry.coalescible:
            return await self._enqueue_single(entry, body)
        return await self._forward(shard, "POST", path, body)

    async def _ep_disclosure(self, path: str, payload: dict, body: bytes):
        if "bucketizations" in payload:
            return await self._ep_batch(path, payload, body)
        return await self._ep_single_key(path, payload, body)

    async def _ep_single_key(self, path: str, payload: dict, body: bytes):
        """Single-bucketization endpoints (``/disclosure``, ``/safety``):
        derive the plane key with one pass over the raw lists, memoize
        the decision against the request bytes, dispatch."""
        tenant = self._tenant(payload)
        mode = self._mode(payload)
        model, params, cparams, params_wire = self._effective_threat(
            payload, tenant
        )
        k = require(payload, "k", int)
        buckets = require(payload, "buckets", list)
        items = signature_items_from_lists(buckets)
        key = shard_key(mode, model, (k,), items, cparams, tenant)
        # Only plain /disclosure singles may be answered from a peek or
        # folded into an upstream batch: /safety has a different response
        # shape, witnesses need the real endpoint, and a negative k must
        # reach the shard's own validation for the identical 400.
        coalescible = (
            path == "/disclosure"
            and k >= 0
            and not require(
                payload, "witness", bool, optional=True, default=False
            )
        )
        entry = _RouteEntry(
            key % len(self.shards),
            mode,
            model,
            k,
            items,
            buckets if coalescible else None,
            coalescible,
            tenant,
            params,
            cparams,
            params_wire,
        )
        self._memoize(path, body, entry)
        return await self._dispatch_single(path, body, entry)

    async def _ep_compare(self, path: str, payload: dict, body: bytes):
        """``/compare`` spans models; its plane key uses the model tuple."""
        tenant = self._tenant(payload)
        mode = self._mode(payload)
        models = payload.get("models", ["implication", "negation"])
        if not isinstance(models, list) or not all(
            isinstance(name, str) for name in models
        ):
            raise BadRequest("'models' must be a list of model names")
        if "params" in payload:
            cparams = canonical_params(decode_params(payload["params"]))
        elif tenant is not None and "models" not in payload:
            cparams = canonical_params(self.tenants[tenant]["params"])
        else:
            cparams = ()
        ks = tuple(require_ks(payload))
        shard = self._shard_for(
            mode, tuple(models), ks, require(payload, "buckets", list),
            cparams, tenant,
        )
        return await self._forward(shard, "POST", path, body)

    async def _ep_batch(self, path: str, payload: dict, body: bytes):
        """Split a batch by per-bucketization plane key, merge losslessly.

        When every bucketization hashes to one shard there is nothing to
        split: the original request bytes are forwarded whole (no sub-batch
        re-encoding, no merge pass) and the skip is counted in
        ``whole_batches``.
        """
        tenant = self._tenant(payload)
        mode = self._mode(payload)
        model, _params, cparams, params_wire = self._effective_threat(
            payload, tenant
        )
        ks = require_ks(payload)
        raw = require(payload, "bucketizations", list)
        if not raw:
            raise BadRequest("'bucketizations' must be a non-empty list")
        groups: dict[int, list[int]] = {}
        for position, buckets in enumerate(raw):
            shard = self._shard_for(
                mode, model, tuple(ks), buckets, cparams, tenant
            )
            groups.setdefault(shard.index, []).append(position)
        if len(groups) == 1:
            self.stats.whole_batches += 1
            shard = self.shards[next(iter(groups))]
            return await self._forward(shard, "POST", path, body)
        self.stats.split_batches += 1

        async def _sub(shard_index: int, positions: list[int]):
            sub_payload = {
                "bucketizations": [raw[p] for p in positions],
                "ks": ks,
                "model": model,
                "exact": mode == "exact",
            }
            if params_wire is not None:
                sub_payload["params"] = params_wire
            if tenant is not None:
                sub_payload["tenant"] = tenant
            return await self._forward(
                self.shards[shard_index],
                "POST",
                path,
                json.dumps(sub_payload).encode(),
            )

        answers = await asyncio.gather(
            *(_sub(index, positions) for index, positions in groups.items())
        )
        merged: list[Any] = [None] * len(raw)
        for (status, answer), positions in zip(answers, groups.values()):
            if status != 200:
                return status, answer
            for position, series in zip(positions, answer["series"]):
                merged[position] = series
        return 200, {
            "model": model,
            "ks": sorted(set(ks)),
            "exact": mode == "exact",
            "series": merged,
        }

    async def _ep_publish(self, path: str, payload: dict, body: bytes):
        """``/publish`` routes by **table affinity** (see
        :func:`table_shard_key`): every version of one table reaches the
        shard owning that table's ledger slice, whatever its buckets hash
        to. The original bytes are forwarded untouched."""
        tenant = self._tenant(payload)
        table = require(payload, "table", str)
        shard = self.shards[
            table_shard_key(table, tenant) % len(self.shards)
        ]
        return await self._forward(shard, "POST", path, body)

    async def _ep_releases(self):
        """``GET /releases`` fans out to every shard and merges: each shard
        only knows the tables affinity-routed to it."""
        answers = await asyncio.gather(
            *(
                self._forward(shard, "GET", "/releases", b"")
                for shard in self.shards
            )
        )
        releases: list[dict[str, Any]] = []
        counters: Counter[str] = Counter()
        for status, answer in answers:
            if status != 200:
                return status, answer
            releases.extend(answer.get("releases", []))
            ledger = answer.get("ledger")
            if isinstance(ledger, dict):
                for key, value in ledger.items():
                    if isinstance(value, int):
                        counters[key] += value
        releases.sort(
            key=lambda entry: (
                entry.get("tenant") or "",
                entry.get("table", ""),
                entry.get("version", 0),
            )
        )
        return 200, {"releases": releases, "ledger": dict(counters)}

    async def _ep_release(self, path: str):
        """``GET /releases/{table}/{version}`` follows the same table
        affinity as ``/publish`` (the release record lives on exactly one
        shard)."""
        parts = path.split("/")
        if len(parts) != 4 or not parts[2] or not parts[3]:
            raise BadRequest(
                "release path must be /releases/{table}/{version}"
            )
        tenant, _, table = parts[2].rpartition(":")
        shard = self.shards[
            table_shard_key(table, tenant or None) % len(self.shards)
        ]
        return await self._forward(shard, "GET", path, b"")

    async def _ep_models(self):
        """Registry introspection is shard-independent: ask shard 0."""
        return await self._forward(self.shards[0], "GET", "/models", b"")

    async def _ep_healthz(self):
        async def _probe(shard) -> dict[str, Any]:
            entry: dict[str, Any] = {
                "shard": shard.index,
                "mode": shard.mode,
                "alive": shard.alive(),
                "port": shard.port,
                "boots": shard.boots,
            }
            try:
                status, answer = await asyncio.wait_for(
                    self._forward_once(shard, "GET", "/healthz", b""),
                    timeout=min(self.forward_timeout, 10.0),
                )
                entry["ok"] = status == 200 and answer.get("ok", False)
            except (
                Unavailable,
                ConnectionError,
                OSError,
                asyncio.IncompleteReadError,
                asyncio.TimeoutError,
            ):
                entry["ok"] = False
            return entry

        shards = await asyncio.gather(*(_probe(s) for s in self.shards))
        ok = all(entry["ok"] for entry in shards)
        return (200 if ok else 503), {
            "ok": ok,
            "shards": shards,
            "uptime_s": round(time.monotonic() - self.stats.started, 3),
        }

    async def _ep_stats(self):
        async def _shard_stats(shard) -> dict[str, Any]:
            try:
                status, answer = await self._forward(
                    shard, "GET", "/stats", b""
                )
            except Unavailable:
                return {"shard": shard.index, "unreachable": True}
            if status != 200:
                return {"shard": shard.index, "unreachable": True}
            answer["shard"] = shard.index
            return answer

        shard_stats = await asyncio.gather(
            *(_shard_stats(shard) for shard in self.shards)
        )
        totals: Counter[str] = Counter()
        tenant_requests: Counter[str] = Counter()
        ledger_totals: Counter[str] = Counter()
        for entry in shard_stats:
            ledger = entry.get("ledger")
            if isinstance(ledger, dict):
                for field, value in ledger.items():
                    if isinstance(value, int):
                        ledger_totals[field] += value
            service = entry.get("service")
            if not isinstance(service, dict):
                continue
            for field in (
                "requests_total",
                "single_requests",
                "batch_requests",
                "cache_fast_hits",
                "coalesced_batches",
                "coalesced_singles",
                "publishes_total",
                "publishes_accepted",
                "publishes_rejected",
                "publish_multisets_evaluated",
                "publish_multisets_reused",
            ):
                value = service.get(field)
                if isinstance(value, int):
                    totals[field] += value
            by_tenant = service.get("by_tenant")
            if isinstance(by_tenant, dict):
                for tenant, count in by_tenant.items():
                    if isinstance(count, int):
                        tenant_requests[tenant] += count
        router = self.stats.as_dict()
        router["shards"] = len(self.shards)
        router["shard_mode"] = self.shard_mode
        router["connections"] = self.connections.as_dict()
        router["max_connections"] = self.max_connections
        answer = {
            "router": router,
            "totals": dict(totals),
            "ledger": dict(ledger_totals),
            "shards": shard_stats,
        }
        if self.tenants:
            answer["tenants"] = {
                tenant: {"requests": tenant_requests.get(tenant, 0)}
                for tenant in self.tenants
            }
        return 200, answer


class BackgroundRouter(BackgroundHost):
    """Run a :class:`ShardRouter` on a daemon thread (tests, benchmarks).

    Usage::

        with BackgroundRouter(shards=3, backend="serial") as bg:
            value = bg.client().disclosure(bucketization, k=3)
    """

    def _make_service(self) -> ShardRouter:
        return ShardRouter(**self._kwargs)
