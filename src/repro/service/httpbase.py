"""Shared HTTP plumbing for the service tier: keep-alive, caps, lifecycle.

Both serving processes in this package — the single-engine
:class:`~repro.service.server.DisclosureService` and the
:class:`~repro.service.router.ShardRouter` front — speak the same
deliberately minimal JSON-over-HTTP/1.1 dialect. :class:`JsonHttpServer`
is that dialect, factored out once:

- **keep-alive**: HTTP/1.1 connections serve a loop of requests until the
  client sends ``Connection: close`` (HTTP/1.0 clients must opt *in* with
  ``Connection: keep-alive``). This is the serving tier's main throughput
  lever — the PR-4 protocol paid a TCP handshake per request and
  documented that as its cap.
- **read timeouts**: an idle keep-alive connection is dropped silently
  after ``request_timeout`` seconds; a connection that stalls *mid*
  request gets a 400 and is closed (slow-loris guard).
- **connection caps**: ``max_connections`` bounds concurrently open
  connections; excess connections receive an immediate 503 and a close.
  :class:`ConnectionStats` counts open/total/peak/keep-alive reuse for
  ``/stats``.

Subclasses implement :meth:`JsonHttpServer._route` (and optionally
:meth:`JsonHttpServer.note_request`); :class:`BackgroundHost` runs any such
server on a daemon thread for tests and benchmarks.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import socket
import threading
from typing import Any

from repro.errors import ReproError

__all__ = [
    "MAX_BODY_BYTES",
    "BadRequest",
    "Unavailable",
    "require",
    "require_ks",
    "set_nodelay",
    "ConnectionStats",
    "JsonHttpServer",
    "BackgroundHost",
]

#: Largest accepted request body (a bucketization of ~a million values).
MAX_BODY_BYTES = 32 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class BadRequest(Exception):
    """Request validation failed (the message becomes the 400 body)."""


class Unavailable(Exception):
    """The service is shutting down or a dependency is gone (a 503 body)."""


def require(payload: dict, field: str, kind, *, optional=False, default=None):
    """One field of a JSON body, type-checked (bool is not an int here)."""
    if field not in payload:
        if optional:
            return default
        raise BadRequest(f"missing required field {field!r}")
    value = payload[field]
    if kind is int and isinstance(value, bool):
        raise BadRequest(f"field {field!r} must be an integer")
    if not isinstance(value, kind):
        raise BadRequest(
            f"field {field!r} must be {getattr(kind, '__name__', kind)}"
        )
    return value


def require_ks(payload: dict) -> list[int]:
    """The ``"ks"`` field as a non-empty list of real ints (no bools)."""
    ks = require(payload, "ks", list)
    if not ks or not all(
        isinstance(k, int) and not isinstance(k, bool) for k in ks
    ):
        raise BadRequest("'ks' must be a non-empty list of integers")
    return ks


def set_nodelay(sock: Any) -> None:
    """Set ``TCP_NODELAY`` on a socket, tolerating non-TCP transports.

    Every socket in the serving tier carries small keep-alive JSON
    requests — exactly the traffic pattern Nagle's algorithm delays by up
    to an RTT while it waits for more payload to batch. The tier calls
    this on every accepted connection, every client connection, and every
    router→shard pool connection; Unix sockets and mocks (no
    ``IPPROTO_TCP``) are silently left alone.
    """
    if sock is None:
        return
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except (OSError, AttributeError):
        pass


class ConnectionStats:
    """Connection-level counters shared by every :class:`JsonHttpServer`."""

    __slots__ = (
        "total",
        "open",
        "max_open",
        "keepalive_requests",
        "rejected_over_cap",
    )

    def __init__(self) -> None:
        self.total = 0
        self.open = 0
        self.max_open = 0
        self.keepalive_requests = 0
        self.rejected_over_cap = 0

    def as_dict(self) -> dict[str, int]:
        """The connection counters as the ``/stats`` JSON section."""
        return {
            "total": self.total,
            "open": self.open,
            "max_open": self.max_open,
            "keepalive_requests": self.keepalive_requests,
            "rejected_over_cap": self.rejected_over_cap,
        }


class JsonHttpServer:
    """An asyncio socket server speaking keep-alive JSON-over-HTTP/1.1.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read it back from
        :attr:`port` after :meth:`start_http`).
    request_timeout:
        Seconds a connection may sit idle between requests, or take to
        deliver one complete request, before it is dropped (``None``
        disables — only for trusted loopback use).
    max_connections:
        Cap on concurrently open connections; connections beyond it get an
        immediate 503 (``None`` = unbounded).
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        request_timeout: float | None = 30.0,
        max_connections: int | None = None,
    ) -> None:
        if request_timeout is not None and request_timeout <= 0:
            raise ValueError(
                f"request_timeout must be positive or None, got "
                f"{request_timeout}"
            )
        if max_connections is not None and max_connections <= 0:
            raise ValueError(
                f"max_connections must be positive or None, got "
                f"{max_connections}"
            )
        self.host = host
        self._requested_port = port
        self.request_timeout = request_timeout
        self.max_connections = max_connections
        self.connections = ConnectionStats()
        self._server: asyncio.AbstractServer | None = None
        self._open_writers: set = set()
        self._stopping = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The actually bound port (valid after :meth:`start_http`)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    async def start_http(self) -> None:
        """Bind the listening socket and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )

    async def stop_http(self) -> None:
        """Stop accepting and wake every parked keep-alive connection."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
        # Keep-alive connections park on a read between requests; close
        # their transports so the handlers wake and exit now, not when the
        # idle timeout expires — on Python >= 3.12 wait_closed() waits for
        # every connection handler, so shutdown would otherwise stall for
        # up to request_timeout (forever with request_timeout=None).
        for writer in list(self._open_writers):
            writer.close()
        if self._server is not None:
            await self._server.wait_closed()

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    async def _route(self, method: str, path: str, body: bytes):
        """Answer one request: ``(status, payload-dict)``."""
        raise NotImplementedError

    def note_request(self, endpoint: str | None, status: int) -> None:
        """Per-request accounting hook (endpoint is None before parsing)."""

    async def dispatch(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict, bool]:
        """:meth:`_route` wrapped in the dialect's exception mapping.

        Returns ``(status, payload, must_close)`` — ``must_close`` marks
        responses after which a keep-alive connection must not be reused.
        This is the full request semantics minus the socket, which is what
        lets an in-process shard answer through the same code path as a
        real connection (see :mod:`repro.service.router`).
        """
        try:
            status, payload = await self._route(method, path, body)
            return status, payload, False
        except BadRequest as exc:
            return 400, {"error": str(exc)}, False
        except Unavailable as exc:
            return 503, {"error": str(exc)}, True
        except (ReproError, ValueError) as exc:
            return 400, {"error": str(exc)}, False
        except Exception as exc:  # never leak a traceback to the caller
            return 500, {"error": f"{type(exc).__name__}: {exc}"}, False

    # ------------------------------------------------------------------
    # The connection loop
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        stats = self.connections
        if (
            self.max_connections is not None
            and stats.open >= self.max_connections
        ):
            stats.rejected_over_cap += 1
            await self._write_response(
                writer,
                503,
                {"error": "connection limit reached"},
                keep_alive=False,
            )
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()
            return
        stats.total += 1
        stats.open += 1
        stats.max_open = max(stats.max_open, stats.open)
        set_nodelay(writer.get_extra_info("socket"))
        self._open_writers.add(writer)
        served = 0
        try:
            while not self._stopping:
                if not await self._serve_one(reader, writer, served):
                    break
                served += 1
        except asyncio.CancelledError:
            # Event-loop shutdown cancels connection tasks parked on an
            # idle keep-alive read; that is connection teardown, not an
            # error to propagate (a cancelled task would make asyncio's
            # stream machinery log a spurious traceback).
            pass
        finally:
            stats.open -= 1
            self._open_writers.discard(writer)
            writer.close()
            with contextlib.suppress(
                ConnectionError, OSError, asyncio.CancelledError
            ):
                await writer.wait_closed()

    async def _serve_one(self, reader, writer, served: int) -> bool:
        """One request/response exchange; True iff the connection lives on.

        ``served`` is the number of requests already answered on this
        connection (so ``served > 0`` marks a keep-alive reuse).
        """
        status, payload = 500, {"error": "internal error"}
        endpoint: str | None = None
        keep_alive = False
        try:
            request = await self._read_request(reader)
            if request is None:  # clean EOF or idle keep-alive timeout
                return False
            if served > 0:  # this request rode a reused connection
                self.connections.keepalive_requests += 1
            method, path, body, keep_alive = request
            endpoint = path
            status, payload, must_close = await self.dispatch(
                method, path, body
            )
            if must_close:
                keep_alive = False
        except BadRequest as exc:
            status, payload = 400, {"error": str(exc)}
        except asyncio.TimeoutError:
            # The connection stalled mid-request: answer and drop it.
            status, payload = 400, {"error": "request read timed out"}
            keep_alive = False
        except (ConnectionError, asyncio.IncompleteReadError):
            return False
        except Exception as exc:  # never leak a traceback to the socket
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        if self._stopping:
            keep_alive = False
        self.note_request(endpoint, status)
        wrote = await self._write_response(
            writer, status, payload, keep_alive=keep_alive
        )
        return keep_alive and wrote

    async def _read_request(self, reader):
        """Minimal HTTP/1.1: request line, headers, ``Content-Length`` body.

        Returns ``(method, path, body, keep_alive)``, or ``None`` for a
        closed or idle-timed-out connection. A timeout *after* the first
        byte of a request raises :class:`asyncio.TimeoutError` (a 400).
        """
        timeout = self.request_timeout
        try:
            line = reader.readline()
            if timeout is not None:
                line = asyncio.wait_for(line, timeout)
            request_line = await line
        except (asyncio.TimeoutError, ConnectionError, asyncio.LimitOverrunError):
            return None
        if not request_line:
            return None
        rest = self._read_rest(reader, request_line)
        if timeout is not None:
            rest = asyncio.wait_for(rest, timeout)
        return await rest

    async def _read_rest(self, reader, request_line: bytes):
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            raise BadRequest("malformed request line")
        method, path = parts[0].upper(), parts[1].split("?", 1)[0]
        version = parts[2].upper() if len(parts) > 2 else "HTTP/1.0"
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise BadRequest("invalid Content-Length") from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise BadRequest(f"body too large (limit {MAX_BODY_BYTES} bytes)")
        body = await reader.readexactly(length) if length else b""
        connection = headers.get("connection", "").lower()
        if version == "HTTP/1.1":
            keep_alive = connection != "close"
        else:  # HTTP/1.0 (and anything older) must opt in
            keep_alive = connection == "keep-alive"
        return method, path, body, keep_alive

    async def _write_response(
        self, writer, status: int, payload, *, keep_alive: bool
    ) -> bool:
        try:
            body = json.dumps(payload, allow_nan=False).encode()
        except ValueError:  # defense in depth; wire.encode_value rejects first
            status = 500
            body = b'{"error": "non-finite number in response"}'
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n\r\n"
        ).encode("latin-1")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, OSError):
            return False
        return True


class BackgroundHost:
    """Run a :class:`JsonHttpServer` subclass on a daemon thread.

    Subclasses implement :meth:`_make_service` returning an unstarted
    server object with ``async start()`` / ``async stop()`` methods and
    ``host`` / ``port`` attributes. Entering the context manager starts
    the loop thread and blocks until the server is bound (surfacing any
    startup error); exiting requests a graceful stop and joins the thread.
    """

    def __init__(self, **service_kwargs: Any) -> None:
        service_kwargs.setdefault("port", 0)
        self._kwargs = service_kwargs
        self.service: Any = None
        self.host: str | None = None
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._started = threading.Event()
        self._error: BaseException | None = None
        self._thread: threading.Thread | None = None

    def _make_service(self):
        raise NotImplementedError

    def __enter__(self):
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=120):
            raise RuntimeError("service failed to start within 120s")
        if self._error is not None:
            raise RuntimeError("service failed to start") from self._error
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=120)

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surfaced by __enter__ or swallowed
            self._error = exc
            self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self.service = self._make_service()
        await self.service.start()
        self.host, self.port = self.service.host, self.service.port
        self._started.set()
        await self._stop_event.wait()
        await self.service.stop()

    def client(self):
        """A :class:`~repro.service.client.ServiceClient` bound to this
        server (import deferred to keep server/client import-independent)."""
        from repro.service.client import ServiceClient

        assert self.host is not None and self.port is not None
        return ServiceClient(self.host, self.port)
