"""The disclosure service: a stdlib-only asyncio HTTP layer over the engine.

:class:`DisclosureService` wraps two long-lived
:class:`~repro.engine.engine.DisclosureEngine` instances — one per
arithmetic mode — behind a small JSON-over-HTTP API, and adds the one thing
a serving layer can do that a library call cannot: **request coalescing**.
Concurrent single ``/disclosure`` requests are drained into groups of
``(mode, model, k)`` and evaluated as one
:meth:`~repro.engine.engine.DisclosureEngine.evaluate_many` call on the
signature plane, so N clients asking about the same (or same-shaped)
anonymization cost one computation, and a parallel execution backend sees
real batches instead of single lookups.

The HTTP dialect lives in :mod:`repro.service.httpbase`
(:class:`~repro.service.httpbase.JsonHttpServer`): **keep-alive**
HTTP/1.1 with per-request read timeouts and connection caps — one
connection carries many requests, which is what lets the pooled
:class:`~repro.service.client.ServiceClient` amortize TCP setup away.
Endpoints:

=====================  ====  ==================================================
path                   verb  body / answer
=====================  ====  ==================================================
``/disclosure``        POST  single ``{buckets, k, model?, exact?, witness?}``
                             or batch ``{bucketizations, ks, model?, exact?}``
``/safety``            POST  ``{buckets, c, k, model?, exact?}`` -> safe + value
``/compare``           POST  ``{buckets, ks, models?, exact?}`` -> per-model
                             series (Figure 5 as an endpoint)
``/publish``           POST  ``{table, buckets, c, k, model?, params?,
                             exact?, tenant?, full?, witness?}`` -> the
                             republication verdict (see
                             :mod:`repro.publish`)
``/releases``          GET   summaries of every recorded release + ledger
                             totals
``/releases/{t}/{v}``  GET   one full release record (``{t}`` may be
                             tenant-qualified as ``tenant:table``)
``/models``            GET   registry introspection (every registered
                             adversary and its contract flags)
``/stats``             GET   service counters (incl. connection/keep-alive
                             counters) + per-engine
                             :class:`~repro.engine.engine.EngineStats`,
                             cache/plane sizes, backend telemetry, ledger
                             totals
``/healthz``           GET   liveness
=====================  ====  ==================================================

Lifecycle matches the engine's: :meth:`DisclosureService.start` loads any
persisted cache (``load_cache``), :meth:`DisclosureService.stop` drains,
saves the caches and closes the engines — ``repro serve`` ties those to
process SIGTERM/SIGINT. :class:`BackgroundService` runs the whole thing on
a daemon thread for tests and benchmarks. For the horizontally sharded
topology (N of these processes behind a plane-key hash router) see
:mod:`repro.service.router`.
"""

from __future__ import annotations

import asyncio
import json
import re
import time
from collections import Counter
from collections.abc import Mapping
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any

from repro.bucketization.bucketization import Bucketization
from repro.engine.backend import PersistentBackend
from repro.engine.base import (
    AdversaryModel,
    available_adversaries,
    canonical_params,
    get_adversary,
    param_schema,
)
from repro.engine.engine import DisclosureEngine
from repro.engine.plane import CachePolicy
from repro.publish.engine import TABLE_NAME, RepublicationEngine
from repro.publish.ledger import ReleaseLedger, multiset_to_wire
from repro.service.httpbase import (
    MAX_BODY_BYTES,
    BackgroundHost,
    BadRequest,
    JsonHttpServer,
    Unavailable,
    require,
    require_ks,
)
from repro.service.wire import (
    bucketization_from_payload,
    decode_params,
    decode_value,
    encode_series,
    encode_value,
    encode_witness,
    signature_items_from_lists,
)

__all__ = [
    "MAX_BODY_BYTES",
    "ROUTES",
    "PREFIX_ROUTES",
    "ServiceStats",
    "DisclosureService",
    "BackgroundService",
    "load_tenants",
]

#: Tenant ids become cache-file name components, so they are restricted to
#: a filename-safe alphabet up front.
_TENANT_ID = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_-]*$")
#: A shard-suffixed cache prefix (the router hands each shard
#: ``<prefix>.shard<i>``); tenants are namespaced *before* the suffix.
_SHARD_SUFFIX = re.compile(r"(\.shard\d+)$")


def load_tenants(source: str | Path | Mapping[str, Any]) -> dict[str, dict]:
    """Validate a tenant topology (a JSON file path, or its already-parsed
    mapping) into ``{tenant: {"model", "params", "params_wire"}}``.

    Each tenant entry maps a tenant id to its *default* threat model:
    an optional registered model ``name`` and an optional ``params`` wire
    object (decoded here once, and test-constructed so a bad topology
    fails at boot, not on the first request). ``params_wire`` keeps the
    original JSON shape for re-serialization (subprocess shards receive
    the topology over ``--tenants``).

    Raises :class:`ValueError` on any problem — the CLI maps that to a
    clean exit 1.
    """
    if isinstance(source, (str, Path)):
        try:
            raw = json.loads(Path(source).read_text(encoding="utf-8"))
        except OSError as exc:
            raise ValueError(f"cannot read tenants file {source}: {exc}") from None
        except json.JSONDecodeError as exc:
            raise ValueError(f"tenants file {source} is not JSON: {exc}") from None
    else:
        raw = source
    if not isinstance(raw, Mapping) or not raw:
        raise ValueError("tenants must be a non-empty JSON object")
    tenants: dict[str, dict] = {}
    for tenant, entry in raw.items():
        if not isinstance(tenant, str) or not _TENANT_ID.match(tenant):
            raise ValueError(
                f"tenant id {tenant!r} must match {_TENANT_ID.pattern} "
                "(it names cache files)"
            )
        if entry is None:
            entry = {}
        if not isinstance(entry, Mapping):
            raise ValueError(f"tenant {tenant!r} entry must be an object")
        unknown = set(entry) - {"model", "params"}
        if unknown:
            raise ValueError(
                f"tenant {tenant!r} has unknown keys {sorted(unknown)}"
            )
        name = entry.get("model", "implication")
        if name not in available_adversaries():
            raise ValueError(
                f"tenant {tenant!r} names unknown model {name!r}; "
                f"registered: {', '.join(available_adversaries())}"
            )
        params_wire = entry.get("params")
        params = decode_params(params_wire) if params_wire is not None else {}
        try:
            get_adversary(name, **params)
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"tenant {tenant!r} default params are invalid: {exc}"
            ) from None
        tenants[tenant] = {
            "model": name,
            "params": params,
            "params_wire": params_wire,
        }
    return tenants


#: The two engine modes a service always carries.
_MODES = ("float", "exact")


#: The exact-match endpoint table: ``path -> (verb, handler attribute)``.
#: This is the single source of truth for what the service serves —
#: :meth:`DisclosureService._route` dispatches from it and
#: ``scripts/check_docs.py`` asserts ``docs/wire-protocol.md`` matches it.
ROUTES: dict[str, tuple[str, str]] = {
    "/disclosure": ("POST", "_ep_disclosure"),
    "/safety": ("POST", "_ep_safety"),
    "/compare": ("POST", "_ep_compare"),
    "/publish": ("POST", "_ep_publish"),
    "/models": ("GET", "_ep_models"),
    "/releases": ("GET", "_ep_releases"),
    "/stats": ("GET", "_ep_stats"),
    "/healthz": ("GET", "_ep_healthz"),
}

#: Parameterized endpoints, matched by path prefix. The handler receives
#: the raw path and parses its trailing segments.
PREFIX_ROUTES: dict[str, tuple[str, str]] = {
    "/releases/": ("GET", "_ep_release"),
}


class ServiceStats:
    """The serving-layer counters behind ``/stats`` (engine counters live on
    each engine's own :class:`~repro.engine.engine.EngineStats`).

    ``coalesced_batches`` counts engine calls that served **more than one**
    concurrent single request; ``coalesced_singles`` counts the singles so
    served — together they are the observable behind the coalescing claim
    tested end-to-end and benchmarked in ``benchmarks/bench_service.py``.
    """

    def __init__(self) -> None:
        self.started = time.monotonic()
        self.requests_total = 0
        self.by_endpoint: Counter[str] = Counter()
        self.by_status: Counter[int] = Counter()
        self.single_requests = 0
        self.batch_requests = 0
        self.cache_fast_hits = 0
        self.coalesced_batches = 0
        self.coalesced_singles = 0
        self.max_coalesced = 0
        self.by_tenant: Counter[str] = Counter()
        self.publishes_total = 0
        self.publishes_accepted = 0
        self.publishes_rejected = 0
        self.publish_multisets_evaluated = 0
        self.publish_multisets_reused = 0

    def note_coalesced(self, group_size: int) -> None:
        """Record one drained coalescer group of ``group_size`` singles."""
        if group_size > 1:
            self.coalesced_batches += 1
            self.coalesced_singles += group_size
        self.max_coalesced = max(self.max_coalesced, group_size)

    def note_publish(self, verdict: Mapping[str, Any]) -> None:
        """Fold one publish verdict's decision + work counters in."""
        work = verdict["work"]
        self.publishes_total += 1
        if verdict["accepted"]:
            self.publishes_accepted += 1
        else:
            self.publishes_rejected += 1
        self.publish_multisets_evaluated += work["evaluated_multisets"]
        self.publish_multisets_reused += work["reused_multisets"]

    def as_dict(self) -> dict[str, Any]:
        """The service counters as the ``/stats -> service`` JSON section."""
        return {
            "uptime_s": round(time.monotonic() - self.started, 3),
            "requests_total": self.requests_total,
            "by_endpoint": dict(self.by_endpoint),
            "by_status": {str(k): v for k, v in self.by_status.items()},
            "single_requests": self.single_requests,
            "batch_requests": self.batch_requests,
            "cache_fast_hits": self.cache_fast_hits,
            "coalesced_batches": self.coalesced_batches,
            "coalesced_singles": self.coalesced_singles,
            "max_coalesced": self.max_coalesced,
            "by_tenant": dict(self.by_tenant),
            "publishes_total": self.publishes_total,
            "publishes_accepted": self.publishes_accepted,
            "publishes_rejected": self.publishes_rejected,
            "publish_multisets_evaluated": self.publish_multisets_evaluated,
            "publish_multisets_reused": self.publish_multisets_reused,
        }


class _Pending:
    """One enqueued single evaluation awaiting a coalesced batch."""

    __slots__ = ("bucketization", "instance", "future")

    def __init__(
        self, bucketization: Bucketization, instance: AdversaryModel, future
    ) -> None:
        self.bucketization = bucketization
        #: The resolved model instance — every member of a coalescer group
        #: shares one (same name + canonical params => same engine memo).
        self.instance = instance
        self.future = future


class DisclosureService(JsonHttpServer):
    """A long-lived disclosure server over two mode-fixed engines.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read it back from
        :attr:`port` after :meth:`start` — the pattern tests and
        ``repro serve --port 0`` use).
    backend, workers, cache_limit, kernel:
        Engine construction knobs, exactly as the CLI flags: each mode's
        engine gets its own execution backend built from the ``backend``
        name, a :class:`~repro.engine.plane.CachePolicy` bounded by
        ``cache_limit``, and the MINIMIZE1/MINIMIZE2 ``kernel`` selector
        (the exact engine always resolves to scalar).
    cache_path:
        Optional path *prefix* for cache persistence. Boot loads
        ``<prefix>.float.pkl`` / ``<prefix>.exact.pkl`` when present
        (counts in :attr:`loaded_entries`); :meth:`stop` writes both back.
    batch_window:
        Seconds the coalescer waits after the first pending single request
        before draining the queue — the knob trading a little latency for
        batch size. 0 drains immediately (still coalescing whatever piled
        up while the engine thread was busy).
    request_timeout:
        Seconds a keep-alive connection may sit idle, or take to deliver a
        complete request, before it is dropped (slow-loris guard; ``None``
        disables — only for trusted loopback use).
    max_connections:
        Cap on concurrently open connections (503 beyond it; ``None`` =
        unbounded). The counters behind it appear under
        ``/stats -> service.connections``.
    ledger_file:
        Optional SQLite path for the release ledger behind ``/publish``
        (in-memory when absent — publish still works, but release history
        dies with the process). In a sharded fleet the router hands each
        subprocess shard ``<prefix>.shard<i>.sqlite``.

    Notes
    -----
    With ``backend="persistent"`` the worker processes fork lazily on the
    first coalesced batch, i.e. from a process that already runs the event
    loop and engine threads. The worker target only touches modules this
    package has already imported, so the usual fork-under-threads import
    deadlock does not apply to our own code — but a plugin model whose
    evaluation forks further, or an embedding application holding its own
    locks across threads, should prefer ``backend="serial"``/``"pool"`` or
    pass a pre-built backend with a ``spawn`` multiprocessing context.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        backend: str = "serial",
        workers: int = 1,
        kernel: str = "auto",
        cache_limit: int | None = None,
        cache_path: str | Path | None = None,
        batch_window: float = 0.002,
        request_timeout: float | None = 30.0,
        max_connections: int | None = None,
        tenants: str | Path | Mapping[str, Any] | None = None,
        ledger_file: str | Path | None = None,
    ) -> None:
        super().__init__(
            host=host,
            port=port,
            request_timeout=request_timeout,
            max_connections=max_connections,
        )
        if batch_window < 0:
            raise ValueError(f"batch_window must be >= 0, got {batch_window}")
        self.batch_window = batch_window
        self.cache_path = Path(cache_path) if cache_path is not None else None

        def _engine_pair() -> dict[str, DisclosureEngine]:
            return {
                mode: DisclosureEngine(
                    exact=(mode == "exact"),
                    policy=CachePolicy(max_entries=cache_limit),
                    workers=workers,
                    backend=backend,
                    kernel=kernel,
                )
                for mode in _MODES
            }

        self.engines: dict[str, DisclosureEngine] = _engine_pair()
        #: tenant id -> its default threat model (see :func:`load_tenants`).
        self.tenants: dict[str, dict] = (
            load_tenants(tenants) if tenants is not None else {}
        )
        #: tenant id -> its own mode-fixed engine pair. Structural cache
        #: isolation: a tenant's entries live in its own engines and
        #: persist to its own ``<prefix>.<tenant>[.shard<i>].<mode>.pkl``.
        self.tenant_engines: dict[str, dict[str, DisclosureEngine]] = {
            tenant: _engine_pair() for tenant in self.tenants
        }
        #: The release ledger behind ``/publish`` — persistent when
        #: ``ledger_file`` is given (the router hands each subprocess shard
        #: its own ``<prefix>.shard<i>.sqlite``), in-memory otherwise.
        self.ledger = ReleaseLedger(
            str(ledger_file) if ledger_file is not None else ":memory:"
        )
        #: Lazily-built ``(tenant-or-None, mode) ->``
        #: :class:`~repro.publish.engine.RepublicationEngine`, each wrapping
        #: this service's existing engine of that mode (publish work shares
        #: the engine cache with the interactive endpoints) and the shared
        #: ledger (tenant namespacing lives in the ledger rows).
        self._republishers: dict[
            tuple[str | None, str], RepublicationEngine
        ] = {}
        self.stats = ServiceStats()
        self.loaded_entries: dict[str, int] = dict.fromkeys(_MODES, 0)
        self.saved_entries: dict[str, int] = dict.fromkeys(_MODES, 0)
        self.tenant_loaded: dict[tuple[str, str], int] = {
            (tenant, mode): 0 for tenant in self.tenants for mode in _MODES
        }
        # All engine work runs on ONE executor thread: the engines are not
        # thread-safe, and the serialization is what piles concurrent
        # singles into the pending queue for the coalescer to drain.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-engine"
        )
        #: Pending singles, grouped by everything that selects an engine
        #: call: ``(tenant, mode, model name, canonical params, k)``.
        self._pending: dict[
            tuple[str | None, str, str, tuple, int], list[_Pending]
        ] = {}
        self._kick: asyncio.Event | None = None
        self._dispatcher: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _mode_cache_file(self, mode: str, tenant: str | None = None) -> Path:
        assert self.cache_path is not None
        base = self.cache_path.name
        if tenant is not None:
            # Tenant goes before any router-assigned shard suffix, giving
            # <prefix>.<tenant>.shard<i>.<mode>.pkl in a sharded fleet and
            # <prefix>.<tenant>.<mode>.pkl for a single service.
            if _SHARD_SUFFIX.search(base):
                base = _SHARD_SUFFIX.sub(rf".{tenant}\1", base)
            else:
                base = f"{base}.{tenant}"
        return self.cache_path.with_name(f"{base}.{mode}.pkl")

    def _all_engines(self):
        """Every ``(tenant-or-None, mode, engine)`` this service carries."""
        for mode, engine in self.engines.items():
            yield None, mode, engine
        for tenant, engines in self.tenant_engines.items():
            for mode, engine in engines.items():
                yield tenant, mode, engine

    async def start(self) -> None:
        """Load persisted caches, start the coalescer and the socket server."""
        await self.start_local()
        await self.start_http()

    async def start_local(self) -> None:
        """The socketless half of :meth:`start`: load persisted caches and
        start the coalescer — everything but the listening socket.

        This is how an **in-process shard** boots: the router embeds a
        :class:`DisclosureService` directly on its own event loop and
        feeds it through :meth:`~repro.service.httpbase.JsonHttpServer.dispatch`,
        so the engines, coalescer, stats and cache lifecycle behave exactly
        as in a subprocess shard — minus the socket and the extra process.
        """
        if self.cache_path is not None:
            for tenant, mode, engine in self._all_engines():
                path = self._mode_cache_file(mode, tenant)
                if path.exists():
                    loaded = engine.load_cache(path)
                    if tenant is None:
                        self.loaded_entries[mode] = loaded
                    else:
                        self.tenant_loaded[(tenant, mode)] = loaded
        self._kick = asyncio.Event()
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="repro-coalescer"
        )

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, fail queued work with 503,
        persist both caches, close the engines."""
        await self.stop_http()
        await self.stop_local()

    async def stop_local(self) -> None:
        """The socketless half of :meth:`stop` (inverse of
        :meth:`start_local`): stop the coalescer, fail queued work with
        503, persist both caches, close the engines."""
        self._stopping = True
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
        for items in self._pending.values():
            for pending in items:
                if not pending.future.done():
                    pending.future.set_exception(
                        Unavailable("service is shutting down")
                    )
        self._pending.clear()
        if self.cache_path is not None:
            for tenant, mode, engine in self._all_engines():
                saved = engine.save_cache(self._mode_cache_file(mode, tenant))
                if tenant is None:
                    self.saved_entries[mode] = saved
        for _, _, engine in self._all_engines():
            engine.close()
        self._executor.shutdown(wait=True)
        self.ledger.close()

    # ------------------------------------------------------------------
    # The coalescer
    # ------------------------------------------------------------------
    async def _enqueue_single(
        self,
        tenant: str | None,
        mode: str,
        model: str,
        cparams: tuple,
        instance: AdversaryModel,
        k: int,
        bucketization: Bucketization,
    ):
        """Queue one single evaluation and await its coalesced result."""
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        key = (tenant, mode, model, cparams, k)
        self._pending.setdefault(key, []).append(
            _Pending(bucketization, instance, future)
        )
        assert self._kick is not None
        self._kick.set()
        return await future

    async def _dispatch_loop(self) -> None:
        """Drain pending singles into engine batches, one per
        ``(tenant, mode, model, canonical params, k)`` group.

        While a batch runs on the engine thread, newly arriving singles keep
        queueing; the loop re-drains until the queue is empty, so under load
        batches form organically even with ``batch_window = 0``.
        """
        assert self._kick is not None
        loop = asyncio.get_running_loop()
        while True:
            await self._kick.wait()
            self._kick.clear()
            if self.batch_window > 0:
                await asyncio.sleep(self.batch_window)
            while self._pending:
                groups, self._pending = self._pending, {}
                try:
                    for (tenant, mode, _model, _cp, k), items in groups.items():
                        engine = self._engines_for(tenant)[mode]
                        instance = items[0].instance
                        bs = [p.bucketization for p in items]
                        try:
                            if len(bs) == 1:
                                values = [
                                    await loop.run_in_executor(
                                        self._executor,
                                        lambda: engine.evaluate(
                                            bs[0], k, model=instance
                                        ),
                                    )
                                ]
                            else:
                                series = await loop.run_in_executor(
                                    self._executor,
                                    lambda: engine.evaluate_many(
                                        bs, [k], model=instance
                                    ),
                                )
                                values = [s[k] for s in series]
                        except Exception as exc:
                            for pending in items:
                                if not pending.future.done():
                                    pending.future.set_exception(exc)
                            continue
                        self.stats.note_coalesced(len(items))
                        for pending, value in zip(items, values):
                            if not pending.future.done():
                                pending.future.set_result(value)
                except asyncio.CancelledError:
                    # stop() cancelled us mid-drain: the drained groups are
                    # no longer in self._pending, so fail their unresolved
                    # futures here or their handlers would hang forever.
                    for items in groups.values():
                        for pending in items:
                            if not pending.future.done():
                                pending.future.set_exception(
                                    Unavailable("service is shutting down")
                                )
                    raise

    # ------------------------------------------------------------------
    # Routing and endpoints
    # ------------------------------------------------------------------
    def note_request(self, endpoint: str | None, status: int) -> None:
        """Count one handled request in the service stats."""
        self.stats.requests_total += 1
        if endpoint is not None and status != 404:
            # Unknown paths are counted by status only: a public socket
            # must not let probes grow the by-endpoint counter unboundedly.
            self.stats.by_endpoint[endpoint] += 1
        self.stats.by_status[status] += 1

    async def _route(self, method: str, path: str, body: bytes):
        """Dispatch from :data:`ROUTES` / :data:`PREFIX_ROUTES` (404
        unknown path, 405 wrong verb, 503 while stopping)."""
        route = ROUTES.get(path)
        prefixed = False
        if route is None:
            for prefix, entry in PREFIX_ROUTES.items():
                if path.startswith(prefix):
                    route, prefixed = entry, True
                    break
        if route is None:
            return 404, {"error": f"unknown path {path!r}"}
        verb, attr = route
        handler = getattr(self, attr)
        if method != verb:
            return 405, {"error": f"{path} only accepts {verb}"}
        if self._stopping:
            return 503, {"error": "service is shutting down"}
        if prefixed:
            return await handler(path)
        if verb == "POST":
            payload = parse_json_body(body)
            return await handler(payload)
        return await handler()

    def _engines_for(self, tenant: str | None) -> dict[str, DisclosureEngine]:
        return self.engines if tenant is None else self.tenant_engines[tenant]

    def _tenant(self, payload: dict) -> str | None:
        tenant = require(payload, "tenant", str, optional=True, default=None)
        if tenant is None:
            return None
        if tenant not in self.tenants:
            raise BadRequest(
                f"unknown tenant {tenant!r}"
                + (
                    f"; configured: {', '.join(sorted(self.tenants))}"
                    if self.tenants
                    else " (no tenants configured)"
                )
            )
        self.stats.by_tenant[tenant] += 1
        return tenant

    def _mode_and_engine(
        self, payload: dict, tenant: str | None = None
    ) -> tuple[str, DisclosureEngine]:
        exact = require(payload, "exact", bool, optional=True, default=False)
        mode = "exact" if exact else "float"
        return mode, self._engines_for(tenant)[mode]

    def _model_name(
        self,
        payload: dict,
        field: str = "model",
        default: str = "implication",
    ) -> str:
        name = require(payload, field, str, optional=True, default=default)
        if name not in available_adversaries():
            raise BadRequest(
                f"unknown adversary model {name!r}; registered: "
                f"{', '.join(available_adversaries())}"
            )
        return name

    def _resolve_threat(
        self, payload: dict, engine: DisclosureEngine, tenant: str | None
    ) -> tuple[str, dict[str, Any], tuple, AdversaryModel]:
        """The request's effective threat model:
        ``(name, decoded params, canonical params, resolved instance)``.

        Explicit ``model``/``params`` fields win; a tenant supplies the
        defaults for whichever is absent. Constructor failures — unknown
        param name (:class:`TypeError`), out-of-range value
        (:class:`ValueError`) — surface as a 400 with the message, never
        a 500.
        """
        config = self.tenants.get(tenant) if tenant is not None else None
        name = self._model_name(
            payload,
            default=config["model"] if config else "implication",
        )
        if "params" in payload:
            params = decode_params(payload["params"])  # ValueError -> 400
        elif config is not None and "model" not in payload:
            params = config["params"]
        else:
            params = {}
        try:
            instance = engine.model(name, params)
        except (TypeError, ValueError) as exc:
            raise BadRequest(f"invalid params for model {name!r}: {exc}") from None
        return name, params, canonical_params(params), instance

    def _resolve_model(
        self, payload: dict, engine: DisclosureEngine, tenant: str | None
    ) -> tuple[str, tuple, AdversaryModel]:
        """:meth:`_resolve_threat` without the decoded params dict."""
        name, _params, cparams, instance = self._resolve_threat(
            payload, engine, tenant
        )
        return name, cparams, instance

    async def _ep_disclosure(self, payload: dict):
        if "bucketizations" in payload:
            return await self._ep_disclosure_batch(payload)
        tenant = self._tenant(payload)
        mode, engine = self._mode_and_engine(payload, tenant)
        model, cparams, instance = self._resolve_model(payload, engine, tenant)
        k = require(payload, "k", int)
        if k < 0:
            raise BadRequest(f"k must be non-negative, got {k}")
        raw_buckets = require(payload, "buckets", list)
        want_witness = require(
            payload, "witness", bool, optional=True, default=False
        )
        if not want_witness:
            # Cache-hit fast path: answer on the event loop, skipping both
            # the executor hop and the Bucketization build. peek_cached is
            # strictly read-only, so it is safe against the engine thread.
            cached = engine.peek_cached(
                instance, k, signature_items_from_lists(raw_buckets)
            )
            if cached is not None:
                self.stats.single_requests += 1
                self.stats.cache_fast_hits += 1
                return 200, {
                    "model": model,
                    "k": k,
                    "exact": mode == "exact",
                    "value": encode_value(cached),
                }
        bucketization = bucketization_from_payload(raw_buckets)
        self.stats.single_requests += 1
        value = await self._enqueue_single(
            tenant, mode, model, cparams, instance, k, bucketization
        )
        answer: dict[str, Any] = {
            "model": model,
            "k": k,
            "exact": mode == "exact",
            "value": encode_value(value),
        }
        if want_witness:
            loop = asyncio.get_running_loop()
            try:
                witness = await loop.run_in_executor(
                    self._executor,
                    lambda: engine.witness(bucketization, k, model=instance),
                )
            except NotImplementedError as exc:
                raise BadRequest(str(exc)) from None
            answer["witness"] = encode_witness(witness)
        return 200, answer

    async def _ep_disclosure_batch(self, payload: dict):
        tenant = self._tenant(payload)
        mode, engine = self._mode_and_engine(payload, tenant)
        model, _cparams, instance = self._resolve_model(
            payload, engine, tenant
        )
        ks = require_ks(payload)
        raw = require(payload, "bucketizations", list)
        if not raw:
            raise BadRequest("'bucketizations' must be a non-empty list")
        bs = [bucketization_from_payload(buckets) for buckets in raw]
        self.stats.batch_requests += 1
        loop = asyncio.get_running_loop()
        series = await loop.run_in_executor(
            self._executor,
            lambda: engine.evaluate_many(bs, ks, model=instance),
        )
        return 200, {
            "model": model,
            "ks": sorted(set(ks)),
            "exact": mode == "exact",
            "series": [encode_series(s) for s in series],
        }

    async def _ep_safety(self, payload: dict):
        tenant = self._tenant(payload)
        mode, engine = self._mode_and_engine(payload, tenant)
        model, cparams, instance = self._resolve_model(payload, engine, tenant)
        k = require(payload, "k", int)
        c = require(payload, "c", (int, float))
        if isinstance(c, bool):
            raise BadRequest("field 'c' must be a number")
        raw_buckets = require(payload, "buckets", list)
        # threshold() validates c against the model's scale before any
        # engine work (bad thresholds are a 400, not a computation).
        threshold = engine.threshold(c, model=instance)
        value = engine.peek_cached(
            instance, k, signature_items_from_lists(raw_buckets)
        )
        if value is not None:
            self.stats.cache_fast_hits += 1
        else:
            bucketization = bucketization_from_payload(raw_buckets)
            value = await self._enqueue_single(
                tenant, mode, model, cparams, instance, k, bucketization
            )
        return 200, {
            "model": model,
            "k": k,
            "c": c,
            "exact": mode == "exact",
            "safe": bool(value < threshold),
            "value": encode_value(value),
        }

    async def _ep_compare(self, payload: dict):
        tenant = self._tenant(payload)
        mode, engine = self._mode_and_engine(payload, tenant)
        ks = require_ks(payload)
        models = payload.get("models", ["implication", "negation"])
        if not isinstance(models, list) or not models:
            raise BadRequest("'models' must be a non-empty list of names")
        for name in models:
            if not isinstance(name, str):
                raise BadRequest("'models' must be a list of model names")
        names = [self._model_name({"model": name}) for name in models]
        if "params" in payload:
            # One params object, applied to every listed model (the
            # /compare use case is one parametric family across k).
            params = decode_params(payload["params"])
        elif tenant is not None and "models" not in payload:
            params = self.tenants[tenant]["params"]
        else:
            params = {}
        instances = []
        for name in names:
            try:
                instances.append(engine.model(name, params))
            except (TypeError, ValueError) as exc:
                raise BadRequest(
                    f"invalid params for model {name!r}: {exc}"
                ) from None
        bucketization = bucketization_from_payload(
            require(payload, "buckets", list)
        )
        loop = asyncio.get_running_loop()
        comparison = await loop.run_in_executor(
            self._executor,
            lambda: engine.compare(bucketization, ks, models=instances),
        )
        return 200, {
            "ks": sorted(set(ks)),
            "exact": mode == "exact",
            "kernel": engine.kernel,
            "series": {
                name: encode_series(series)
                for name, series in comparison.items()
            },
        }

    # ------------------------------------------------------------------
    # Republication endpoints
    # ------------------------------------------------------------------
    def _republisher(
        self, tenant: str | None, mode: str
    ) -> RepublicationEngine:
        """The ``(tenant, mode)``-bound republication engine, built lazily
        over this service's existing engine of that mode (publish work
        shares its cache and persistence) and the shared ledger."""
        key = (tenant, mode)
        republisher = self._republishers.get(key)
        if republisher is None:
            republisher = RepublicationEngine(
                self._engines_for(tenant)[mode],
                self.ledger,
                tenant=tenant or "",
            )
            self._republishers[key] = republisher
        return republisher

    async def _ep_publish(self, payload: dict):
        """``POST /publish``: check and record the next version of a table.

        Runs on the same single engine-executor thread as every other
        engine call, so a publish serializes cleanly with coalesced
        batches and shares the engine cache with them.
        """
        tenant = self._tenant(payload)
        mode, engine = self._mode_and_engine(payload, tenant)
        model, params, _cparams, _instance = self._resolve_threat(
            payload, engine, tenant
        )
        table = require(payload, "table", str)
        if not TABLE_NAME.match(table):
            raise BadRequest(
                f"field 'table' must match {TABLE_NAME.pattern}"
            )
        k = require(payload, "k", int)
        if k < 0:
            raise BadRequest(f"k must be non-negative, got {k}")
        if "c" not in payload:
            raise BadRequest("missing required field 'c'")
        c = decode_value(payload["c"])  # ValueError -> 400
        full = require(payload, "full", bool, optional=True, default=False)
        want_witness = require(
            payload, "witness", bool, optional=True, default=False
        )
        bucketization = bucketization_from_payload(
            require(payload, "buckets", list)
        )
        republisher = self._republisher(tenant, mode)
        loop = asyncio.get_running_loop()
        verdict = await loop.run_in_executor(
            self._executor,
            lambda: republisher.publish(
                table,
                bucketization,
                c=c,
                k=k,
                model=model,
                params=params,
                full=full,
                with_witness=want_witness,
            ),
        )
        self.stats.note_publish(verdict)
        return 200, verdict

    async def _ep_releases(self):
        """``GET /releases``: summaries of every recorded release plus the
        ledger totals."""
        loop = asyncio.get_running_loop()
        releases = await loop.run_in_executor(
            self._executor, self.ledger.list_releases
        )
        counters = await loop.run_in_executor(
            self._executor, self.ledger.counters
        )
        return 200, {"releases": releases, "ledger": counters}

    async def _ep_release(self, path: str):
        """``GET /releases/{table}/{version}``: one full release record.

        The ``{table}`` segment may be tenant-qualified as
        ``{tenant}:{table}`` (tenant ids and table names never contain
        ``:``); the bare form reads the default namespace.
        """
        parts = path.split("/")
        if len(parts) != 4 or not parts[2] or not parts[3]:
            raise BadRequest(
                "release path must be /releases/{table}/{version}"
            )
        qualified, version_raw = parts[2], parts[3]
        tenant, _, table = qualified.rpartition(":")
        try:
            version = int(version_raw)
        except ValueError:
            raise BadRequest(
                f"version must be an integer, got {version_raw!r}"
            ) from None
        loop = asyncio.get_running_loop()
        release = await loop.run_in_executor(
            self._executor,
            lambda: self.ledger.get(table, version, tenant=tenant),
        )
        if release is None:
            return 404, {
                "error": f"no recorded release {qualified!r} v{version}"
            }
        return 200, {
            "table": release.table,
            "tenant": release.tenant or None,
            "version": release.version,
            "mode": release.mode,
            "model": release.model,
            "params": release.params,
            "k": release.k,
            "c": release.c,
            "accepted": release.accepted,
            "multiset": multiset_to_wire(release.multiset),
            "verdict": release.verdict,
        }

    async def _ep_models(self):
        models = []
        for name in available_adversaries():
            model = get_adversary(name)
            models.append(
                {
                    "name": name,
                    "supports_exact": model.supports_exact,
                    "supports_witness": model.supports_witness,
                    "unbounded_scale": model.unbounded_scale,
                    "monotone": model.monotone,
                    "signature_decomposable": model.signature_decomposable(),
                    # The machine-usable tunables: name/type/default per
                    # constructor parameter (was an opaque repr of the
                    # default instance's params_key).
                    "params": param_schema(name),
                }
            )
        return 200, {"models": models}

    async def _ep_stats(self):
        engines = {}
        for mode, engine in self.engines.items():
            backend = engine.backend
            backend_info: dict[str, Any] = {
                "name": backend.name,
                "parallel": backend.parallel,
            }
            if isinstance(backend, PersistentBackend):
                backend_info.update(
                    batches_run=backend.batches_run,
                    signatures_shipped=backend.signatures_shipped,
                    respawns=backend.respawns,
                    workers_alive=backend.worker_count(),
                )
            engines[mode] = {
                "stats": engine.stats.as_dict(),
                "cache_entries": engine.cache_size(),
                "pinned_entries": engine.pinned_count(),
                "plane_signatures": len(engine.plane),
                "loaded_entries": self.loaded_entries[mode],
                "backend": backend_info,
            }
        service = self.stats.as_dict()
        service["connections"] = self.connections.as_dict()
        service["max_connections"] = self.max_connections
        loop = asyncio.get_running_loop()
        ledger = await loop.run_in_executor(
            self._executor, self.ledger.counters
        )
        answer = {"service": service, "engines": engines, "ledger": ledger}
        if self.tenants:
            answer["tenants"] = {
                tenant: {
                    "model": config["model"],
                    "requests": self.stats.by_tenant.get(tenant, 0),
                    "engines": {
                        mode: {
                            "cache_entries": engine.cache_size(),
                            "loaded_entries": self.tenant_loaded[
                                (tenant, mode)
                            ],
                        }
                        for mode, engine in self.tenant_engines[
                            tenant
                        ].items()
                    },
                }
                for tenant, config in self.tenants.items()
            }
        return 200, answer

    async def _ep_healthz(self):
        return 200, {
            "ok": True,
            "uptime_s": round(time.monotonic() - self.stats.started, 3),
        }

    # ------------------------------------------------------------------
    # In-process peek (the router's inproc fast path)
    # ------------------------------------------------------------------
    def peek_single(
        self,
        mode: str,
        model: str,
        k: Any,
        signature_items,
        params: Mapping[str, Any] | None = None,
        tenant: str | None = None,
    ) -> dict[str, Any] | None:
        """A fully-encoded single ``/disclosure`` answer straight from the
        cache, or ``None`` when anything short of a clean cached hit —
        unknown mode/model/tenant, malformed ``k``, bad params, unseen
        signature, cache miss — in which case the caller falls back to the
        full dispatch path, which validates properly and computes (and
        turns the validation failures into real 400s).

        Bumps the same counters the endpoint's own fast path does
        (``single_requests``, ``cache_fast_hits``, plus
        :meth:`note_request`), so a shard's stats are indistinguishable
        whether its router answered from the peek or dispatched.
        """
        if tenant is not None and tenant not in self.tenants:
            return None
        engine = self._engines_for(tenant).get(mode)
        if engine is None or model not in available_adversaries():
            return None
        if not isinstance(k, int) or isinstance(k, bool) or k < 0:
            return None
        try:
            instance = engine.model(model, params)
        except (TypeError, ValueError):
            return None
        cached = engine.peek_cached(instance, k, signature_items)
        if cached is None:
            return None
        try:
            encoded = encode_value(cached)
        except ValueError:
            return None
        self.stats.single_requests += 1
        self.stats.cache_fast_hits += 1
        if tenant is not None:
            self.stats.by_tenant[tenant] += 1
        self.note_request("/disclosure", 200)
        return {
            "model": model,
            "k": k,
            "exact": mode == "exact",
            "value": encoded,
        }


def parse_json_body(body: bytes) -> dict:
    """Decode a POST body into a JSON object (400 on anything else)."""
    try:
        payload = json.loads(body.decode("utf-8")) if body else None
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise BadRequest(f"invalid JSON body: {exc}") from None
    if not isinstance(payload, dict):
        raise BadRequest("request body must be a JSON object")
    return payload


class BackgroundService(BackgroundHost):
    """Run a :class:`DisclosureService` on a daemon thread (tests, benches).

    Usage::

        with BackgroundService(backend="serial") as bg:
            value = bg.client().disclosure(bucketization, k=3)

    The context manager owns the event loop: entering starts the loop
    thread and blocks until the server is bound (surfacing any startup
    error), exiting requests a graceful :meth:`DisclosureService.stop`
    and joins the thread.
    """

    def _make_service(self) -> DisclosureService:
        return DisclosureService(**self._kwargs)
