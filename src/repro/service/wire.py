"""The service wire format: JSON encodings shared by server and client.

Disclosure values, model params, and witnesses cross the wire through the
lossless codecs of :mod:`repro.codec` (re-exported here so service code
has one import site): floats as JSON numbers (``repr`` round-trips every
IEEE-754 double bit-for-bit), exact :class:`~fractions.Fraction` values
as ``"num/den"`` strings.

Bucketizations travel as plain lists of per-bucket sensitive-value lists —
the exact shape :meth:`~repro.bucketization.bucketization.Bucketization.from_value_lists`
accepts — so any JSON client can build a request without knowing this
package's classes.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

from repro.bucketization.bucketization import Bucketization
from repro.codec import (
    decode_params,
    decode_series,
    decode_value,
    encode_params,
    encode_series,
    encode_value,
    encode_witness,
)

__all__ = [
    "encode_value",
    "decode_value",
    "encode_series",
    "decode_series",
    "encode_params",
    "decode_params",
    "encode_witness",
    "bucket_lists",
    "bucketization_from_payload",
    "signature_items_from_lists",
]


def bucket_lists(bucketization: Bucketization | Any) -> list[list[Any]]:
    """A bucketization (or already-raw value lists) as the wire shape."""
    if isinstance(bucketization, Bucketization):
        return [list(b.sensitive_values) for b in bucketization.buckets]
    return [list(values) for values in bucketization]


def signature_items_from_lists(
    buckets: Any,
) -> tuple[tuple[tuple[int, ...], int], ...]:
    """The signature multiset of raw per-bucket value lists — the cheap
    half of the plane key, computed without building a
    :class:`Bucketization`.

    A bucket's signature is its sensitive-value frequency vector in
    descending order (:attr:`~repro.bucketization.bucket.Bucket.signature`),
    so it only needs one :class:`~collections.Counter` pass per bucket —
    no value interning, no person ids, no object graph. The result is
    tuple-equal to ``bucketization_from_payload(buckets).signature_items()``,
    which is what lets the shard router hash a request to its cache-owning
    shard and a service peek its cache, both without reparsing the request
    into engine objects.

    Validates the same wire shape as :func:`bucketization_from_payload`
    (same :class:`ValueError` messages, safe for a 400 body).
    """
    if not isinstance(buckets, list) or not buckets:
        raise ValueError("'buckets' must be a non-empty list of value lists")
    counts: Counter[tuple[int, ...]] = Counter()
    for index, values in enumerate(buckets):
        if not isinstance(values, list) or not values:
            raise ValueError(
                f"bucket {index} must be a non-empty list of sensitive values"
            )
        for value in values:
            if not isinstance(value, (str, int, float, bool)):
                raise ValueError(
                    f"bucket {index} holds a non-scalar sensitive value "
                    f"({type(value).__name__})"
                )
        frequencies = Counter(values)
        counts[tuple(sorted(frequencies.values(), reverse=True))] += 1
    return tuple(sorted(counts.items()))


def bucketization_from_payload(buckets: Any) -> Bucketization:
    """Validate and build a :class:`Bucketization` from request JSON.

    Raises
    ------
    ValueError
        On anything that is not a non-empty list of non-empty lists of JSON
        scalars — the message is safe to return in a 400 body.
    """
    if not isinstance(buckets, list) or not buckets:
        raise ValueError("'buckets' must be a non-empty list of value lists")
    for index, values in enumerate(buckets):
        if not isinstance(values, list) or not values:
            raise ValueError(
                f"bucket {index} must be a non-empty list of sensitive values"
            )
        for value in values:
            if not isinstance(value, (str, int, float, bool)):
                raise ValueError(
                    f"bucket {index} holds a non-scalar sensitive value "
                    f"({type(value).__name__})"
                )
    return Bucketization.from_value_lists(buckets)
