"""A thin stdlib client for the disclosure service, with connection pooling.

:class:`ServiceClient` speaks the wire format of
:mod:`repro.service.wire` over :mod:`http.client` — no dependencies. Since
the server speaks keep-alive HTTP/1.1, the client keeps a small bounded
pool of open connections and reuses them across calls (``pool_size``
idle connections; a thread that finds the pool empty opens a fresh one, so
concurrent callers never block on the pool). A pooled connection that went
stale — the server restarted, or an idle timeout closed it — is detected
on first use and the request is transparently replayed on a fresh
connection, so callers never see the reconnect.

Values come back **bit-identical** to direct
:class:`~repro.engine.engine.DisclosureEngine` calls: floats survive the
JSON round trip exactly and exact-mode Fractions travel as ``"num/den"``
strings, so tests can assert ``client.disclosure(...) ==
engine.evaluate(...)`` with plain equality.
"""

from __future__ import annotations

import http.client
import json
import threading
from collections.abc import Mapping, Sequence
from fractions import Fraction
from typing import Any

from repro.errors import ReproError
from repro.service.httpbase import set_nodelay
from repro.service.wire import (
    bucket_lists,
    decode_series,
    decode_value,
    encode_params,
    encode_value,
)

__all__ = ["ServiceError", "ServiceClient"]

#: Exceptions that mark a pooled connection as stale (safe to replay on a
#: fresh connection: the request never produced a response).
_STALE_ERRORS = (
    http.client.BadStatusLine,
    http.client.CannotSendRequest,
    http.client.ResponseNotReady,
    ConnectionError,
    BrokenPipeError,
    OSError,
)


class _NoDelayConnection(http.client.HTTPConnection):
    """An ``HTTPConnection`` with ``TCP_NODELAY`` set on connect.

    The client sends small JSON requests on keep-alive connections —
    the pattern Nagle's algorithm penalizes with up to an RTT of added
    latency per request while the kernel waits to batch payload.
    """

    def connect(self) -> None:
        """Open the socket and set ``TCP_NODELAY`` on it."""
        super().connect()
        set_nodelay(self.sock)


class ServiceError(ReproError):
    """A non-200 service response (the HTTP status is on :attr:`status`)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Blocking JSON client used by the tests, the benchmark, and scripts.

    ``bucketization`` arguments accept either a
    :class:`~repro.bucketization.bucketization.Bucketization` or raw
    per-bucket value lists (the wire shape).

    Parameters
    ----------
    pool_size:
        Maximum idle keep-alive connections retained for reuse (0 with
        ``keep_alive=True`` still reuses nothing — every request opens a
        connection). Thread-safe: concurrent callers each pop a pooled
        connection or open their own.
    keep_alive:
        When False, every request sends ``Connection: close`` and the
        connection is torn down after the response — the PR-4 protocol,
        kept for benchmarks and debugging.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8707,
        *,
        timeout: float = 60.0,
        pool_size: int = 4,
        keep_alive: bool = True,
    ) -> None:
        if pool_size < 0:
            raise ValueError(f"pool_size must be >= 0, got {pool_size}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.keep_alive = keep_alive
        self.pool_size = pool_size if keep_alive else 0
        self._pool: list[http.client.HTTPConnection] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Connection pool
    # ------------------------------------------------------------------
    def _acquire(self) -> tuple[http.client.HTTPConnection, bool]:
        """A connection to use: ``(connection, was_pooled)``."""
        with self._lock:
            if self._pool:
                return self._pool.pop(), True
        return (
            _NoDelayConnection(self.host, self.port, timeout=self.timeout),
            False,
        )

    def _release(self, connection: http.client.HTTPConnection) -> None:
        with self._lock:
            if len(self._pool) < self.pool_size:
                self._pool.append(connection)
                return
        connection.close()

    def close(self) -> None:
        """Close every pooled connection (the client stays usable)."""
        with self._lock:
            pool, self._pool = self._pool, []
        for connection in pool:
            connection.close()

    def __enter__(self) -> ServiceClient:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def request(
        self, method: str, path: str, payload: dict | None = None
    ) -> dict[str, Any]:
        """One HTTP exchange; raises :class:`ServiceError` on non-200.

        Reuses a pooled keep-alive connection when one is available; a
        stale pooled connection triggers one transparent replay on a fresh
        connection. Errors on a *fresh* connection propagate (the server
        really is unreachable).
        """
        body = json.dumps(payload) if payload is not None else None
        headers = {
            "Content-Type": "application/json",
            "Connection": "keep-alive" if self.keep_alive else "close",
        }
        while True:
            connection, was_pooled = self._acquire()
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
                status = response.status
                reusable = self.keep_alive and not response.will_close
            except TimeoutError:
                # The server got the request and is (still) working on it;
                # replaying would double-execute it. Surface the timeout.
                connection.close()
                raise
            except _STALE_ERRORS:
                connection.close()
                if was_pooled:
                    continue  # replay once on a fresh connection
                raise
            if reusable:
                self._release(connection)
            else:
                connection.close()
            break
        try:
            data = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            raise ServiceError(status, f"non-JSON response: {exc}") from None
        if status != 200:
            raise ServiceError(
                status,
                data.get("error", "unknown error")
                if isinstance(data, dict)
                else str(data),
            )
        return data

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    @staticmethod
    def _threat_fields(
        payload: dict[str, Any],
        model: str | None,
        params: Mapping[str, Any] | None,
        tenant: str | None,
    ) -> dict[str, Any]:
        """Attach the optional threat-model fields, omitting absent ones.

        ``model=None`` sends no ``model`` field at all — the server then
        applies its default (``implication``, or the tenant's configured
        model), which is what lets a tenant's defaults actually engage.
        ``params`` are model constructor kwargs, encoded losslessly by
        :func:`~repro.service.wire.encode_params` (Fractions as
        ``"num/den"``, floats bit-identical). ``tenant`` selects a
        server-configured tenant (its own engines and cache files, and its
        default model/params when the request omits them).
        """
        if model is not None:
            payload["model"] = model
        if params is not None:
            payload["params"] = encode_params(params)
        if tenant is not None:
            payload["tenant"] = tenant
        return payload

    def disclosure(
        self,
        bucketization,
        k: int,
        *,
        model: str | None = None,
        exact: bool = False,
        params: Mapping[str, Any] | None = None,
        tenant: str | None = None,
    ) -> float | Fraction:
        """Single worst-case disclosure (coalesced server-side).

        ``model=None`` uses the server default: ``implication``, or the
        tenant's configured model when ``tenant`` is given.
        """
        answer = self.request(
            "POST",
            "/disclosure",
            self._threat_fields(
                {
                    "buckets": bucket_lists(bucketization),
                    "k": k,
                    "exact": exact,
                },
                model,
                params,
                tenant,
            ),
        )
        return decode_value(answer["value"])

    def witness(
        self,
        bucketization,
        k: int,
        *,
        model: str | None = None,
        exact: bool = False,
        params: Mapping[str, Any] | None = None,
        tenant: str | None = None,
    ) -> dict[str, Any]:
        """Single evaluation plus the serialized worst-case witness."""
        answer = self.request(
            "POST",
            "/disclosure",
            self._threat_fields(
                {
                    "buckets": bucket_lists(bucketization),
                    "k": k,
                    "exact": exact,
                    "witness": True,
                },
                model,
                params,
                tenant,
            ),
        )
        answer["value"] = decode_value(answer["value"])
        answer["witness"]["disclosure"] = decode_value(
            answer["witness"]["disclosure"]
        )
        return answer

    def disclosure_batch(
        self,
        bucketizations: Sequence,
        ks: Sequence[int],
        *,
        model: str | None = None,
        exact: bool = False,
        params: Mapping[str, Any] | None = None,
        tenant: str | None = None,
    ) -> list[dict[int, float | Fraction]]:
        """One series per bucketization — the wire form of
        :meth:`~repro.engine.engine.DisclosureEngine.evaluate_many`."""
        answer = self.request(
            "POST",
            "/disclosure",
            self._threat_fields(
                {
                    "bucketizations": [
                        bucket_lists(b) for b in bucketizations
                    ],
                    "ks": list(ks),
                    "exact": exact,
                },
                model,
                params,
                tenant,
            ),
        )
        return [decode_series(series) for series in answer["series"]]

    def safety(
        self,
        bucketization,
        c: float,
        k: int,
        *,
        model: str | None = None,
        exact: bool = False,
        params: Mapping[str, Any] | None = None,
        tenant: str | None = None,
    ) -> dict[str, Any]:
        """(c, k)-safety verdict plus the underlying disclosure value."""
        answer = self.request(
            "POST",
            "/safety",
            self._threat_fields(
                {
                    "buckets": bucket_lists(bucketization),
                    "c": c,
                    "k": k,
                    "exact": exact,
                },
                model,
                params,
                tenant,
            ),
        )
        answer["value"] = decode_value(answer["value"])
        return answer

    def compare(
        self,
        bucketization,
        ks: Sequence[int],
        *,
        models: Sequence[str] | None = None,
        exact: bool = False,
        params: Mapping[str, Any] | None = None,
        tenant: str | None = None,
    ) -> dict[str, dict[int, float | Fraction]]:
        """Cross-model comparison (Figure 5 as a service call).

        ``models=None`` uses the server default pair
        ``("implication", "negation")``.
        """
        payload: dict[str, Any] = {
            "buckets": bucket_lists(bucketization),
            "ks": list(ks),
            "exact": exact,
        }
        if models is not None:
            payload["models"] = list(models)
        answer = self.request(
            "POST",
            "/compare",
            self._threat_fields(payload, None, params, tenant),
        )
        return {
            name: decode_series(series)
            for name, series in answer["series"].items()
        }

    def publish(
        self,
        table: str,
        bucketization,
        *,
        c,
        k: int,
        model: str | None = None,
        exact: bool = False,
        params: Mapping[str, Any] | None = None,
        tenant: str | None = None,
        full: bool = False,
        witness: bool = False,
    ) -> dict[str, Any]:
        """Publish the next version of ``table`` through the release
        ledger: the per-signature (c, k)-safety check, incremental against
        the prior accepted release, plus the cross-release composition
        check. Returns the verdict with ``value``/``composition_value``/
        ``threshold`` decoded back to engine types.

        ``full=True`` forces a from-scratch re-check (the baseline that
        incremental runs are bit-identical to); ``witness=True`` attaches
        a worst-case formula to each violation.
        """
        payload: dict[str, Any] = {
            "table": table,
            "buckets": bucket_lists(bucketization),
            "c": encode_value(c) if isinstance(c, Fraction) else c,
            "k": k,
            "exact": exact,
        }
        if full:
            payload["full"] = True
        if witness:
            payload["witness"] = True
        answer = self.request(
            "POST",
            "/publish",
            self._threat_fields(payload, model, params, tenant),
        )
        for field in ("value", "composition_value", "threshold", "c"):
            answer[field] = decode_value(answer[field])
        return answer

    def releases(
        self,
        table: str | None = None,
        *,
        tenant: str | None = None,
    ) -> dict[str, Any]:
        """Release-ledger summaries plus ledger totals, optionally filtered
        client-side by ``table``/``tenant`` (the endpoint returns all)."""
        answer = self.request("GET", "/releases")
        entries = answer["releases"]
        if table is not None:
            entries = [e for e in entries if e["table"] == table]
        if tenant is not None:
            entries = [e for e in entries if e["tenant"] == tenant]
        answer["releases"] = entries
        return answer

    def release(
        self,
        table: str,
        version: int,
        *,
        tenant: str | None = None,
    ) -> dict[str, Any]:
        """One recorded release's full ledger record (404 ->
        :class:`ServiceError`). ``tenant`` namespaces the lookup the same
        way it namespaces ``publish``."""
        qualified = f"{tenant}:{table}" if tenant else table
        return self.request("GET", f"/releases/{qualified}/{version}")

    def models(self) -> list[dict[str, Any]]:
        """Registry introspection: every registered adversary's contract."""
        return self.request("GET", "/models")["models"]

    def stats(self) -> dict[str, Any]:
        """Service counters + per-engine stats and backend telemetry."""
        return self.request("GET", "/stats")

    def health(self) -> dict[str, Any]:
        """Liveness probe (``GET /healthz``; per-shard behind a router)."""
        return self.request("GET", "/healthz")
