"""A thin stdlib client for the disclosure service.

:class:`ServiceClient` speaks the wire format of
:mod:`repro.service.wire` over :mod:`http.client` — no dependencies, one
connection per request (the server closes connections after each
response). Values come back **bit-identical** to direct
:class:`~repro.engine.engine.DisclosureEngine` calls: floats survive the
JSON round trip exactly and exact-mode Fractions travel as ``"num/den"``
strings, so tests can assert ``client.disclosure(...) ==
engine.evaluate(...)`` with plain equality.
"""

from __future__ import annotations

import http.client
import json
from collections.abc import Sequence
from fractions import Fraction
from typing import Any

from repro.errors import ReproError
from repro.service.wire import bucket_lists, decode_series, decode_value

__all__ = ["ServiceError", "ServiceClient"]


class ServiceError(ReproError):
    """A non-200 service response (the HTTP status is on :attr:`status`)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Blocking JSON client used by the tests, the benchmark, and scripts.

    ``bucketization`` arguments accept either a
    :class:`~repro.bucketization.bucketization.Bucketization` or raw
    per-bucket value lists (the wire shape).
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8707, *, timeout: float = 60.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def request(
        self, method: str, path: str, payload: dict | None = None
    ) -> dict[str, Any]:
        """One HTTP exchange; raises :class:`ServiceError` on non-200."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = json.dumps(payload) if payload is not None else None
            connection.request(
                method,
                path,
                body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            raw = response.read()
            status = response.status
        finally:
            connection.close()
        try:
            data = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            raise ServiceError(status, f"non-JSON response: {exc}") from None
        if status != 200:
            raise ServiceError(
                status, data.get("error", "unknown error") if isinstance(data, dict) else str(data)
            )
        return data

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def disclosure(
        self,
        bucketization,
        k: int,
        *,
        model: str = "implication",
        exact: bool = False,
    ) -> float | Fraction:
        """Single worst-case disclosure (coalesced server-side)."""
        answer = self.request(
            "POST",
            "/disclosure",
            {
                "buckets": bucket_lists(bucketization),
                "k": k,
                "model": model,
                "exact": exact,
            },
        )
        return decode_value(answer["value"])

    def witness(
        self,
        bucketization,
        k: int,
        *,
        model: str = "implication",
        exact: bool = False,
    ) -> dict[str, Any]:
        """Single evaluation plus the serialized worst-case witness."""
        answer = self.request(
            "POST",
            "/disclosure",
            {
                "buckets": bucket_lists(bucketization),
                "k": k,
                "model": model,
                "exact": exact,
                "witness": True,
            },
        )
        answer["value"] = decode_value(answer["value"])
        answer["witness"]["disclosure"] = decode_value(
            answer["witness"]["disclosure"]
        )
        return answer

    def disclosure_batch(
        self,
        bucketizations: Sequence,
        ks: Sequence[int],
        *,
        model: str = "implication",
        exact: bool = False,
    ) -> list[dict[int, float | Fraction]]:
        """One series per bucketization — the wire form of
        :meth:`~repro.engine.engine.DisclosureEngine.evaluate_many`."""
        answer = self.request(
            "POST",
            "/disclosure",
            {
                "bucketizations": [bucket_lists(b) for b in bucketizations],
                "ks": list(ks),
                "model": model,
                "exact": exact,
            },
        )
        return [decode_series(series) for series in answer["series"]]

    def safety(
        self,
        bucketization,
        c: float,
        k: int,
        *,
        model: str = "implication",
        exact: bool = False,
    ) -> dict[str, Any]:
        """(c, k)-safety verdict plus the underlying disclosure value."""
        answer = self.request(
            "POST",
            "/safety",
            {
                "buckets": bucket_lists(bucketization),
                "c": c,
                "k": k,
                "model": model,
                "exact": exact,
            },
        )
        answer["value"] = decode_value(answer["value"])
        return answer

    def compare(
        self,
        bucketization,
        ks: Sequence[int],
        *,
        models: Sequence[str] = ("implication", "negation"),
        exact: bool = False,
    ) -> dict[str, dict[int, float | Fraction]]:
        """Cross-model comparison (Figure 5 as a service call)."""
        answer = self.request(
            "POST",
            "/compare",
            {
                "buckets": bucket_lists(bucketization),
                "ks": list(ks),
                "models": list(models),
                "exact": exact,
            },
        )
        return {
            name: decode_series(series)
            for name, series in answer["series"].items()
        }

    def models(self) -> list[dict[str, Any]]:
        """Registry introspection: every registered adversary's contract."""
        return self.request("GET", "/models")["models"]

    def stats(self) -> dict[str, Any]:
        """Service counters + per-engine stats and backend telemetry."""
        return self.request("GET", "/stats")

    def health(self) -> dict[str, Any]:
        return self.request("GET", "/healthz")
