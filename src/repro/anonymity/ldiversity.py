"""ℓ-diversity (Machanavajjhala et al., ICDE 2006) — the paper's reference [24].

Three standard instantiations over a bucketization:

- **distinct** ℓ-diversity: every bucket has at least ℓ distinct sensitive
  values;
- **entropy** ℓ-diversity: every bucket's sensitive entropy is at least
  ``log(ℓ)``;
- **recursive (c,ℓ)**-diversity: in every bucket,
  ``r_1 < c * (r_l + r_{l+1} + ... + r_d)`` where ``r_i`` are the sensitive
  frequencies in descending order.

All three are preserved by bucket merging in the entropy/recursive cases per
the ℓ-diversity paper's monotonicity results, so they can drive the lattice
search just like (c,k)-safety. The connection to this paper: ℓ-diversity
bounds disclosure against ℓ-1 *negated atoms*; Figure 5 compares that
attacker to the implication attacker (see :mod:`repro.core.negation`).
"""

from __future__ import annotations

import math

from repro.bucketization.bucket import Bucket
from repro.bucketization.bucketization import Bucketization

__all__ = [
    "distinct_diversity",
    "entropy_diversity",
    "is_distinct_l_diverse",
    "is_entropy_l_diverse",
    "is_recursive_cl_diverse",
]


def distinct_diversity(bucketization: Bucketization) -> int:
    """The largest ℓ such that the bucketization is distinct ℓ-diverse
    (the minimum number of distinct values in any bucket)."""
    return min(bucket.distinct_count for bucket in bucketization.buckets)


def entropy_diversity(bucketization: Bucketization) -> float:
    """The largest ℓ such that the bucketization is entropy ℓ-diverse:
    ``exp(min bucket entropy)`` (natural log throughout)."""
    return math.exp(
        min(bucket.entropy() for bucket in bucketization.buckets)
    )


def is_distinct_l_diverse(bucketization: Bucketization, ell: int) -> bool:
    """Every bucket contains at least ``ell`` distinct sensitive values."""
    if ell <= 0:
        raise ValueError(f"ell must be positive, got {ell}")
    return distinct_diversity(bucketization) >= ell


def is_entropy_l_diverse(bucketization: Bucketization, ell: float) -> bool:
    """Every bucket's sensitive entropy is at least ``log(ell)``."""
    if ell < 1:
        raise ValueError(f"ell must be >= 1, got {ell}")
    threshold = math.log(ell)
    return all(
        bucket.entropy() >= threshold - 1e-12
        for bucket in bucketization.buckets
    )


def _bucket_recursive_cl(bucket: Bucket, c: float, ell: int) -> bool:
    """Recursive (c, ℓ)-diversity for one bucket."""
    counts = bucket.signature  # already descending
    if ell > len(counts):
        return False
    tail = sum(counts[ell - 1 :])
    return counts[0] < c * tail


def is_recursive_cl_diverse(
    bucketization: Bucketization, c: float, ell: int
) -> bool:
    """Recursive (c,ℓ)-diversity: the most frequent value is outweighed by
    the tail ``r_l + ... + r_d`` scaled by ``c``, in every bucket.

    For ``ell = 1`` the condition reads ``r_1 < c * (r_1 + ... + r_d)``,
    i.e. a cap of ``c`` on every bucket's top frequency fraction.
    """
    if c <= 0:
        raise ValueError(f"c must be positive, got {c}")
    if ell <= 0:
        raise ValueError(f"ell must be positive, got {ell}")
    return all(
        _bucket_recursive_cl(bucket, c, ell)
        for bucket in bucketization.buckets
    )
