"""Baseline privacy criteria: k-anonymity and ℓ-diversity.

These are the two prior criteria the paper positions itself against
(Section 1): k-anonymity ignores the sensitive attribute entirely, and
ℓ-diversity guards only against negated-atom knowledge. Both are monotone
along the generalization lattice, so they plug into the same search machinery
as (c,k)-safety — which is how the paper's comparisons are run.
"""

from repro.anonymity.kanonymity import is_k_anonymous, max_k_anonymity
from repro.anonymity.ldiversity import (
    distinct_diversity,
    entropy_diversity,
    is_distinct_l_diverse,
    is_entropy_l_diverse,
    is_recursive_cl_diverse,
)

__all__ = [
    "is_k_anonymous",
    "max_k_anonymity",
    "is_distinct_l_diverse",
    "is_entropy_l_diverse",
    "is_recursive_cl_diverse",
    "distinct_diversity",
    "entropy_diversity",
]
