"""k-anonymity (Samarati & Sweeney): bucket-size-only privacy.

A bucketization is k-anonymous when every bucket holds at least ``k`` tuples
— each individual is indistinguishable from at least ``k - 1`` others with
respect to the non-sensitive attributes. As the paper stresses (footnote 1),
the definition never mentions the sensitive attribute, which is exactly why
it fails against background knowledge; it is implemented here as the
historical baseline and for lattice-search comparisons.
"""

from __future__ import annotations

from repro.bucketization.bucketization import Bucketization

__all__ = ["is_k_anonymous", "max_k_anonymity"]


def is_k_anonymous(bucketization: Bucketization, k: int) -> bool:
    """True iff every bucket has at least ``k`` tuples.

    Monotone along the paper's partial order: merging buckets only grows
    them, so this predicate plugs into the lattice search directly.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    return all(bucket.size >= k for bucket in bucketization.buckets)


def max_k_anonymity(bucketization: Bucketization) -> int:
    """The largest ``k`` for which the bucketization is k-anonymous
    (the minimum bucket size)."""
    return min(bucket.size for bucket in bucketization.buckets)
