"""Cost-based (weighted) disclosure — the paper's Section-6 future work.

"Not all disclosures are equally bad" [ℓ-diversity]: learning *HIV* is worse
than learning *flu*. This module weights each sensitive value ``s`` with a
cost ``w(s) >= 0`` and studies the worst case of

    max_{p, s, phi}  w(s) * Pr(t_p[S] = s | B AND phi)

Three attackers are supported, in decreasing exactness:

- ``k = 0`` (:func:`weighted_baseline_disclosure`): exact closed form —
  per bucket, ``max_s w(s) * n_b(s)/n_b``.
- ``k`` negated atoms (:func:`weighted_negation_disclosure`): exact closed
  form — the attack concentrates on one person; for a target ``s`` the
  optimal eliminations are the ``k`` most frequent other values, so
  ``w(s) * n_b(s) / (n_b - removed)`` maximized over buckets and targets.
- ``k`` implications (:func:`weighted_implication_bounds`): the standard
  machinery fixes the consequent to a bucket's *most frequent* value
  (Lemma 12), which is no longer optimal under weights; instead of relying
  on an unproven generalization we return rigorous bounds:

      lower = exact weighted negation worst case (negations are implications)
      upper = max_s w(s) * max_disclosure(B, k)

  both of which collapse to the exact answer when weights are uniform.
  The exact weighted maximum for small instances is available from
  :func:`exact_weighted_disclosure` (oracle enumeration), which the tests
  use to confirm the bounds bracket the truth.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Mapping
from typing import Any

from repro.bucketization.bucketization import Bucketization
from repro.core.disclosure import max_disclosure
from repro.core.exact import enumerate_worlds
from repro.knowledge.language import enumerate_simple_conjunctions

__all__ = [
    "weighted_baseline_disclosure",
    "weighted_negation_candidates",
    "weighted_negation_disclosure",
    "weighted_implication_bounds",
    "exact_weighted_disclosure",
]


def _validate_weights(weights: Mapping[Any, float]) -> None:
    if not weights:
        raise ValueError("weights must be non-empty")
    if any(w < 0 for w in weights.values()):
        raise ValueError("weights must be non-negative")


def _weight(weights: Mapping[Any, float], value: Any) -> float:
    """Missing values default to weight 1 (unit cost)."""
    return weights.get(value, 1.0)


def weighted_baseline_disclosure(
    bucketization: Bucketization, weights: Mapping[Any, float]
) -> float:
    """Exact weighted disclosure with no background knowledge (k = 0)."""
    _validate_weights(weights)
    best = 0.0
    for bucket in bucketization.buckets:
        for value in bucket.values_by_frequency:
            candidate = (
                _weight(weights, value) * bucket.frequency(value) / bucket.size
            )
            best = max(best, candidate)
    return best


def weighted_negation_candidates(bucket, k: int, weights: Mapping[Any, float]):
    """Yield ``(weighted disclosure, target value)`` for every target in one
    bucket, each with its optimal ``k`` eliminations.

    For a target value ``s``, the optimal ``k`` negations eliminate the most
    frequent values other than ``s`` (eliminating mass from the denominator
    never hurts and weights do not interact with the choice once the target
    is fixed). This is the single source of the closed form — the
    bucketization-level worst case and the greedy sanitizer's removal choice
    both consume it.
    """
    counts = bucket.signature
    order = bucket.values_by_frequency
    n = bucket.size
    for t, value in enumerate(order):
        if t <= k:
            eliminated = [j for j in range(min(k + 1, len(counts))) if j != t]
        else:
            eliminated = list(range(min(k, len(counts))))
        removed = sum(counts[j] for j in eliminated)
        yield _weight(weights, value) * counts[t] / (n - removed), value


def weighted_negation_disclosure(
    bucketization: Bucketization, k: int, weights: Mapping[Any, float]
) -> float:
    """Exact weighted worst case against ``k`` negated atoms (the maximum of
    :func:`weighted_negation_candidates` over all buckets and targets)."""
    _validate_weights(weights)
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    return max(
        candidate
        for bucket in bucketization.buckets
        for candidate, _ in weighted_negation_candidates(bucket, k, weights)
    )


def weighted_implication_bounds(
    bucketization: Bucketization, k: int, weights: Mapping[Any, float]
) -> tuple[float, float]:
    """Rigorous ``(lower, upper)`` bounds on the weighted worst case against
    ``k`` basic implications.

    - Lower: the weighted negation worst case (every negation is a basic
      implication, so the implication attacker can do at least this well).
    - Upper: ``max_s w(s)`` times the unweighted maximum disclosure (scaling
      every cost up to the largest can only increase the objective).

    With uniform weights ``w``, both bounds equal ``w * max_disclosure``.

    Raises
    ------
    ValueError
        If the bounds genuinely invert (``lower > upper`` beyond float
        rounding). Mathematically ``lower <= upper`` always holds, so an
        inversion means one of the two computations is wrong for this
        input — silently reordering the pair (as this function once did)
        would hand the caller a confident-looking bracket that brackets
        nothing. Rounding-scale inversions (uniform weights computed along
        two float paths) are clamped to ``upper`` instead.
    """
    _validate_weights(weights)
    lower = weighted_negation_disclosure(bucketization, k, weights)
    values = {
        value
        for bucket in bucketization.buckets
        for value in bucket.values_by_frequency
    }
    w_max = max(_weight(weights, value) for value in values)
    upper = w_max * max_disclosure(bucketization, k)
    if lower > upper:
        tolerance = 1e-9 * max(abs(lower), abs(upper), 1.0)
        if lower - upper > tolerance:
            raise ValueError(
                f"weighted implication bounds inverted: lower {lower!r} > "
                f"upper {upper!r} beyond float tolerance — the negation "
                f"closed form and the scaled unweighted maximum disagree"
            )
        lower = upper
    return lower, upper


def _weighted_risk(
    worlds: list[dict], weights: Mapping[Any, float], event
) -> float | None:
    counts: Counter[tuple[Any, Any]] = Counter()
    accepted = 0
    for world in worlds:
        if event is not None and not event(world):
            continue
        accepted += 1
        counts.update(world.items())
    if accepted == 0:
        return None
    return max(
        _weight(weights, value) * count / accepted
        for (_, value), count in counts.items()
    )


def exact_weighted_disclosure(
    bucketization: Bucketization, k: int, weights: Mapping[Any, float]
) -> float:
    """Exact weighted maximum over conjunctions of ``k`` simple implications,
    by oracle enumeration (small instances only).

    Justified by Lemma 10/11, which hold for arbitrary target atoms (their
    statements never use the weights), so simple same-consequent implications
    still contain a maximizer; the full simple-implication family is
    enumerated anyway for belt-and-braces.
    """
    _validate_weights(weights)
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    worlds = list(enumerate_worlds(bucketization))
    persons = list(bucketization.person_ids)
    values = sorted(
        {v for b in bucketization.buckets for v in b.values_by_frequency},
        key=repr,
    )
    best = _weighted_risk(worlds, weights, None)
    assert best is not None
    if k == 0:
        return best
    for formula in enumerate_simple_conjunctions(persons, values, k):
        risk = _weighted_risk(worlds, weights, formula.holds_in)
        if risk is not None and risk > best:
            best = risk
    return best
