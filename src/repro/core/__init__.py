"""Core algorithms: the paper's primary contribution.

- :mod:`repro.core.exact` — exact random-worlds probabilities by enumeration
  (the #P-hard quantity of Theorem 8; the test oracle for everything else).
- :mod:`repro.core.minimize1` — Algorithm 1 / Lemma 12: per-bucket minimum of
  ``Pr(AND_i NOT A_i | B)``.
- :mod:`repro.core.minimize2` — Algorithm 2: cross-bucket minimization of
  Formula (1).
- :mod:`repro.core.disclosure` — maximum disclosure w.r.t. ``L^k_basic``
  (Definition 6) in ``O(|B| k^3)``.
- :mod:`repro.core.negation` — worst case for ``k`` negated atoms (the
  ℓ-diversity adversary; the dotted line of Figure 5).
- :mod:`repro.core.safety` — (c,k)-safety (Definition 13).
- :mod:`repro.core.witness` — reconstruction of a worst-case formula.
"""

from repro.core.disclosure import (
    max_disclosure,
    max_disclosure_series,
    min_formula1_ratio,
    min_k_to_breach,
)
from repro.core.exact import (
    enumerate_worlds,
    exact_disclosure_risk,
    exact_max_disclosure_simple,
    probability,
    world_count,
)
from repro.core.minimize1 import Minimize1Solver, lemma12_probability
from repro.core.minimize2 import min_ratio_table
from repro.core.negation import (
    max_disclosure_negations,
    max_disclosure_negations_series,
    negation_witness,
)
from repro.core.probabilistic import (
    jeffrey_disclosure_risk,
    jeffrey_probability,
    max_jeffrey_disclosure_single,
)
from repro.core.safety import SafetyChecker, is_ck_safe
from repro.core.sampling import (
    SampledProbability,
    sample_disclosure_risk,
    sample_probability,
)
from repro.core.weighted import (
    exact_weighted_disclosure,
    weighted_baseline_disclosure,
    weighted_implication_bounds,
    weighted_negation_disclosure,
)
from repro.core.witness import WorstCaseWitness, worst_case_witness

__all__ = [
    "max_disclosure",
    "max_disclosure_series",
    "min_formula1_ratio",
    "min_k_to_breach",
    "jeffrey_probability",
    "jeffrey_disclosure_risk",
    "max_jeffrey_disclosure_single",
    "sample_probability",
    "sample_disclosure_risk",
    "SampledProbability",
    "weighted_baseline_disclosure",
    "weighted_negation_disclosure",
    "weighted_implication_bounds",
    "exact_weighted_disclosure",
    "probability",
    "enumerate_worlds",
    "world_count",
    "exact_disclosure_risk",
    "exact_max_disclosure_simple",
    "Minimize1Solver",
    "lemma12_probability",
    "min_ratio_table",
    "max_disclosure_negations",
    "max_disclosure_negations_series",
    "negation_witness",
    "is_ck_safe",
    "SafetyChecker",
    "WorstCaseWitness",
    "worst_case_witness",
]
