"""Exact probabilities under the random-worlds model, by enumeration.

Section 2.2: with no knowledge beyond the bucketization, every table
consistent with it is equally likely. Consistent tables ("worlds") are the
assignments that, within each bucket, give its people exactly its multiset of
sensitive values; buckets are independent.

``Pr(C | B AND phi)`` is the fraction of worlds satisfying ``phi`` that also
satisfy ``C`` — exactly the quantity Theorem 8 proves #P-complete, which is
why everything here enumerates and is intended for *small* instances: it is
the ground-truth oracle the polynomial algorithms are validated against, and
the reference implementation of Definitions 5 and 6.

All results are :class:`fractions.Fraction` — no floating-point noise in the
oracle.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable, Iterator, Mapping
from fractions import Fraction
from functools import lru_cache, reduce
from itertools import permutations, product
from math import factorial
from typing import Any

from repro.bucketization.bucket import Bucket
from repro.bucketization.bucketization import Bucketization
from repro.errors import InconsistentWorldError
from repro.knowledge.atoms import Atom
from repro.knowledge.formulas import Conjunction
from repro.knowledge.language import (
    enumerate_same_consequent_conjunctions,
    enumerate_simple_conjunctions,
)

__all__ = [
    "bucket_assignments",
    "enumerate_worlds",
    "world_count",
    "probability",
    "exact_disclosure_risk",
    "exact_max_disclosure_simple",
    "exact_max_disclosure_negations",
]

#: Guard: refuse enumerations beyond this many worlds (anything bigger is a
#: caller bug — the polynomial algorithms exist for a reason).
MAX_WORLDS = 2_000_000

Event = Callable[[Mapping[Any, Any]], bool]


def _as_event(formula: Any) -> Event:
    """Accept an Atom/BasicImplication/Conjunction or a plain callable."""
    if hasattr(formula, "holds_in"):
        return formula.holds_in
    if callable(formula):
        return formula
    raise TypeError(f"not a formula or predicate: {formula!r}")


#: Only memoize assignment lists for buckets this small: 6! = 720 orderings
#: per entry keeps the whole 256-entry cache in the low megabytes, where a
#: larger cutoff (8! = 40,320 per entry) could still pin ~1 GB for the
#: process lifetime.
_ASSIGNMENT_CACHE_MAX_TUPLES = 6


@lru_cache(maxsize=256)
def _multiset_assignments(values: tuple) -> tuple[tuple, ...]:
    """Distinct orderings of a small value multiset, memoized.

    Keyed by the multiset in canonical (repr-sorted) order: buckets sharing a
    value multiset — rampant in oracle sweeps over many bucketizations —
    enumerate their ``n!`` permutations once.
    """
    return tuple(sorted(set(permutations(values)), key=repr))


def bucket_assignments(bucket: Bucket) -> list[tuple]:
    """All distinct assignments of the bucket's multiset to its people.

    Each assignment is a tuple aligned with ``bucket.person_ids``. Because the
    published permutation is uniform over the ``n!`` orderings and every
    distinct assignment corresponds to the same number of orderings
    (``prod_s n_b(s)!``), distinct assignments are equally likely.
    """
    values = bucket.sensitive_values
    if len(values) > _ASSIGNMENT_CACHE_MAX_TUPLES:
        return sorted(set(permutations(values)), key=repr)
    key = tuple(sorted(values, key=repr))
    return list(_multiset_assignments(key))


def world_count(bucketization: Bucketization) -> int:
    """Number of distinct worlds: the product over buckets of multinomial
    coefficients ``n_b! / prod_s n_b(s)!``."""

    def multinomial(bucket: Bucket) -> int:
        denom = reduce(
            lambda acc, c: acc * factorial(c), bucket.signature, 1
        )
        return factorial(bucket.size) // denom

    return reduce(lambda acc, b: acc * multinomial(b), bucketization.buckets, 1)


def enumerate_worlds(
    bucketization: Bucketization,
) -> Iterator[dict[Any, Any]]:
    """Yield every world consistent with ``bucketization``.

    Raises
    ------
    InconsistentWorldError
        If the enumeration would exceed :data:`MAX_WORLDS`.
    """
    total = world_count(bucketization)
    if total > MAX_WORLDS:
        raise InconsistentWorldError(
            f"{total} worlds exceed the enumeration guard ({MAX_WORLDS}); "
            "use the polynomial algorithms for instances this large"
        )
    per_bucket = [bucket_assignments(b) for b in bucketization.buckets]
    pid_lists = [b.person_ids for b in bucketization.buckets]
    for combo in product(*per_bucket):
        world: dict[Any, Any] = {}
        for pids, assignment in zip(pid_lists, combo):
            world.update(zip(pids, assignment))
        yield world


def probability(
    bucketization: Bucketization,
    event: Any,
    given: Any = None,
) -> Fraction:
    """``Pr(event | B AND given)`` as an exact fraction.

    Parameters
    ----------
    event, given:
        Formulas (anything with ``holds_in``) or predicates over worlds.
        ``given=None`` conditions only on the bucketization.

    Raises
    ------
    InconsistentWorldError
        If no world satisfies ``given`` (the conditional is undefined).
    """
    event_fn = _as_event(event)
    given_fn = _as_event(given) if given is not None else None
    satisfying = 0
    conditioning = 0
    for world in enumerate_worlds(bucketization):
        if given_fn is not None and not given_fn(world):
            continue
        conditioning += 1
        if event_fn(world):
            satisfying += 1
    if conditioning == 0:
        raise InconsistentWorldError(
            "conditioning event has probability zero under the bucketization"
        )
    return Fraction(satisfying, conditioning)


def exact_disclosure_risk(
    bucketization: Bucketization, phi: Any = None
) -> Fraction:
    """Definition 5: ``max_{p, s} Pr(t_p[S] = s | B AND phi)``.

    One pass over the worlds, counting per (person, value) jointly, instead of
    one conditional-probability query per atom.
    """
    given_fn = _as_event(phi) if phi is not None else None
    conditioning = 0
    counts: Counter[tuple[Any, Any]] = Counter()
    for world in enumerate_worlds(bucketization):
        if given_fn is not None and not given_fn(world):
            continue
        conditioning += 1
        counts.update(world.items())
    if conditioning == 0:
        raise InconsistentWorldError(
            "phi is inconsistent with the bucketization"
        )
    best = max(counts.values())
    return Fraction(best, conditioning)


def _risk_over_worlds(worlds: list[dict], event: Event | None) -> Fraction | None:
    """Definition 5 over a pre-materialized world list; ``None`` when no
    world satisfies ``event``."""
    counts: Counter[tuple[Any, Any]] = Counter()
    conditioning = 0
    for world in worlds:
        if event is not None and not event(world):
            continue
        conditioning += 1
        counts.update(world.items())
    if conditioning == 0:
        return None
    return Fraction(max(counts.values()), conditioning)


def _max_over_formulas(
    bucketization: Bucketization, formulas: Iterator[Conjunction]
) -> tuple[Fraction, Conjunction | None]:
    """Maximize Definition 5 over a finite family of formulas, skipping
    formulas inconsistent with the bucketization (the max in Definition 6
    ranges over satisfiable knowledge).

    Seeded with the no-knowledge risk: ``L^k_basic`` always contains
    tautological conjunctions (e.g. repeated ``A -> A``), so the maximum can
    never drop below the ``k = 0`` disclosure even when the enumerated family
    happens to be empty or fully inconsistent. Worlds are materialized once
    and shared across the whole formula family.
    """
    worlds = list(enumerate_worlds(bucketization))
    best = _risk_over_worlds(worlds, None)
    assert best is not None  # the unconditional risk always exists
    best_formula: Conjunction | None = Conjunction(())
    for formula in formulas:
        risk = _risk_over_worlds(worlds, formula.holds_in)
        if risk is not None and risk > best:
            best, best_formula = risk, formula
    return best, best_formula


def exact_max_disclosure_simple(
    bucketization: Bucketization,
    k: int,
    *,
    same_consequent_only: bool = False,
    return_witness: bool = False,
):
    """Definition 6 restricted to conjunctions of ``k`` *simple* implications,
    by brute force (exponential — small instances only).

    With ``same_consequent_only`` the search covers just the Theorem-9 family
    (all k implications share one consequent atom); comparing the two modes on
    small instances is the empirical validation of Theorem 9.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    persons = list(bucketization.person_ids)
    values = sorted(
        {v for b in bucketization.buckets for v in b.values_by_frequency},
        key=repr,
    )
    if k == 0:
        risk = exact_disclosure_risk(bucketization, None)
        return (risk, Conjunction(())) if return_witness else risk
    if same_consequent_only:
        formulas: Iterator[Conjunction] = (
            formula
            for _, formula in enumerate_same_consequent_conjunctions(
                persons, values, k
            )
        )
    else:
        formulas = enumerate_simple_conjunctions(persons, values, k)
    best, witness = _max_over_formulas(bucketization, formulas)
    return (best, witness) if return_witness else best


def exact_max_disclosure_negations(
    bucketization: Bucketization, k: int
) -> Fraction:
    """Worst case over all sets of **at most** ``k`` negated atoms, by brute
    force.

    "At most" because the sensitive domain ``S`` is not limited to the values
    realized in the bucketization: the attacker can always spend a negation
    on a value absent from the target's bucket (vacuously true), so ``k``
    pieces of negation knowledge subsume every smaller number. The
    enumeration here ranges over subsets of atoms built from *realized*
    values only, hence the explicit union over sizes ``0..k``.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    from itertools import combinations

    persons = list(bucketization.person_ids)
    values = sorted(
        {v for b in bucketization.buckets for v in b.values_by_frequency},
        key=repr,
    )
    atoms = [Atom(p, s) for p in persons for s in values]

    worlds = list(enumerate_worlds(bucketization))
    best = _risk_over_worlds(worlds, None)
    assert best is not None
    for size in range(1, k + 1):
        for negated in combinations(atoms, size):

            def phi(world: Mapping[Any, Any], _negated=negated) -> bool:
                return not any(atom.holds_in(world) for atom in _negated)

            risk = _risk_over_worlds(worlds, phi)
            if risk is not None and risk > best:
                best = risk
    return best
