"""Probabilistic background knowledge — the paper's Section-6 future work.

The base framework assumes the attacker *knows* phi. A realistic attacker is
often only *confident*: "Hannah's flu probably implies Charlie's (90%)".
The standard treatment is Jeffrey conditionalization: given confidence ``q``
in ``phi``, the posterior of an event ``C`` is

    P'(C) = q * Pr(C | B AND phi) + (1 - q) * Pr(C | B AND NOT phi)

(with the degenerate cases: ``q = 1`` is ordinary conditioning; if ``phi``
is certain or impossible under ``B`` the corresponding branch is dropped and
its weight renormalized onto the other — Jeffrey's rule requires the
evidence partition to have positive prior probability).

This module evaluates Jeffrey posteriors exactly via the world oracle and
derives the worst case over *which* single formula the attacker is confident
about — showing how disclosure degrades gracefully as confidence drops below
certainty. Exact and small-instance only, like everything oracle-based.
"""

from __future__ import annotations

from collections import Counter
from fractions import Fraction
from typing import Any

from repro.bucketization.bucketization import Bucketization
from repro.core.exact import enumerate_worlds
from repro.errors import InconsistentWorldError
from repro.knowledge.language import enumerate_simple_implications

__all__ = [
    "jeffrey_probability",
    "jeffrey_disclosure_risk",
    "max_jeffrey_disclosure_single",
]


def _as_event(formula: Any):
    return formula.holds_in if hasattr(formula, "holds_in") else formula


def jeffrey_probability(
    bucketization: Bucketization,
    event: Any,
    phi: Any,
    confidence: Fraction | float,
) -> Fraction:
    """Jeffrey posterior of ``event`` given confidence ``q`` in ``phi``.

    Parameters
    ----------
    confidence:
        The attacker's probability ``q`` that ``phi`` holds, in [0, 1].

    Raises
    ------
    InconsistentWorldError
        If ``q > 0`` but no world satisfies ``phi`` (confidence in an
        impossible statement), or ``q < 1`` but every world satisfies ``phi``
        (doubt about a tautology) — Jeffrey's rule needs the weighted cells
        to have positive prior probability.
    """
    q = Fraction(confidence).limit_denominator(10**9)
    if not 0 <= q <= 1:
        raise ValueError(f"confidence must be in [0, 1], got {confidence}")
    event_fn = _as_event(event)
    phi_fn = _as_event(phi)

    with_phi = hit_phi = without_phi = hit_not_phi = 0
    for world in enumerate_worlds(bucketization):
        if phi_fn(world):
            with_phi += 1
            if event_fn(world):
                hit_phi += 1
        else:
            without_phi += 1
            if event_fn(world):
                hit_not_phi += 1

    if q > 0 and with_phi == 0:
        raise InconsistentWorldError(
            "positive confidence in a formula inconsistent with B"
        )
    if q < 1 and without_phi == 0:
        raise InconsistentWorldError(
            "doubt about a formula implied by B (NOT phi has probability 0)"
        )
    posterior = Fraction(0)
    if with_phi:
        posterior += q * Fraction(hit_phi, with_phi)
    if without_phi:
        posterior += (1 - q) * Fraction(hit_not_phi, without_phi)
    return posterior


def jeffrey_disclosure_risk(
    bucketization: Bucketization, phi: Any, confidence: Fraction | float
) -> Fraction:
    """Definition 5 under Jeffrey conditioning: the maximum posterior over
    all (person, value) atoms, in one pass over the worlds."""
    q = Fraction(confidence).limit_denominator(10**9)
    if not 0 <= q <= 1:
        raise ValueError(f"confidence must be in [0, 1], got {confidence}")
    phi_fn = _as_event(phi)

    with_phi = without_phi = 0
    counts_phi: Counter[tuple] = Counter()
    counts_not: Counter[tuple] = Counter()
    for world in enumerate_worlds(bucketization):
        if phi_fn(world):
            with_phi += 1
            target = counts_phi
        else:
            without_phi += 1
            target = counts_not
        target.update(world.items())

    if q > 0 and with_phi == 0:
        raise InconsistentWorldError("confidence in an impossible formula")
    if q < 1 and without_phi == 0:
        raise InconsistentWorldError("doubt about a certain formula")

    keys = set(counts_phi) | set(counts_not)
    best = Fraction(0)
    for key in keys:
        posterior = Fraction(0)
        if with_phi:
            posterior += q * Fraction(counts_phi.get(key, 0), with_phi)
        if without_phi:
            posterior += (1 - q) * Fraction(counts_not.get(key, 0), without_phi)
        best = max(best, posterior)
    return best


def max_jeffrey_disclosure_single(
    bucketization: Bucketization, confidence: Fraction | float
) -> Fraction:
    """Worst case over all *single simple implications* the attacker might
    hold with the given confidence (the probabilistic analogue of
    ``L^1_basic``'s maximum disclosure).

    Equals the standard ``k = 1`` maximum disclosure at ``confidence = 1``.
    It is **not** monotone in ``confidence``: each formula's posterior is
    linear in ``q``, so the maximum over the pool is convex in ``q`` and
    peaks at an endpoint — and at ``q = 0`` the attacker effectively holds
    ``NOT (A -> B) = A AND NOT B``, conjunctive knowledge that can disclose
    *more* than any single implication (property-tested). Oracle-based:
    small instances only.
    """
    persons = list(bucketization.person_ids)
    values = sorted(
        {v for b in bucketization.buckets for v in b.values_by_frequency},
        key=repr,
    )
    # The attacker can always hold vacuous knowledge: baseline risk.
    best = jeffrey_disclosure_risk(bucketization, lambda w: True, 1)
    for implication in enumerate_simple_implications(persons, values):
        try:
            risk = jeffrey_disclosure_risk(bucketization, implication, confidence)
        except InconsistentWorldError:
            continue
        best = max(best, risk)
    return best
