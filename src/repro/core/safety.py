"""(c,k)-safety — Definition 13 — plus a caching checker for lattice search.

A bucketization is *(c,k)-safe* when its maximum disclosure w.r.t.
``L^k_basic`` is **strictly less than** ``c``. Theorem 14 makes this predicate
monotone along the paper's partial order (coarser is never less safe), which
is what lets Incognito-style search and binary search find minimal safe
bucketizations.

Both entry points are thin wrappers over the
:class:`~repro.engine.engine.DisclosureEngine`, so safety is defined for
*any* registered adversary model, not just implications: pass
``model="negation"`` (or a parameterized :class:`~repro.engine.base.AdversaryModel`
instance) to check safety against the ℓ-diversity attacker instead. The
signature-multiset memoization that used to live privately in
:class:`SafetyChecker` is now the engine's shared cache — a checker driving a
lattice sweep re-solves only genuinely new bucket shapes, and several
checkers can share one engine (and hence one cache) across thresholds.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.bucketization.bucketization import Bucketization

if TYPE_CHECKING:  # pragma: no cover - import cycle: engine builds on core
    from repro.engine.base import AdversaryModel
    from repro.engine.engine import DisclosureEngine

__all__ = ["is_ck_safe", "SafetyChecker"]


def _validate_k(k: int) -> None:
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")


def is_ck_safe(
    bucketization: Bucketization,
    c: float,
    k: int,
    *,
    exact: bool = False,
    model: str | AdversaryModel = "implication",
) -> bool:
    """True iff the worst-case disclosure against ``model`` is below ``c``.

    Parameters
    ----------
    c:
        Disclosure threshold in (0, 1] — or any positive value for models
        whose disclosure is not a probability (``unbounded_scale``, e.g. the
        cost-weighted adversary); ``c = 1`` tolerates everything short of
        certainty, smaller ``c`` is stricter.
    k:
        Attacker power: number of pieces of background knowledge.
    model:
        Adversary model name (default: the paper's ``L^k_basic``
        implications) or a model instance.

    Examples
    --------
    >>> from repro.bucketization import Bucketization
    >>> b = Bucketization.from_value_lists([["flu", "cold", "mumps"] * 2])
    >>> is_ck_safe(b, 0.75, 1)
    True
    >>> is_ck_safe(b, 0.5, 1)
    False
    >>> is_ck_safe(b, 0.75, 1, model="negation")
    True
    """
    from repro.engine.engine import DisclosureEngine

    _validate_k(k)
    return DisclosureEngine(exact=exact).is_safe(bucketization, c, k, model=model)


class SafetyChecker:
    """Reusable (c,k)-safety checker with cross-bucketization caching.

    One instance rides a :class:`~repro.engine.engine.DisclosureEngine`
    (shared MINIMIZE1 solver plus the signature-multiset cache), so sweeping
    a generalization lattice re-solves only genuinely new bucket shapes —
    the paper's incremental-cost remark (end of Section 3.3.3) realized, for
    every adversary model.

    Parameters
    ----------
    c, k:
        The safety threshold and attacker power (fixed per checker).
    exact:
        Use exact fractions throughout (ignored when ``engine`` is given —
        the engine's mode wins).
    model:
        Adversary model name or instance (default ``"implication"``).
    engine:
        Optional shared engine; pass one instance across several checkers
        (different ``c``/``k``/``model``) to pool their caches.
    """

    def __init__(
        self,
        c: float,
        k: int,
        *,
        exact: bool = False,
        model: str | AdversaryModel = "implication",
        engine: DisclosureEngine | None = None,
    ) -> None:
        from repro.engine.engine import DisclosureEngine

        _validate_k(k)
        self.c = c
        self.k = k
        self.engine = engine if engine is not None else DisclosureEngine(exact=exact)
        self.model = self.engine.model(model)
        # Validates c against the model's scale; fixed for the checker's life.
        self._threshold = self.engine.threshold(c, model=self.model)
        self.checks = 0
        self.cache_hits = 0

    @property
    def solver(self):
        """The engine's shared MINIMIZE1 solver (kept for API compatibility)."""
        return self.engine.context.solver

    def disclosure(self, bucketization: Bucketization):
        """Worst-case disclosure against the checker's model (cached)."""
        self.checks += 1
        hits_before = self.engine.stats.cache_hits
        value = self.engine.evaluate(bucketization, self.k, model=self.model)
        self.cache_hits += self.engine.stats.cache_hits - hits_before
        return value

    def is_safe(self, bucketization: Bucketization) -> bool:
        """(c,k)-safety of ``bucketization`` (Definition 13)."""
        return self.disclosure(bucketization) < self._threshold

    def __call__(self, bucketization: Bucketization) -> bool:
        return self.is_safe(bucketization)
