"""(c,k)-safety — Definition 13 — plus a caching checker for lattice search.

A bucketization is *(c,k)-safe* when its maximum disclosure w.r.t.
``L^k_basic`` is **strictly less than** ``c``. Theorem 14 makes this predicate
monotone along the paper's partial order (coarser is never less safe), which
is what lets Incognito-style search and binary search find minimal safe
bucketizations.

:class:`SafetyChecker` memoizes on the multiset of bucket signatures: two
bucketizations that partition people differently but induce the same
signature multiset have identical maximum disclosure, and during a lattice
sweep that happens constantly.
"""

from __future__ import annotations

from fractions import Fraction

from repro.bucketization.bucketization import Bucketization
from repro.core.disclosure import max_disclosure
from repro.core.minimize1 import Minimize1Solver

__all__ = ["is_ck_safe", "SafetyChecker"]


def is_ck_safe(
    bucketization: Bucketization, c: float, k: int, *, exact: bool = False
) -> bool:
    """True iff the maximum disclosure w.r.t. ``L^k_basic`` is below ``c``.

    Parameters
    ----------
    c:
        Disclosure threshold in (0, 1]; ``c = 1`` tolerates everything short
        of certainty, smaller ``c`` is stricter.
    k:
        Attacker power: number of basic implications.

    Examples
    --------
    >>> from repro.bucketization import Bucketization
    >>> b = Bucketization.from_value_lists([["flu", "cold", "mumps"] * 2])
    >>> is_ck_safe(b, 0.75, 1)
    True
    >>> is_ck_safe(b, 0.5, 1)
    False
    """
    if not 0 < c <= 1:
        raise ValueError(f"threshold c must be in (0, 1], got {c}")
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    return max_disclosure(bucketization, k, exact=exact) < c


class SafetyChecker:
    """Reusable (c,k)-safety checker with cross-bucketization caching.

    One instance shares a single :class:`~repro.core.minimize1.Minimize1Solver`
    (per-signature DP memo) and caches whole-bucketization disclosures keyed
    by the signature multiset, so sweeping a generalization lattice re-solves
    only genuinely new bucket shapes — the paper's incremental-cost remark
    (end of Section 3.3.3) realized.

    Parameters
    ----------
    c, k:
        The safety threshold and attacker power (fixed per checker).
    exact:
        Use exact fractions throughout.
    """

    def __init__(self, c: float, k: int, *, exact: bool = False) -> None:
        if not 0 < c <= 1:
            raise ValueError(f"threshold c must be in (0, 1], got {c}")
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        self.c = c
        self.k = k
        self.solver = Minimize1Solver(exact=exact)
        self._cache: dict[frozenset, object] = {}
        self.checks = 0
        self.cache_hits = 0

    def _key(self, bucketization: Bucketization) -> frozenset:
        return frozenset(bucketization.signature_multiset().items())

    def disclosure(self, bucketization: Bucketization):
        """Maximum disclosure w.r.t. ``L^k_basic`` (cached)."""
        self.checks += 1
        key = self._key(bucketization)
        cached = self._cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        value = max_disclosure(bucketization, self.k, solver=self.solver)
        self._cache[key] = value
        return value

    def is_safe(self, bucketization: Bucketization) -> bool:
        """(c,k)-safety of ``bucketization`` (Definition 13)."""
        threshold = (
            Fraction(self.c).limit_denominator()
            if self.solver.exact
            else self.c
        )
        return self.disclosure(bucketization) < threshold

    def __call__(self, bucketization: Bucketization) -> bool:
        return self.is_safe(bucketization)
