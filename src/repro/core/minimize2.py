"""MINIMIZE2 — Algorithm 2 of the paper, made iterative and incremental.

Minimizes Formula (1),

    Pr(NOT A AND (AND_{i in [k]} NOT A_i) | B) / Pr(A | B),

jointly over all atoms ``A, A_0, ..., A_{k-1}`` anywhere in the bucketization.
Maximum disclosure w.r.t. ``L^k_basic`` is then ``1 / (1 + minimum)``
(Section 3.3). Buckets are independent, so a placement is: choose how many
antecedent atoms each bucket receives and which bucket hosts the consequent
atom ``A``; the bucket hosting ``A`` contributes
``MINIMIZE1(b, m+1) * n_b / n_b(s_b^0)`` and every other bucket contributes
``MINIMIZE1(b, m)``.

Implementation notes (see DESIGN.md Section 6):

- The DP runs **iteratively** (one backward pass over the bucket list), so
  there is no recursion-depth limit for bucketizations with tens of
  thousands of buckets. State per position: ``f(h, a)`` where ``h`` is the
  number of antecedent atoms still to place and ``a`` says whether ``A`` has
  already been placed. As printed in the paper, Algorithm 2's base case
  returns infinity and the initial flag is inconsistent between the text and
  the pseudo-code; we implement the evidently intended semantics (base case:
  1 if everything is placed, else infeasible; initial flag: ``A`` not yet
  placed) and validate against brute force.
- Buckets with equal signatures are interchangeable, and at most ``k+1``
  buckets ever receive an atom, so each distinct signature is kept at most
  ``max_k + 1`` times (``dedupe=True``). This turns ``O(|B| k^2)`` into
  ``O(min(|B|, distinct * (k+1)) * k^2)`` transitions plus one group-by.
- One pass produces the answers for **all** ``k' <= max_k`` simultaneously.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Mapping, Sequence
from fractions import Fraction

from repro.core import kernel as _kernel
from repro.core.minimize1 import INFEASIBLE, Minimize1Solver, resolve_solver

__all__ = ["min_ratio_table", "effective_signatures", "MinRatioComputation"]


def _times(a, b):
    """Product that treats :data:`INFEASIBLE` as absorbing (avoids 0 * inf)."""
    if a == INFEASIBLE or b == INFEASIBLE:
        return INFEASIBLE
    return a * b


def effective_signatures(
    signatures: Sequence[tuple[int, ...]] | Mapping[tuple[int, ...], int],
    cap: int,
) -> list[tuple[int, ...]]:
    """Deduplicate a signature list: keep each distinct signature at most
    ``cap`` times (``cap = max_k + 1`` preserves every optimum because a
    placement touches at most ``k + 1`` buckets).

    Accepts either one signature per bucket or a pre-counted multiset
    (``signature -> count``, the signature plane's native form); both yield
    the identical effective list, so counted callers skip materializing a
    per-bucket list entirely.
    """
    if cap <= 0:
        raise ValueError(f"cap must be positive, got {cap}")
    counted = (
        signatures if isinstance(signatures, Mapping) else Counter(signatures)
    )
    effective: list[tuple[int, ...]] = []
    for signature in sorted(counted, key=repr):
        effective.extend([signature] * min(counted[signature], cap))
    return effective


class MinRatioComputation:
    """One backward DP pass, with per-position tables retained.

    Retaining the tables lets :mod:`repro.core.witness` walk forward and
    reconstruct an optimal placement. For plain disclosure numbers use
    :func:`min_ratio_table`, which discards intermediates.

    Parameters
    ----------
    signatures:
        One signature per bucket, in a fixed order (positions index into this
        list; with deduplication disabled they correspond to actual buckets).
    max_k:
        Largest number of antecedent atoms to support.
    solver:
        Shared :class:`~repro.core.minimize1.Minimize1Solver` (its ``exact``
        flag decides the arithmetic).
    """

    def __init__(
        self,
        signatures: Sequence[tuple[int, ...]],
        max_k: int,
        solver: Minimize1Solver,
    ) -> None:
        if max_k < 0:
            raise ValueError(f"max_k must be non-negative, got {max_k}")
        sigs = list(signatures)
        if not sigs:
            raise ValueError("need at least one bucket")
        self.signatures = sigs
        self.max_k = max_k
        self.solver = solver
        one = Fraction(1) if solver.exact else 1.0

        # f_after[i] = (fa, ff) where fa[h] / ff[h] are the minimum products
        # contributed by buckets i..end when h antecedent atoms remain and A
        # is already placed (fa) or still to place (ff).
        if solver.kernel == "numpy":
            tables = solver.tables(sigs, max_k + 1)
            boosts = [sum(s) / s[0] for s in sigs]
            self._after = _kernel.min_ratio_backward(tables, boosts, max_k)
            self._after.reverse()
            return
        width = max_k + 1
        fa = [one] + [INFEASIBLE] * max_k
        ff = [INFEASIBLE] * width
        self._after: list[tuple[list, list]] = [(fa, ff)]
        for signature in reversed(sigs):
            g = solver.table(signature, max_k + 1)
            n = sum(signature)
            top = signature[0]
            boost = Fraction(n, top) if solver.exact else n / top
            ghat = [_times(g[m + 1], boost) for m in range(width)]
            prev_fa, prev_ff = self._after[-1]
            new_fa = [
                min(_times(g[m], prev_fa[h - m]) for m in range(h + 1))
                for h in range(width)
            ]
            new_ff = [
                min(
                    min(_times(g[m], prev_ff[h - m]) for m in range(h + 1)),
                    min(_times(ghat[m], prev_fa[h - m]) for m in range(h + 1)),
                )
                for h in range(width)
            ]
            self._after.append((new_fa, new_ff))
        self._after.reverse()  # _after[i] now = tables for suffix starting at i

    def tables_at(self, position: int) -> tuple[list, list]:
        """``(fa, ff)`` for the bucket suffix starting at ``position``."""
        return self._after[position]

    def ratio(self, k: int):
        """Minimum of Formula (1) using exactly ``k`` antecedent atoms."""
        if not 0 <= k <= self.max_k:
            raise ValueError(f"k={k} outside [0, {self.max_k}]")
        return self._after[0][1][k]

    def ratios(self) -> list:
        """``[ratio(k) for k in 0..max_k]``."""
        return list(self._after[0][1])


def min_ratio_table(
    signatures: Sequence[tuple[int, ...]] | Mapping[tuple[int, ...], int],
    max_k: int,
    *,
    solver: Minimize1Solver | None = None,
    exact: bool | None = None,
    dedupe: bool = True,
    kernel: str = "auto",
) -> list:
    """Minimum of Formula (1) for every ``k in 0..max_k`` over a bucketization
    given by its bucket ``signatures`` (one per bucket, or pre-counted as a
    ``signature -> count`` mapping — the signature plane's form).

    The result is a list ``r`` with ``max disclosure(k) = 1 / (1 + r[k])``;
    ``r[k] = 0`` means some k-implication formula forces a certain disclosure.

    Parameters
    ----------
    solver:
        Reuse a solver to share MINIMIZE1 memoization across calls (the
        incremental-cost remark of Section 3.3.3); a fresh one is created
        otherwise with the requested ``exact`` mode. ``exact``/``solver``
        resolve via :func:`repro.core.minimize1.resolve_solver` (the solver's
        mode wins; explicit conflicts raise).
    dedupe:
        Collapse equal signatures (always safe; disable only to measure the
        undeduplicated algorithm).
    kernel:
        Kernel selector for a freshly created solver (``auto``/``numpy``/
        ``scalar``); a provided ``solver``'s kernel wins. The numpy kernel
        is bit-identical to scalar on the float path.
    """
    solver = resolve_solver(exact, solver, kernel)
    if dedupe:
        sigs = effective_signatures(signatures, max_k + 1)
    elif isinstance(signatures, Mapping):
        # Expand the counted form in the same canonical order the dedupe
        # path uses, so float results are bit-identical either way.
        sigs = [
            signature
            for signature in sorted(signatures, key=repr)
            for _ in range(signatures[signature])
        ]
    else:
        sigs = list(signatures)
    return MinRatioComputation(sigs, max_k, solver).ratios()
