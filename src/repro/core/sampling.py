"""Monte Carlo estimation of ``Pr(C | B AND phi)`` for large instances.

Theorem 8: computing this probability exactly for a *given* formula is
#P-complete, and :mod:`repro.core.exact` only scales to toy instances. For
everything else this module estimates it by sampling worlds: draw a uniform
random permutation of each bucket's sensitive multiset (exactly the
bucketization's generative process), apply rejection on the conditioning
formula, and count.

The estimator is unbiased with a Wilson confidence interval; rejection makes
it practical only when ``Pr(phi | B)`` is non-negligible — which is the
typical regime for plausible background knowledge (knowledge that is almost
surely false barely conditions anything real). For formulas with tiny
acceptance rates, fall back to :func:`repro.core.exact.probability` on a
reduced instance.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from collections.abc import Callable, Mapping
from dataclasses import dataclass
from typing import Any

from repro.bucketization.bucketization import Bucketization
from repro.errors import InconsistentWorldError

__all__ = ["SampledProbability", "sample_probability", "sample_disclosure_risk"]


@dataclass(frozen=True)
class SampledProbability:
    """A Monte Carlo estimate with its sampling metadata.

    Attributes
    ----------
    estimate:
        ``accepted_and_event / accepted`` — the conditional probability.
    samples:
        Total worlds drawn.
    accepted:
        Worlds satisfying the conditioning formula (rejection survivors).
    low, high:
        95% Wilson score interval for the estimate.
    """

    estimate: float
    samples: int
    accepted: int
    low: float
    high: float

    @property
    def acceptance_rate(self) -> float:
        """Fraction of sampled worlds that satisfied the conditioning."""
        return self.accepted / self.samples if self.samples else 0.0


def _wilson(successes: int, trials: int, z: float = 1.959964) -> tuple[float, float]:
    """95% Wilson score interval for a binomial proportion."""
    if trials == 0:
        return 0.0, 1.0
    p = successes / trials
    denom = 1 + z**2 / trials
    center = (p + z**2 / (2 * trials)) / denom
    margin = (
        z * math.sqrt(p * (1 - p) / trials + z**2 / (4 * trials**2)) / denom
    )
    return max(0.0, center - margin), min(1.0, center + margin)


def _draw_world(
    bucketization: Bucketization, rng: random.Random
) -> dict[Any, Any]:
    """One world: an independent uniform permutation per bucket."""
    world: dict[Any, Any] = {}
    for bucket in bucketization.buckets:
        values = list(bucket.sensitive_values)
        rng.shuffle(values)
        world.update(zip(bucket.person_ids, values))
    return world


def sample_probability(
    bucketization: Bucketization,
    event: Any,
    given: Any = None,
    *,
    samples: int = 20_000,
    seed: int = 0,
) -> SampledProbability:
    """Estimate ``Pr(event | B AND given)`` by rejection sampling.

    Parameters
    ----------
    event, given:
        Formulas (``holds_in``) or world predicates, as in
        :func:`repro.core.exact.probability`.
    samples:
        Number of worlds to draw (before rejection).
    seed:
        PRNG seed; fixed for reproducibility.

    Raises
    ------
    InconsistentWorldError
        If no sampled world satisfied ``given`` — either the knowledge is
        inconsistent with the bucketization or its probability is too small
        for rejection sampling at this sample size.
    """
    if samples <= 0:
        raise ValueError(f"samples must be positive, got {samples}")
    event_fn: Callable[[Mapping], bool] = (
        event.holds_in if hasattr(event, "holds_in") else event
    )
    given_fn = None
    if given is not None:
        given_fn = given.holds_in if hasattr(given, "holds_in") else given

    rng = random.Random(seed)
    accepted = 0
    hits = 0
    for _ in range(samples):
        world = _draw_world(bucketization, rng)
        if given_fn is not None and not given_fn(world):
            continue
        accepted += 1
        if event_fn(world):
            hits += 1
    if accepted == 0:
        raise InconsistentWorldError(
            f"no world among {samples} samples satisfied the conditioning "
            "formula; it is inconsistent or too rare for rejection sampling"
        )
    low, high = _wilson(hits, accepted)
    return SampledProbability(
        estimate=hits / accepted,
        samples=samples,
        accepted=accepted,
        low=low,
        high=high,
    )


def sample_disclosure_risk(
    bucketization: Bucketization,
    phi: Any = None,
    *,
    samples: int = 20_000,
    seed: int = 0,
) -> SampledProbability:
    """Estimate Definition 5 (``max_{p,s} Pr(t_p = s | B AND phi)``) from one
    sampling pass: count per-(person, value) frequencies among accepted
    worlds and report the maximum with its interval."""
    if samples <= 0:
        raise ValueError(f"samples must be positive, got {samples}")
    given_fn = None
    if phi is not None:
        given_fn = phi.holds_in if hasattr(phi, "holds_in") else phi
    rng = random.Random(seed)
    accepted = 0
    counts: Counter[tuple[Any, Any]] = Counter()
    for _ in range(samples):
        world = _draw_world(bucketization, rng)
        if given_fn is not None and not given_fn(world):
            continue
        accepted += 1
        counts.update(world.items())
    if accepted == 0:
        raise InconsistentWorldError(
            f"no world among {samples} samples satisfied phi"
        )
    best = max(counts.values())
    low, high = _wilson(best, accepted)
    return SampledProbability(
        estimate=best / accepted,
        samples=samples,
        accepted=accepted,
        low=low,
        high=high,
    )
