"""Vectorized float-mode kernel for the MINIMIZE1/MINIMIZE2 hot path.

Every disclosure query bottoms out in the paper's ``O(|B| k^3)``
MINIMIZE1/MINIMIZE2 dynamic programs. This module batches those DPs over
numpy arrays:

- :func:`minimize1_tables` runs MINIMIZE1's ``(i, cap, rem)`` recursion as
  one layered array pass over **all** distinct signatures in a batch at
  once, instead of one memoized Python recursion per signature.
- :func:`min_ratio_backward` runs MINIMIZE2's backward ``fa``/``ff``
  recurrence as ``(width,)``-shaped array updates per bucket position, with
  :data:`~repro.core.minimize1.INFEASIBLE` kept as ``+inf`` so the scalar
  ``_times`` absorbing product becomes masked array arithmetic.

Both functions reproduce the scalar float path **bit-for-bit**: the same
int->float64 divisions, the same multiplication pairs, and mins over the
same candidate sets (a min over identical floats is order-independent).
The one numpy-specific hazard — ``0.0 * inf == nan`` where the scalar code
short-circuits — is masked explicitly before the product is consumed.

numpy is an *optional* dependency (the ``repro[fast]`` extra).
:func:`resolve_kernel` maps the user-facing ``kernel={auto,numpy,scalar}``
selector to a concrete kernel: exact (Fraction) mode is always scalar — the
authoritative oracle — and a ``numpy`` request without numpy installed
falls back to scalar with a one-time :class:`RuntimeWarning`.

This module is self-contained (no ``repro`` imports) so the core solvers
can import it without cycles.
"""

from __future__ import annotations

import warnings
from collections.abc import Sequence

__all__ = [
    "KERNELS",
    "numpy_available",
    "resolve_kernel",
    "minimize1_tables",
    "min_ratio_backward",
]

#: Valid values for the user-facing kernel selector.
KERNELS = ("auto", "numpy", "scalar")

_np = None
_np_checked = False
_warned_missing = False


def _numpy():
    """The numpy module, or ``None`` — imported lazily, probed once."""
    global _np, _np_checked
    if not _np_checked:
        _np_checked = True
        try:
            import numpy
        except ImportError:  # pragma: no cover - exercised in no-numpy CI leg
            _np = None
        else:
            _np = numpy
    return _np


def numpy_available() -> bool:
    """Whether the vectorized kernel can run in this environment."""
    return _numpy() is not None


def resolve_kernel(kernel: str, *, exact: bool = False) -> str:
    """Map a ``kernel`` selector to the concrete kernel that will run.

    Returns ``"numpy"`` or ``"scalar"``. Exact (Fraction) arithmetic is
    always scalar — the vectorized path is float-only and the exact oracle
    stays the correctness reference. ``"auto"`` silently picks numpy when
    available; an explicit ``"numpy"`` request without numpy installed
    falls back to scalar with a one-time :class:`RuntimeWarning`.
    """
    global _warned_missing
    if kernel not in KERNELS:
        raise ValueError(
            f"kernel must be one of {KERNELS}, got {kernel!r}"
        )
    if exact or kernel == "scalar":
        return "scalar"
    if numpy_available():
        return "numpy"
    if kernel == "numpy" and not _warned_missing:
        _warned_missing = True
        warnings.warn(
            "kernel='numpy' requested but numpy is not installed; "
            "falling back to the scalar kernel "
            "(pip install 'repro[fast]' to enable it)",
            RuntimeWarning,
            stacklevel=2,
        )
    return "scalar"


def minimize1_tables(
    signatures: Sequence[tuple[int, ...]], max_m: int
) -> list[list[float]]:
    """Batched MINIMIZE1: ``[solver.table(sig, max_m) for sig in signatures]``
    as one layered numpy pass, bit-identical to the scalar float DP.

    ``signatures`` must be validated (non-empty, positive, non-increasing)
    by the caller; they need not be distinct, but callers that deduplicate
    first do the work once per distinct signature.

    The scalar recursion ``g(i, cap, rem)`` is evaluated bottom-up over
    layers ``i = max_m .. 0`` with state arrays of shape
    ``(S, width, width)`` indexed ``[signature, cap, rem]``. At layer ``i``
    only states with ``rem <= max_m - i`` are ever consulted, so the top
    layer's boundary (1 when ``rem == 0``, else infeasible) is correct for
    every signature, including those with fewer than ``max_m`` tuples.
    """
    np = _numpy()
    if np is None:  # pragma: no cover - callers gate on resolve_kernel
        raise RuntimeError("numpy kernel requested but numpy is unavailable")
    if max_m < 0:
        raise ValueError(f"max_m must be non-negative, got {max_m}")
    sigs = [tuple(s) for s in signatures]
    if not sigs:
        return []
    if max_m == 0:
        return [[1.0] for _ in sigs]

    width = max_m + 1
    count = len(sigs)
    n = np.array([sum(s) for s in sigs], dtype=np.int64)
    # P[s, k] = prefix-sum of the top min(k, d_s) frequencies; zero padding
    # past each signature's last distinct value saturates the cumsum exactly
    # like the scalar ``prefix[min(k, d)]`` lookup.
    counts = np.zeros((count, max_m), dtype=np.int64)
    for row, sig in enumerate(sigs):
        head = sig[:max_m]
        counts[row, : len(head)] = head
    prefix = np.zeros((count, width), dtype=np.int64)
    prefix[:, 1:] = np.cumsum(counts, axis=1)

    k_idx = np.arange(1, width)  # candidate atoms for the current person
    rem_idx = np.arange(width)
    rem_after = rem_idx[None, :] - k_idx[:, None]  # (K, width)
    valid_k = rem_after >= 0
    gather = np.where(valid_k, rem_after, 0)

    inf = np.inf
    boundary = np.where(rem_idx == 0, 1.0, inf)  # (width,) per (cap, rem=..)
    boundary = np.broadcast_to(boundary, (width, width))
    g_layer = np.broadcast_to(boundary, (count, width, width)).copy()

    for i in range(max_m - 1, -1, -1):
        denom = n - i  # people remaining in the bucket after i placements
        safe_denom = np.where(denom > 0, denom, 1)
        # numerator for person i taking its top-k values, clamped at 0 so
        # the factor is exactly the scalar path's literal 0.0.
        numer = denom[:, None] - prefix[:, 1:]  # (S, K)
        factor = np.maximum(numer, 0) / safe_denom[:, None]
        # rest[s, k, rem] = g(i+1, k, rem - k) for each candidate k.
        rest = g_layer[:, k_idx[:, None], gather]
        with np.errstate(invalid="ignore"):
            cand = factor[:, :, None] * rest
        cand = np.where(np.isinf(rest), inf, cand)  # _times absorbing inf
        cand = np.where(valid_k[None, :, :], cand, inf)
        # Prefix-min over k <= cap gives every cap row in one accumulate.
        cum = np.minimum.accumulate(cand, axis=1)
        g_next = np.empty_like(g_layer)
        g_next[:, 0, :] = inf  # cap == 0: no candidate atom counts
        g_next[:, 1:, :] = cum
        g_next[:, :, 0] = 1.0  # rem == 0 precedes the i >= n check
        # Signatures already out of people keep the boundary pattern.
        g_layer = np.where((i < n)[:, None, None], g_next, boundary[None])

    diag = g_layer[:, rem_idx, rem_idx]  # table[s][m] = g(0, m, m)
    diag[:, 0] = 1.0
    return diag.tolist()


def min_ratio_backward(
    tables: Sequence[Sequence[float]],
    boosts: Sequence[float],
    max_k: int,
) -> list[tuple[list[float], list[float]]]:
    """MINIMIZE2's backward pass over pre-computed MINIMIZE1 tables.

    ``tables[i]`` is the float MINIMIZE1 table of bucket ``i`` (forward
    order, length at least ``max_k + 2``) and ``boosts[i] = n_i / top_i``
    its consequent-hosting boost. Returns the ``_after`` list in the same
    layout the scalar :class:`~repro.core.minimize2.MinRatioComputation`
    builds *before* reversal: the boundary pair first, then one
    ``(fa, ff)`` pair per bucket processed back-to-front, as plain Python
    float lists so witness reconstruction walks them unchanged.
    """
    np = _numpy()
    if np is None:  # pragma: no cover - callers gate on resolve_kernel
        raise RuntimeError("numpy kernel requested but numpy is unavailable")
    width = max_k + 1
    inf = np.inf
    fa = np.full(width, inf)
    fa[0] = 1.0
    ff = np.full(width, inf)
    after: list[tuple[list[float], list[float]]] = [(fa.tolist(), ff.tolist())]

    m_idx = np.arange(width)[:, None]
    h_idx = np.arange(width)[None, :]
    valid = m_idx <= h_idx
    shift = np.where(valid, h_idx - m_idx, 0)

    def conv_min(vec, prev):
        # out[h] = min_{m <= h} _times(vec[m], prev[h - m]); MINIMIZE1
        # values are always finite, so only ``prev`` can carry infeasible.
        prev_m = prev[shift]
        with np.errstate(invalid="ignore"):
            prod = vec[:, None] * prev_m
        prod = np.where(np.isinf(prev_m), inf, prod)
        prod = np.where(valid, prod, inf)
        return prod.min(axis=0)

    for table, boost in zip(reversed(tables), reversed(boosts)):
        g = np.asarray(table[:width], dtype=np.float64)
        ghat = np.asarray(table[1 : width + 1], dtype=np.float64) * boost
        new_fa = conv_min(g, fa)
        new_ff = np.minimum(conv_min(g, ff), conv_min(ghat, fa))
        fa, ff = new_fa, new_ff
        after.append((fa.tolist(), ff.tolist()))
    return after
