"""Reconstruct a concrete worst-case formula, not just its probability.

The paper notes (Sections 3.3.1, 3.3.3) that MINIMIZE1 and MINIMIZE2 are
"easy to modify ... to remember the minimizing values" and hence the
minimizing atoms. This module does exactly that: it walks the retained DP
tables of :class:`~repro.core.minimize2.MinRatioComputation` forward to find
an optimal placement of atoms into buckets, expands each bucket's share with
Lemma 12 (top values to the first people), and emits the ``k`` simple
implications — all sharing the consequent atom — that achieve the maximum
disclosure. Tests feed the witness back through the exact oracle and check
``Pr(A | B and formula)`` equals the DP's answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.bucketization.bucket import Bucket
from repro.bucketization.bucketization import Bucketization
from repro.core.minimize1 import (
    INFEASIBLE,
    Minimize1Solver,
    best_partition,
)
from repro.core.minimize2 import MinRatioComputation, _times
from repro.knowledge.atoms import Atom
from repro.knowledge.formulas import BasicImplication, Conjunction

__all__ = ["WorstCaseWitness", "worst_case_witness"]


@dataclass(frozen=True)
class WorstCaseWitness:
    """A maximizing formula for Definition 6.

    Attributes
    ----------
    consequent:
        The atom ``A`` whose probability the formula maximizes (the disclosed
        fact).
    implications:
        Exactly ``k`` simple implications, every one with consequent ``A``
        (Theorem 9's special form). May contain repeats when the optimum
        needs fewer than ``k`` distinct statements.
    ratio:
        The minimized Formula (1) value.
    disclosure:
        ``Pr(consequent | B and formula) = 1 / (1 + ratio)``.
    """

    consequent: Atom
    implications: tuple[BasicImplication, ...]
    ratio: object
    disclosure: object

    @property
    def formula(self) -> Conjunction:
        """The witness as an ``L^k_basic`` formula."""
        return Conjunction(self.implications)

    @property
    def k(self) -> int:
        """Number of implication conjuncts."""
        return len(self.implications)


def _bucket_atoms(bucket: Bucket, total_atoms: int, *, exact: bool) -> list[Atom]:
    """Lemma-12 atoms for ``total_atoms`` atoms inside ``bucket``: person ``i``
    receives the bucket's ``k_i`` most frequent values, for the minimizing
    partition. Parts are clamped at the number of distinct values — extra
    atoms are redundant once a person's every value is excluded."""
    _, parts = best_partition(bucket.signature, total_atoms, exact=exact)
    order = bucket.values_by_frequency
    atoms = []
    for person_index, k_i in enumerate(parts):
        person = bucket.person_ids[person_index]
        for j in range(min(k_i, len(order))):
            atoms.append(Atom(person, order[j]))
    return atoms


def worst_case_witness(
    bucketization: Bucketization, k: int, *, exact: bool = False
) -> WorstCaseWitness:
    """Compute maximum disclosure *and* a formula achieving it.

    Parameters
    ----------
    bucketization:
        The published buckets.
    k:
        Attacker power (number of simple-implication conjuncts to emit).
    exact:
        Exact fraction arithmetic end to end.

    Notes
    -----
    Witness reconstruction enumerates integer partitions per chosen bucket
    (exact but exponential in ``k``); for the disclosure *number* alone use
    :func:`repro.core.disclosure.max_disclosure`, which stays polynomial.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    solver = Minimize1Solver(exact=exact)

    # Deduplicate buckets by signature but keep real Bucket objects: one
    # representative per copy so reconstructed atoms involve real people.
    by_signature: dict[tuple[int, ...], list[Bucket]] = {}
    for bucket in bucketization.buckets:
        by_signature.setdefault(bucket.signature, []).append(bucket)
    effective: list[Bucket] = []
    for signature in sorted(by_signature, key=repr):
        effective.extend(by_signature[signature][: k + 1])

    comp = MinRatioComputation(
        [b.signature for b in effective], k, solver
    )

    # Forward walk: at each position re-derive the argmin the backward pass
    # took. h = antecedent atoms still unplaced, placed_a = consequent placed.
    h = k
    placed_a = False
    plan: list[tuple[Bucket, int, bool]] = []  # (bucket, antecedents, hosts A)
    for position, bucket in enumerate(effective):
        g = solver.table(bucket.signature, k + 1)
        n = bucket.size
        top = bucket.top_frequency
        boost = Fraction(n, top) if solver.exact else n / top
        next_fa, next_ff = comp.tables_at(position + 1)

        if placed_a:
            options = [
                (_times(g[m], next_fa[h - m]), m, False) for m in range(h + 1)
            ]
        else:
            options = [
                (_times(g[m], next_ff[h - m]), m, False) for m in range(h + 1)
            ]
            options += [
                (_times(_times(g[m + 1], boost), next_fa[h - m]), m, True)
                for m in range(h + 1)
            ]
        value, m, hosts_a = min(options, key=lambda o: (o[0], o[1]))
        if value == INFEASIBLE:  # pragma: no cover - defensive
            raise AssertionError("DP walk entered an infeasible state")
        plan.append((bucket, m, hosts_a))
        h -= m
        placed_a = placed_a or hosts_a
    if h != 0 or not placed_a:  # pragma: no cover - defensive
        raise AssertionError("DP walk did not place every atom")

    consequent: Atom | None = None
    antecedent_atoms: list[Atom] = []
    for bucket, m, hosts_a in plan:
        total = m + (1 if hosts_a else 0)
        if total == 0:
            continue
        atoms = _bucket_atoms(bucket, total, exact=exact)
        if hosts_a:
            # Lemma 12 gives person 0 the most frequent value first: that atom
            # is the consequent A (maximal Pr(A | B) in this bucket).
            consequent = atoms[0]
            antecedent_atoms.extend(atoms[1:])
        else:
            antecedent_atoms.extend(atoms)
    assert consequent is not None  # placed_a guarantees it

    implications = [
        BasicImplication(antecedents=(atom,), consequents=(consequent,))
        for atom in antecedent_atoms
    ]
    # Partitions clamp redundant atoms (a person never needs more atoms than
    # distinct values); pad with repeats so the witness sits in L^k exactly.
    while len(implications) < k:
        filler = implications[-1] if implications else BasicImplication(
            antecedents=(consequent,), consequents=(consequent,)
        )
        implications.append(filler)

    ratio = comp.ratio(k)
    if solver.exact:
        disclosure = Fraction(1) / (1 + ratio)
    else:
        disclosure = 1.0 / (1.0 + ratio)
    return WorstCaseWitness(
        consequent=consequent,
        implications=tuple(implications),
        ratio=ratio,
        disclosure=disclosure,
    )
