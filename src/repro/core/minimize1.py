"""MINIMIZE1 — Algorithm 1 and Lemma 12 of the paper.

Minimizes ``Pr(AND_{i in [m]} NOT A_i | B)`` over all choices of ``m`` atoms
that involve people in a single bucket ``b``. Lemma 12 reduces the search to
*shapes*: pick ``l`` distinct people, give the ``i``-th person the bucket's
``k_i`` most frequent values (``k_0 >= k_1 >= ... >= k_{l-1}``,
``sum k_i = m``), and the probability has the closed form

    prod_{i in [l]}  (n_b - i - sum_{j in [k_i]} n_b(s_b^j)) / (n_b - i)

so minimizing over atom sets becomes minimizing over integer partitions of
``m``. This module provides:

- :func:`lemma12_probability` — the closed form for one partition (with the
  factor clamped at 0; see DESIGN.md "known discrepancies" item 3),
- :class:`Minimize1Solver` — the paper's memoized ``O(k^3)`` dynamic program,
  usable in float or exact-:class:`~fractions.Fraction` arithmetic,
- :func:`minimize1_reference` / :func:`best_partition` — direct enumeration
  over all partitions (the independent reference used by tests and by witness
  reconstruction).

A bucket enters these functions only through its *signature* (its sensitive
frequencies in descending order), so results are memoized per signature and
shared across buckets and across bucketizations — this implements the
incremental-recomputation remark at the end of Section 3.3.3.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from fractions import Fraction

from repro.core import kernel as _kernel

__all__ = [
    "INFEASIBLE",
    "lemma12_probability",
    "iter_partitions",
    "minimize1_reference",
    "best_partition",
    "Minimize1Solver",
    "resolve_solver",
]

#: Marker for infeasible placements (more people needed than the bucket has).
INFEASIBLE = float("inf")


def _validate_signature(signature: Sequence[int]) -> tuple[int, ...]:
    sig = tuple(signature)
    if not sig:
        raise ValueError("signature must be non-empty")
    if any(c <= 0 for c in sig):
        raise ValueError(f"signature counts must be positive: {sig}")
    if any(a < b for a, b in zip(sig, sig[1:])):
        raise ValueError(f"signature must be non-increasing: {sig}")
    return sig


def _prefix_sums(signature: tuple[int, ...]) -> list[int]:
    """``prefix[j] = n_b(s^0) + ... + n_b(s^{j-1})``; saturates past the last
    distinct value (frequencies of absent values are zero)."""
    prefix = [0]
    for count in signature:
        prefix.append(prefix[-1] + count)
    return prefix


def lemma12_probability(
    signature: Sequence[int], parts: Sequence[int], *, exact: bool = False
):
    """Closed form of Lemma 12 for one partition ``parts = (k_0, ..., k_{l-1})``.

    Returns the probability that, for each ``i``, person ``i`` (all distinct,
    in one bucket with the given frequency ``signature``) has none of the
    bucket's ``k_i`` most frequent values. Factors are clamped at 0: when the
    top-``k_i`` values exhaust the remaining slots the event is impossible.

    Raises
    ------
    ValueError
        If ``parts`` is not non-increasing with positive entries, or uses
        more people than the bucket holds.
    """
    sig = _validate_signature(signature)
    parts = tuple(parts)
    if any(p <= 0 for p in parts):
        raise ValueError(f"partition parts must be positive: {parts}")
    if any(a < b for a, b in zip(parts, parts[1:])):
        raise ValueError(f"partition must be non-increasing: {parts}")
    n = sum(sig)
    if len(parts) > n:
        raise ValueError(
            f"partition uses {len(parts)} people but the bucket has {n} tuples"
        )
    prefix = _prefix_sums(sig)
    d = len(sig)
    result = Fraction(1) if exact else 1.0
    for i, k_i in enumerate(parts):
        numerator = n - i - prefix[min(k_i, d)]
        if numerator <= 0:
            return Fraction(0) if exact else 0.0
        if exact:
            result *= Fraction(numerator, n - i)
        else:
            result *= numerator / (n - i)
    return result


def iter_partitions(m: int, max_parts: int) -> Iterator[tuple[int, ...]]:
    """All partitions of ``m`` into at most ``max_parts`` positive,
    non-increasing parts. ``m = 0`` yields the empty partition."""
    if m < 0:
        raise ValueError(f"m must be non-negative, got {m}")

    def recurse(remaining: int, cap: int, slots: int, acc: list[int]):
        if remaining == 0:
            yield tuple(acc)
            return
        if slots == 0:
            return
        for part in range(min(cap, remaining), 0, -1):
            acc.append(part)
            yield from recurse(remaining - part, part, slots - 1, acc)
            acc.pop()

    yield from recurse(m, m, max_parts, [])


def minimize1_reference(
    signature: Sequence[int], m: int, *, exact: bool = False
):
    """Minimum of Lemma 12's closed form over all partitions of ``m``, by
    direct enumeration. Exponential in ``m`` — the reference the DP is
    validated against, and small-``m`` witness reconstruction."""
    value, _ = best_partition(signature, m, exact=exact)
    return value


def best_partition(
    signature: Sequence[int], m: int, *, exact: bool = False
) -> tuple:
    """``(minimum probability, argmin partition)`` over partitions of ``m``
    into at most ``min(m, n_b)`` people."""
    sig = _validate_signature(signature)
    if m == 0:
        return (Fraction(1) if exact else 1.0), ()
    n = sum(sig)
    best_value = None
    best_parts: tuple[int, ...] = ()
    for parts in iter_partitions(m, min(m, n)):
        value = lemma12_probability(sig, parts, exact=exact)
        if best_value is None or value < best_value:
            best_value, best_parts = value, parts
    if best_value is None:  # m > 0 but no partition fits (cannot happen: n >= 1)
        raise ValueError(f"no feasible partition of {m} atoms in bucket {sig}")
    return best_value, best_parts


class Minimize1Solver:
    """The paper's MINIMIZE1 dynamic program, memoized per bucket signature.

    ``minimum(signature, m)`` equals ``MINIMIZE1(b, 0, m, m)`` from
    Algorithm 1: the minimum of ``Pr(AND_{i in [m]} NOT A_i | B)`` over atoms
    within one bucket with that signature. States ``(i, cap, rem)`` are
    bounded by ``m`` each, giving the paper's ``O(k^3)`` time and space per
    bucket; the memo is keyed by signature, so repeated signatures — within
    one bucketization or across many — are solved once (the Section 3.3.3
    incremental-cost remark).

    Parameters
    ----------
    exact:
        Use :class:`~fractions.Fraction` arithmetic (slower, exact) instead
        of floats.
    intern:
        Optional ``signature -> hashable id`` mapping (e.g.
        ``SignaturePlane.intern``). When provided, the memo is keyed by the
        interned id instead of the raw signature tuple, so a plane shared
        with the engine pays for hashing each signature once instead of on
        every lookup.
    kernel:
        ``"auto"`` (vectorized when numpy is available and the solver is in
        float mode), ``"numpy"``, or ``"scalar"`` — resolved once via
        :func:`repro.core.kernel.resolve_kernel`; exact mode is always
        scalar.
    """

    def __init__(
        self, *, exact: bool = False, intern=None, kernel: str = "auto"
    ) -> None:
        self._exact = exact
        self._one = Fraction(1) if exact else 1.0
        self._intern = intern
        self._memo: dict[object, dict] = {}
        self._tables: dict[object, list] = {}
        self._kernel = _kernel.resolve_kernel(kernel, exact=exact)

    @property
    def exact(self) -> bool:
        """Whether results are exact fractions."""
        return self._exact

    @property
    def kernel(self) -> str:
        """The concrete kernel in use: ``"numpy"`` or ``"scalar"``."""
        return self._kernel

    def _key(self, sig: tuple[int, ...]):
        return sig if self._intern is None else self._intern(sig)

    def minimum(self, signature: Sequence[int], m: int):
        """Minimum of ``Pr(AND_{i in [m]} NOT A_i | B)`` for ``m`` atoms in a
        bucket with the given signature (``m = 0`` gives 1)."""
        sig = _validate_signature(signature)
        if m < 0:
            raise ValueError(f"m must be non-negative, got {m}")
        if m == 0:
            return self._one
        if self._kernel == "numpy":
            key = self._key(sig)
            cached = self._tables.get(key)
            if cached is None or len(cached) <= m:
                self.tables([sig], m)
                cached = self._tables[key]
            return cached[m]
        n = sum(sig)
        prefix = _prefix_sums(sig)
        d = len(sig)
        key = self._key(sig)
        memo = self._memo.setdefault(key, {})

        def g(i: int, cap: int, rem: int):
            if rem == 0:
                return self._one
            if i >= n:
                return INFEASIBLE
            key = (i, cap, rem)
            cached = memo.get(key)
            if cached is not None:
                return cached
            best = INFEASIBLE
            for k_i in range(1, min(cap, rem) + 1):
                rest = g(i + 1, k_i, rem - k_i)
                if rest == INFEASIBLE:
                    continue
                numerator = n - i - prefix[min(k_i, d)]
                if numerator <= 0:
                    best = Fraction(0) if self._exact else 0.0
                    break  # cannot do better than zero
                if self._exact:
                    candidate = Fraction(numerator, n - i) * rest
                else:
                    candidate = (numerator / (n - i)) * rest
                if candidate < best:
                    best = candidate
            memo[key] = best
            return best

        result = g(0, m, m)
        if result == INFEASIBLE:  # pragma: no cover - unreachable for n >= 1
            raise ValueError(f"no feasible atom placement for m={m} in {sig}")
        return result

    def table(self, signature: Sequence[int], max_m: int) -> list:
        """``[minimum(signature, m) for m in 0..max_m]`` — one list the
        cross-bucket DP consumes. Sub-problems are shared across ``m``."""
        if self._kernel == "numpy":
            return self.tables([signature], max_m)[0]
        return [self.minimum(signature, m) for m in range(max_m + 1)]

    def tables(
        self, signatures: Sequence[Sequence[int]], max_m: int
    ) -> list[list]:
        """``[table(sig, max_m) for sig in signatures]`` in one batch.

        On the numpy kernel every *distinct* signature not already cached
        at this width is solved in a single vectorized pass; the scalar
        kernel simply loops. Values are identical either way — the
        vectorized DP reproduces the scalar float path bit-for-bit.
        """
        if max_m < 0:
            raise ValueError(f"max_m must be non-negative, got {max_m}")
        sigs = [_validate_signature(s) for s in signatures]
        if self._kernel != "numpy":
            return [self.table(sig, max_m) for sig in sigs]
        keys = [self._key(sig) for sig in sigs]
        missing: dict[object, tuple[int, ...]] = {}
        for key, sig in zip(keys, sigs):
            cached = self._tables.get(key)
            if cached is None or len(cached) <= max_m:
                missing[key] = sig
        if missing:
            solved = _kernel.minimize1_tables(list(missing.values()), max_m)
            # A wider cached table has identical prefixes (the DP's
            # candidate set per state does not depend on max_m), so
            # overwriting a narrower entry never changes earlier values.
            for key, tbl in zip(missing, solved):
                self._tables[key] = tbl
        return [self._tables[key][: max_m + 1] for key in keys]

    def memo_size(self) -> int:
        """Total number of memoized DP states (for the incremental bench).

        On the numpy kernel each cached table entry counts as one state —
        the vectorized pass keeps no per-``(i, cap, rem)`` memo.
        """
        states = sum(len(states) for states in self._memo.values())
        return states + sum(len(tbl) for tbl in self._tables.values())

    def known_signatures(self) -> int:
        """Number of distinct bucket signatures solved so far."""
        return len(self._memo.keys() | self._tables.keys())


def resolve_solver(
    exact: bool | None,
    solver: Minimize1Solver | None,
    kernel: str = "auto",
) -> Minimize1Solver:
    """One rule for the ``exact``/``solver`` keyword pair, shared by every
    disclosure entry point.

    ``exact=None`` (the default) inherits the solver's mode, or float when no
    solver is passed. Passing both ``exact`` and a solver whose mode differs
    is an error: the solver's memoized tables are in one arithmetic, and
    silently answering in the other hides a float/Fraction mixup at the
    call site. ``kernel`` seeds a freshly created solver; a provided
    solver's already-resolved kernel always wins.
    """
    if solver is None:
        return Minimize1Solver(exact=bool(exact), kernel=kernel)
    if exact is not None and bool(exact) != solver.exact:
        raise ValueError(
            f"exact={exact} conflicts with the provided solver's "
            f"exact={solver.exact}; pass a matching solver or drop `exact`"
        )
    return solver
