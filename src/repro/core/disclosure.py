"""Maximum disclosure w.r.t. ``L^k_basic`` (Definition 6) in polynomial time.

This is the paper's headline algorithm: Theorem 9 restricts the worst case to
``k`` simple implications sharing one consequent, MINIMIZE1/MINIMIZE2 minimize
Formula (1) over those, and

    max disclosure = 1 / (1 + min Formula (1))

The whole computation is ``O(|B| * k^3)`` time and space (Section 3.3.3), and
in this implementation the per-bucket work is shared across equal bucket
signatures and across calls that pass a common solver.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from fractions import Fraction

from repro.bucketization.bucketization import Bucketization
from repro.core.minimize1 import INFEASIBLE, Minimize1Solver, resolve_solver
from repro.core.minimize2 import min_ratio_table

__all__ = [
    "min_formula1_ratio",
    "max_disclosure",
    "max_disclosure_series",
    "max_disclosure_series_from_counts",
    "min_k_to_breach",
]


def _to_disclosure(ratio, *, exact: bool):
    """``1 / (1 + ratio)`` with infeasible ratios mapped to disclosure 0."""
    if ratio == INFEASIBLE:  # pragma: no cover - cannot happen for |B| >= 1
        return Fraction(0) if exact else 0.0
    if exact:
        return Fraction(1) / (1 + ratio)
    return 1.0 / (1.0 + ratio)


def min_formula1_ratio(
    bucketization: Bucketization,
    k: int,
    *,
    exact: bool | None = None,
    solver: Minimize1Solver | None = None,
):
    """Minimum of Formula (1) over placements of ``k`` antecedent atoms and
    the consequent atom (Section 3.3.3)."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    solver = resolve_solver(exact, solver)
    table = min_ratio_table(
        dict(bucketization.signature_items()), k, solver=solver
    )
    return table[k]


def max_disclosure(
    bucketization: Bucketization,
    k: int,
    *,
    exact: bool | None = None,
    solver: Minimize1Solver | None = None,
):
    """Maximum disclosure of ``bucketization`` w.r.t. ``L^k_basic``.

    Parameters
    ----------
    bucketization:
        The published buckets.
    k:
        Bound on the attacker's power: number of basic implications known.
    exact:
        Return an exact :class:`~fractions.Fraction` (float otherwise). The
        default ``None`` inherits the solver's mode; an explicit value that
        contradicts a provided solver raises :class:`ValueError`.
    solver:
        Optional shared :class:`~repro.core.minimize1.Minimize1Solver`; pass
        one instance across many bucketizations to reuse per-signature work.

    Returns
    -------
    float | Fraction
        ``max_{p, s, phi in L^k_basic} Pr(t_p[S] = s | B and phi)``.

    Examples
    --------
    The paper's Figure 3 bucketization (see DESIGN.md on the 10/19 remark):

    >>> from repro.bucketization import Bucketization
    >>> figure3 = Bucketization.from_value_lists([
    ...     ["Flu", "Flu", "Lung Cancer", "Lung Cancer", "Mumps"],
    ...     ["Flu", "Flu", "Breast Cancer", "Ovarian Cancer", "Heart Disease"],
    ... ])
    >>> max_disclosure(figure3, 0, exact=True)
    Fraction(2, 5)
    >>> max_disclosure(figure3, 1, exact=True)
    Fraction(2, 3)
    """
    solver = resolve_solver(exact, solver)
    ratio = min_formula1_ratio(bucketization, k, solver=solver)
    return _to_disclosure(ratio, exact=solver.exact)


def max_disclosure_series(
    bucketization: Bucketization,
    ks: Iterable[int],
    *,
    exact: bool | None = None,
    solver: Minimize1Solver | None = None,
) -> dict[int, object]:
    """Maximum disclosure for several ``k`` values at the cost of one.

    A single MINIMIZE2 pass computes every ``k <= max(ks)`` (the DP tables
    are shared), so sweeping ``k`` — as both Figures 5 and 6 do — costs the
    same as the largest single query. ``exact``/``solver`` resolve exactly as
    in :func:`max_disclosure` (the solver's mode wins; explicit conflicts
    raise).
    """
    return max_disclosure_series_from_counts(
        dict(bucketization.signature_items()), ks, exact=exact, solver=solver
    )


def max_disclosure_series_from_counts(
    signature_counts: Mapping[tuple[int, ...], int],
    ks: Iterable[int],
    *,
    exact: bool | None = None,
    solver: Minimize1Solver | None = None,
) -> dict[int, object]:
    """:func:`max_disclosure_series` computed purely on the signature plane.

    ``signature_counts`` maps each bucket signature to its multiplicity —
    all the implication worst case depends on (Lemma 12 / MINIMIZE2 see a
    bucketization only through its histogram shapes). This is the entry
    point the engine's parallel executor and persistence layer use: a cache
    key round-trips to a computation without ever rebuilding people."""
    ks = sorted(set(ks))
    if not ks:
        return {}
    if ks[0] < 0:
        raise ValueError(f"k must be non-negative, got {ks[0]}")
    solver = resolve_solver(exact, solver)
    table = min_ratio_table(signature_counts, ks[-1], solver=solver)
    return {
        k: _to_disclosure(table[k], exact=solver.exact) for k in ks
    }


def min_k_to_breach(
    bucketization: Bucketization,
    c: float,
    *,
    exact: bool = False,
) -> int:
    """The least attacker power ``k`` whose maximum disclosure reaches ``c``.

    This is the quantity ℓ-diversity reasons about ("it takes at least ℓ-1
    pieces of information"), generalized to implication knowledge. It is
    always well-defined for ``c <= 1``: within the bucket holding the most
    distinct sensitive values ``d``, ``d - 1`` negation-style implications
    force a certain disclosure, so the search is bounded by
    ``max_b (d_b - 1)``.

    Parameters
    ----------
    c:
        Disclosure level to reach, in (0, 1].

    Returns
    -------
    int
        Smallest ``k`` with ``max_disclosure(bucketization, k) >= c``.

    Examples
    --------
    >>> from repro.bucketization import Bucketization
    >>> b = Bucketization.from_value_lists([["a", "b", "c", "d"]])
    >>> min_k_to_breach(b, 1.0)
    3
    """
    if not 0 < c <= 1:
        raise ValueError(f"c must be in (0, 1], got {c}")
    bound = max(bucket.distinct_count for bucket in bucketization.buckets) - 1
    series = max_disclosure_series(bucketization, range(bound + 1), exact=exact)
    threshold = Fraction(c).limit_denominator() if exact else c
    for k in range(bound + 1):
        if series[k] >= threshold:
            return k
    return bound  # pragma: no cover - k = bound always reaches 1 >= c
