"""Worst-case disclosure against ``k`` negated atoms — the ℓ-diversity attacker.

ℓ-diversity (Machanavajjhala et al., cited as [24]) models background
knowledge as negated atoms ``NOT (t_p[S] = s)``. Figure 5's dotted line plots
the worst case over ``k`` such statements; this module computes it in closed
form.

The worst case concentrates all ``k`` negations on a single person of a single
bucket: cross-bucket negations cannot influence the target's bucket (buckets
are independent and negations never couple them) and same-bucket negations
about *other* people are weakly dominated (property-tested against the exact
oracle in ``tests/test_negation.py``). Conditioning one person on avoiding a
value set ``N`` gives

    Pr(t_p = s | p avoids N) = n_b(s) / (n_b - sum_{s' in N} n_b(s'))

so the optimum eliminates the ``k`` most frequent values other than the
target and targets whichever value then maximizes the quotient.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from fractions import Fraction
from typing import Any

from repro.bucketization.bucket import Bucket
from repro.bucketization.bucketization import Bucketization

__all__ = [
    "bucket_negation_disclosure",
    "max_disclosure_negations",
    "max_disclosure_negations_series",
    "negation_witness",
    "NegationWitness",
]


def _best_for_signature(
    signature: Sequence[int], k: int, *, exact: bool
) -> tuple:
    """``(disclosure, target index, eliminated indices)`` for one bucket.

    For each candidate target index ``t`` the optimal elimination set is the
    ``k`` largest remaining counts; with the signature sorted descending those
    are indices ``0..k`` skipping ``t`` (or ``0..k-1`` when ``t > k``).
    """
    n = sum(signature)
    d = len(signature)
    best = None
    best_t = 0
    best_eliminated: tuple[int, ...] = ()
    for t in range(d):
        if t <= k:
            eliminated = tuple(j for j in range(min(k + 1, d)) if j != t)
        else:
            eliminated = tuple(range(min(k, d)))
        removed = sum(signature[j] for j in eliminated)
        value = (
            Fraction(signature[t], n - removed)
            if exact
            else signature[t] / (n - removed)
        )
        if best is None or value > best:
            best, best_t, best_eliminated = value, t, eliminated
    return best, best_t, best_eliminated


def bucket_negation_disclosure(
    bucket: Bucket | Sequence[int], k: int, *, exact: bool = False
):
    """Worst-case disclosure within one bucket for ``k`` negated atoms.

    Accepts a :class:`~repro.bucketization.bucket.Bucket` or a bare signature.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    signature = bucket.signature if isinstance(bucket, Bucket) else tuple(bucket)
    value, _, _ = _best_for_signature(signature, k, exact=exact)
    return value


def max_disclosure_negations(
    bucketization: Bucketization, k: int, *, exact: bool = False
):
    """Worst-case disclosure of the whole bucketization for ``k`` negations."""
    return max(
        bucket_negation_disclosure(bucket, k, exact=exact)
        for bucket in bucketization.buckets
    )


def max_disclosure_negations_series(
    bucketization: Bucketization, ks: Iterable[int], *, exact: bool = False
) -> dict[int, object]:
    """Worst case for several ``k`` values (each bucket is O(|S|) per k)."""
    return {
        k: max_disclosure_negations(bucketization, k, exact=exact)
        for k in sorted(set(ks))
    }


@dataclass(frozen=True)
class NegationWitness:
    """A concrete worst-case set of negated atoms.

    Attributes
    ----------
    bucket_index:
        Which bucket the attack targets.
    person:
        The person all negations (and the disclosed atom) involve.
    target_value:
        The sensitive value whose probability is maximized.
    negated_values:
        The values asserted *not* to be the person's (``<= k`` of them; fewer
        than ``k`` when the bucket has fewer other distinct values).
    disclosure:
        ``Pr(t_person = target_value | B and the negations)``.
    """

    bucket_index: int
    person: Any
    target_value: Any
    negated_values: tuple[Any, ...]
    disclosure: object


def negation_witness(
    bucketization: Bucketization, k: int, *, exact: bool = False
) -> NegationWitness:
    """Reconstruct a worst-case negation set achieving
    :func:`max_disclosure_negations`."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    best: tuple | None = None
    for index, bucket in enumerate(bucketization.buckets):
        value, t, eliminated = _best_for_signature(
            bucket.signature, k, exact=exact
        )
        if best is None or value > best[0]:
            best = (value, index, t, eliminated)
    assert best is not None  # bucketizations are non-empty by construction
    value, index, t, eliminated = best
    bucket = bucketization.buckets[index]
    order = bucket.values_by_frequency
    return NegationWitness(
        bucket_index=index,
        person=bucket.person_ids[0],
        target_value=order[t],
        negated_values=tuple(order[j] for j in eliminated),
        disclosure=value,
    )
