"""The republication engine: incremental, composition-aware publishing.

Worst-case disclosure of a bucketized table decomposes as a **max over
buckets**, and a bucket's value depends only on its signature — that is
what lets the engine cache key on the signature plane and what makes the
unit of republication work here one *distinct signature*, evaluated as a
single-bucket synthetic bucketization
(:meth:`~repro.bucketization.bucketization.Bucketization.from_signature_counts`).
``publish(table, v_next)`` therefore:

1. **Release check** (the paper's (c, k)-safety, per signature): every
   distinct signature of v_next must have disclosure strictly below the
   model's threshold at base ``k``. Incrementally, signatures already
   present in the prior *accepted* release under the same threat policy
   are not re-evaluated — their stored values are reused from the ledger
   (a set difference on the plane's canonical signature form), which is
   bit-identical to recomputing them because both the engine's
   per-signature evaluation and the ledger's wire codec are lossless.
2. **Composition check** (Riboni et al., arXiv:1010.0924, conservative
   form): an adversary who saw every prior accepted release holds ``k``
   background-knowledge atoms *per distinct accepted content*, so v_next
   must also be safe at ``effective_k = k * n`` where ``n`` counts the
   distinct signature multisets among accepted releases including v_next.
   Republishing identical content grants nothing (``n`` unchanged); every
   genuinely new release escalates the adversary.

The verdict separates the **decision** (accepted, values, thresholds,
violations with optional per-bucket witnesses) from the **work** counters
(evaluated vs reused multisets) so callers can assert that incremental
and full runs decide identically while doing different amounts of work.
"""

from __future__ import annotations

import re
from typing import Any

from repro.bucketization.bucketization import Bucketization
from repro.engine.base import AdversaryModel, canonical_params
from repro.engine.engine import DisclosureEngine
from repro.publish.ledger import (
    Multiset,
    Release,
    ReleaseLedger,
    Signature,
)
from repro.codec import (
    decode_params,
    encode_params,
    encode_value,
    encode_witness,
)

__all__ = ["RepublicationEngine", "TABLE_NAME"]

#: Table names are path segments of the ``/releases/{table}/{version}``
#: endpoint and ledger keys, so they are restricted to a URL- and
#: filename-safe alphabet up front (``:`` is reserved as the tenant
#: qualifier separator).
TABLE_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")


def _single(signature: Signature) -> Bucketization:
    """The one-bucket synthetic bucketization realizing ``signature``."""
    return Bucketization.from_signature_counts(((signature, 1),))


class RepublicationEngine:
    """Publish versioned releases of named tables through one
    :class:`~repro.engine.engine.DisclosureEngine` and one
    :class:`~repro.publish.ledger.ReleaseLedger`.

    One instance is bound to one ``(engine, ledger, tenant)`` triple; the
    service tier keeps one per ``(tenant, mode)`` over its existing
    engines, so publish work shares the engine cache (and its
    persistence) with the interactive endpoints.
    """

    def __init__(
        self,
        engine: DisclosureEngine,
        ledger: ReleaseLedger,
        *,
        tenant: str = "",
    ) -> None:
        self.engine = engine
        self.ledger = ledger
        self.tenant = tenant

    # ------------------------------------------------------------------
    # The publish check
    # ------------------------------------------------------------------
    def publish(
        self,
        table: str,
        bucketization: Bucketization,
        *,
        c: Any,
        k: int,
        model: str | AdversaryModel = "implication",
        params: dict[str, Any] | None = None,
        full: bool = False,
        with_witness: bool = False,
    ) -> dict[str, Any]:
        """Check and record the next version of ``table``.

        Parameters
        ----------
        table:
            Ledger key (must match :data:`TABLE_NAME`).
        bucketization:
            The candidate release v_next.
        c, k:
            The safety policy: disclosure must stay strictly below the
            model's threshold for ``c`` at attacker power ``k`` (and at
            the composition-escalated ``effective_k``).
        model, params:
            The threat model, resolved through the engine's instance memo;
            must be signature-decomposable (per-signature re-checking is
            meaningless otherwise).
        full:
            Force a from-scratch evaluation of every signature, ignoring
            reusable ledger values — the baseline incremental runs are
            proven bit-identical against.
        with_witness:
            Attach a concrete worst-case formula to each violation when
            the model supports witness reconstruction.

        Returns
        -------
        dict
            The verdict: decision fields (``accepted``, ``value``,
            ``threshold``, ``violations``, composition facts) plus a
            ``work`` sub-dict of evaluated/reused counters. The verdict is
            recorded in the ledger under the assigned version whether
            accepted or not.
        """
        if not TABLE_NAME.match(table):
            raise ValueError(
                f"table name {table!r} must match {TABLE_NAME.pattern}"
            )
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        params = dict(params or {})
        instance = self.engine.model(model, params)
        if not instance.signature_decomposable():
            raise ValueError(
                f"model {instance.name!r} is not signature-decomposable; "
                "publish re-checks releases per distinct bucket signature"
            )
        threshold = self.engine.threshold(c, model=instance)
        items: Multiset = bucketization.signature_items()
        mode = "exact" if self.engine.exact else "float"
        params_wire = encode_params(params)

        prior = self.ledger.latest_accepted(table, tenant=self.tenant)
        reusable: dict[Signature, Any] = {}
        incremental = False
        if prior is not None and not full and self._policy_matches(
            prior, instance, params, k, mode
        ):
            incremental = True
            reusable = prior.values

        base_values: dict[Signature, Any] = {}
        evaluated = reused = 0
        for signature, _count in items:
            if signature in reusable:
                base_values[signature] = reusable[signature]
                reused += 1
            else:
                base_values[signature] = self.engine.evaluate(
                    _single(signature), k, model=instance
                )
                evaluated += 1

        prior_contents = self.ledger.accepted_contents(
            table, tenant=self.tenant
        )
        distinct_contents = set(prior_contents)
        distinct_contents.add(items)
        multiplier = len(distinct_contents)
        effective_k = k * multiplier
        composition_evaluated = 0
        if effective_k == k:
            composition_values = dict(base_values)
        else:
            composition_values = {}
            for signature, _count in items:
                composition_values[signature] = self.engine.evaluate(
                    _single(signature), effective_k, model=instance
                )
                composition_evaluated += 1

        violations = []
        for signature, count in items:
            base_value = base_values[signature]
            composition_value = composition_values[signature]
            if base_value < threshold and composition_value < threshold:
                continue
            stage = "release" if base_value >= threshold else "composition"
            entry: dict[str, Any] = {
                "signature": list(signature),
                "count": count,
                "stage": stage,
                "k": k,
                "effective_k": effective_k,
                "value": encode_value(base_value),
                "composition_value": encode_value(composition_value),
            }
            if with_witness and instance.supports_witness:
                witness_k = k if stage == "release" else effective_k
                entry["witness"] = encode_witness(
                    self.engine.witness(
                        _single(signature), witness_k, model=instance
                    )
                )
            violations.append(entry)
        accepted = not violations

        version = self.ledger.next_version(table, tenant=self.tenant)
        verdict: dict[str, Any] = {
            "table": table,
            "version": version,
            "tenant": self.tenant or None,
            "accepted": accepted,
            "model": instance.name,
            "params": params_wire,
            "mode": mode,
            "k": k,
            "c": encode_value(c),
            "threshold": encode_value(threshold),
            "value": encode_value(max(base_values.values())),
            "composition_value": encode_value(
                max(composition_values.values())
            ),
            "effective_k": effective_k,
            "composition": {
                "multiplier": multiplier,
                "prior_accepted_releases": len(prior_contents),
                "prior_distinct_contents": len(set(prior_contents)),
            },
            "buckets": sum(count for _signature, count in items),
            "distinct_multisets": len(items),
            "violations": violations,
        }
        verdict["work"] = {
            "incremental": incremental,
            "evaluated_multisets": evaluated + composition_evaluated,
            "release_evaluated": evaluated,
            "composition_evaluated": composition_evaluated,
            "reused_multisets": reused,
        }
        self.ledger.record(
            Release(
                table=table,
                version=version,
                tenant=self.tenant,
                mode=mode,
                model=instance.name,
                params=params_wire,
                k=k,
                c=encode_value(c),
                accepted=accepted,
                multiset=items,
                values=base_values,
                verdict=verdict,
            )
        )
        return verdict

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _policy_matches(
        self,
        prior: Release,
        instance: AdversaryModel,
        params: dict[str, Any],
        k: int,
        mode: str,
    ) -> bool:
        """Whether ``prior``'s stored values are reusable for this publish:
        same model, same canonical params, same ``k``, same arithmetic
        mode. (``c`` only moves the threshold, never the values.)"""
        if prior.model != instance.name or prior.k != k or prior.mode != mode:
            return False
        return canonical_params(decode_params(prior.params)) == (
            canonical_params(params)
        )
