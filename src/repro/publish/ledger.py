"""The release ledger: versioned, persistent history of published tables.

One SQLite row per publish attempt (accepted *and* rejected — rejections
consume a version so the audit trail is complete), keyed
``(tenant, table, version)``. A row stores everything the incremental
re-check needs to avoid re-evaluating unchanged work:

- the release's **signature multiset** in the portable form of
  :meth:`~repro.bucketization.bucketization.Bucketization.signature_items`
  (what the plane interns, what every cache keys on),
- the **threat policy** it was checked under — model name, wire-form
  params, ``k``, ``c``, arithmetic mode,
- the **per-signature disclosure values** at base ``k``, wire-encoded with
  the same lossless codec the HTTP tier uses (floats round-trip
  bit-identically via ``repr``; exact values as ``"num/den"``), so a later
  release can reuse them without any drift,
- the full JSON **verdict** returned to the publisher.

Everything is JSON-in-TEXT columns behind parameterized statements; no
timestamps or other nondeterminism, so two identical publish sequences
produce byte-identical ledgers. The connection is guarded by a lock and
created with ``check_same_thread=False`` because the service tier runs all
blocking work on one executor thread while the CLI uses the constructor's
thread.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.codec import decode_value, encode_value

__all__ = [
    "Release",
    "ReleaseLedger",
    "multiset_to_wire",
    "multiset_from_wire",
    "values_to_wire",
    "values_from_wire",
]

#: One bucket signature in canonical engine form.
Signature = tuple[int, ...]
#: A signature multiset in canonical engine form (``signature_items()``).
Multiset = tuple[tuple[Signature, int], ...]


def multiset_to_wire(multiset: Multiset) -> list[list[Any]]:
    """A canonical signature multiset -> JSON shape ``[[sig, count], ...]``."""
    return [[list(signature), count] for signature, count in multiset]


def multiset_from_wire(raw: Any) -> Multiset:
    """Inverse of :func:`multiset_to_wire` (back to canonical tuples)."""
    return tuple(
        (tuple(int(v) for v in signature), int(count))
        for signature, count in raw
    )


def values_to_wire(values: dict[Signature, Any]) -> list[list[Any]]:
    """Per-signature disclosure values -> JSON ``[[sig, value], ...]``,
    signature-sorted, values through the lossless scalar codec."""
    return [
        [list(signature), encode_value(values[signature])]
        for signature in sorted(values)
    ]


def values_from_wire(raw: Any) -> dict[Signature, Any]:
    """Inverse of :func:`values_to_wire` (bit-identical value round trip)."""
    return {
        tuple(int(v) for v in signature): decode_value(value)
        for signature, value in raw
    }


@dataclass(frozen=True)
class Release:
    """One publish attempt of one table version, as the ledger stores it.

    ``params`` is the wire-form params object (the JSON shape
    :func:`~repro.service.wire.encode_params` produces), ``c`` the
    wire-form threshold input, ``values`` the decoded per-signature
    disclosure values at base ``k``, and ``verdict`` the JSON verdict
    :meth:`~repro.publish.engine.RepublicationEngine.publish` returned.
    """

    table: str
    version: int
    tenant: str
    mode: str
    model: str
    params: dict[str, Any]
    k: int
    c: Any
    accepted: bool
    multiset: Multiset
    values: dict[Signature, Any]
    verdict: dict[str, Any]


_SCHEMA = """
CREATE TABLE IF NOT EXISTS releases (
    tenant TEXT NOT NULL,
    table_name TEXT NOT NULL,
    version INTEGER NOT NULL,
    mode TEXT NOT NULL,
    model TEXT NOT NULL,
    params_json TEXT NOT NULL,
    k INTEGER NOT NULL,
    c_json TEXT NOT NULL,
    accepted INTEGER NOT NULL,
    multiset_json TEXT NOT NULL,
    values_json TEXT NOT NULL,
    verdict_json TEXT NOT NULL,
    PRIMARY KEY (tenant, table_name, version)
)
"""

_COLUMNS = (
    "tenant, table_name, version, mode, model, params_json, k, c_json, "
    "accepted, multiset_json, values_json, verdict_json"
)


def _dumps(value: Any) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


class ReleaseLedger:
    """Persistent store of :class:`Release` rows, keyed
    ``(tenant, table, version)``.

    Parameters
    ----------
    path:
        SQLite database file, or ``":memory:"`` (the default) for an
        ephemeral ledger — what a service without ``--ledger-file`` and
        the test-suite use.
    """

    def __init__(self, path: str | Path = ":memory:") -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        with self._lock, self._conn:
            self._conn.execute(_SCHEMA)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "ReleaseLedger":
        """Context-manager entry (the ledger itself, already open)."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Context-manager exit: :meth:`close`."""
        self.close()

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def record(self, release: Release) -> None:
        """Append one publish attempt.

        Raises
        ------
        ValueError
            If ``(tenant, table, version)`` is already recorded — versions
            are immutable once written.
        """
        row = (
            release.tenant,
            release.table,
            release.version,
            release.mode,
            release.model,
            _dumps(release.params),
            release.k,
            _dumps(release.c),
            1 if release.accepted else 0,
            _dumps(multiset_to_wire(release.multiset)),
            _dumps(values_to_wire(release.values)),
            _dumps(release.verdict),
        )
        placeholders = ", ".join("?" * len(row))
        try:
            with self._lock, self._conn:
                self._conn.execute(
                    f"INSERT INTO releases ({_COLUMNS}) "
                    f"VALUES ({placeholders})",
                    row,
                )
        except sqlite3.IntegrityError:
            raise ValueError(
                f"release {release.table!r} v{release.version} already "
                "recorded (versions are immutable)"
            ) from None

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _row_to_release(self, row: tuple) -> Release:
        (
            tenant,
            table,
            version,
            mode,
            model,
            params_json,
            k,
            c_json,
            accepted,
            multiset_json,
            values_json,
            verdict_json,
        ) = row
        return Release(
            table=table,
            version=version,
            tenant=tenant,
            mode=mode,
            model=model,
            params=json.loads(params_json),
            k=k,
            c=json.loads(c_json),
            accepted=bool(accepted),
            multiset=multiset_from_wire(json.loads(multiset_json)),
            values=values_from_wire(json.loads(values_json)),
            verdict=json.loads(verdict_json),
        )

    def _select(self, where: str, args: tuple) -> list[Release]:
        with self._lock:
            rows = self._conn.execute(
                f"SELECT {_COLUMNS} FROM releases {where}", args
            ).fetchall()
        return [self._row_to_release(row) for row in rows]

    def next_version(self, table: str, tenant: str = "") -> int:
        """The version the next publish of ``table`` will get (1-based)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT MAX(version) FROM releases "
                "WHERE tenant = ? AND table_name = ?",
                (tenant, table),
            ).fetchone()
        return (row[0] or 0) + 1

    def get(
        self, table: str, version: int, tenant: str = ""
    ) -> Release | None:
        """One recorded release, or ``None``."""
        releases = self._select(
            "WHERE tenant = ? AND table_name = ? AND version = ?",
            (tenant, table, version),
        )
        return releases[0] if releases else None

    def latest_accepted(self, table: str, tenant: str = "") -> Release | None:
        """The highest-version *accepted* release of ``table`` — the
        baseline an incremental re-check diffs against."""
        releases = self._select(
            "WHERE tenant = ? AND table_name = ? AND accepted = 1 "
            "ORDER BY version DESC LIMIT 1",
            (tenant, table),
        )
        return releases[0] if releases else None

    def accepted_contents(self, table: str, tenant: str = "") -> list[Multiset]:
        """Signature multisets of every accepted release of ``table``, in
        version order (the composition check's view of what the adversary
        has already seen)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT multiset_json FROM releases "
                "WHERE tenant = ? AND table_name = ? AND accepted = 1 "
                "ORDER BY version",
                (tenant, table),
            ).fetchall()
        return [multiset_from_wire(json.loads(row[0])) for row in rows]

    def list_releases(
        self, table: str | None = None, tenant: str | None = None
    ) -> list[dict[str, Any]]:
        """Summaries of recorded releases, ``(tenant, table, version)``
        ordered, optionally filtered — the ``GET /releases`` shape."""
        where, args = [], []
        if table is not None:
            where.append("table_name = ?")
            args.append(table)
        if tenant is not None:
            where.append("tenant = ?")
            args.append(tenant)
        clause = f"WHERE {' AND '.join(where)}" if where else ""
        with self._lock:
            rows = self._conn.execute(
                "SELECT tenant, table_name, version, mode, model, k, accepted "
                f"FROM releases {clause} "
                "ORDER BY tenant, table_name, version",
                tuple(args),
            ).fetchall()
        return [
            {
                "tenant": row[0] or None,
                "table": row[1],
                "version": row[2],
                "mode": row[3],
                "model": row[4],
                "k": row[5],
                "accepted": bool(row[6]),
            }
            for row in rows
        ]

    def counters(self) -> dict[str, int]:
        """Ledger-level totals for ``/stats``:
        ``{releases, accepted, rejected, tables}``."""
        with self._lock:
            releases, accepted, tables = self._conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(accepted), 0), "
                "COUNT(DISTINCT tenant || ':' || table_name) FROM releases"
            ).fetchone()
        return {
            "releases": releases,
            "accepted": accepted,
            "rejected": releases - accepted,
            "tables": tables,
        }
