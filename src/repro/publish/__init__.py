"""Sequential republication: the release ledger and incremental re-check.

The paper certifies one release in isolation, but a real publisher ships
v1, v2, ... of the same table — and Riboni et al. (arXiv:1010.0924) show
the adversary that matters composes background knowledge *across* the
sequence. This package turns the engine's one-shot safety check into that
steady-state workload:

- :class:`~repro.publish.ledger.ReleaseLedger` — a persistent (SQLite)
  ledger of versioned releases per named table: each release stores its
  signature multiset, threat policy (model, params, k, c, mode), the
  per-signature disclosure values, and the accept/reject verdict.
- :class:`~repro.publish.engine.RepublicationEngine` — ``publish()``
  re-checks only the signature multisets that changed since the prior
  accepted release (a set difference on the plane's canonical signature
  form), reuses the ledger's stored values for the rest, and layers a
  cross-release composition check modelling an adversary who saw every
  prior accepted release. Incremental verdicts are bit-identical to a
  full from-scratch re-check in both arithmetic modes.

The service tier mounts this as ``POST /publish`` / ``GET /releases`` on
:class:`~repro.service.server.DisclosureService`, the shard router
forwards with per-table ledger affinity, and ``repro publish`` drives it
from the command line.
"""

from repro.publish.engine import RepublicationEngine
from repro.publish.ledger import Release, ReleaseLedger

__all__ = ["Release", "ReleaseLedger", "RepublicationEngine"]
