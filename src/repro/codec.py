"""Lossless JSON codecs for disclosure values, params, and witnesses.

This is the dependency-free bottom of the serialization stack: both the
HTTP tier (:mod:`repro.service.wire`, which re-exports everything here
next to its bucketization payload helpers) and the release ledger
(:mod:`repro.publish.ledger`) persist values through these functions, so
a number written by either side reads back **bit-identical**:

- float mode: JSON numbers. Python's :mod:`json` serializes floats with
  ``repr``, which round-trips every IEEE-754 double bit-for-bit, so a
  value read back by :func:`decode_value` compares ``==`` to the
  engine's answer.
- exact mode: :class:`~fractions.Fraction` values are encoded as their
  ``"num/den"`` string (``str(Fraction)``), which round-trips exactly.
  Models that are inherently floating-point (``supports_exact = False``)
  return floats even on an exact engine; those stay JSON numbers.

Nothing here may import from :mod:`repro.service` or
:mod:`repro.publish` — this module exists precisely so those two can
share codecs without importing each other.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Mapping
from fractions import Fraction
from typing import Any

__all__ = [
    "encode_value",
    "decode_value",
    "encode_series",
    "decode_series",
    "encode_params",
    "decode_params",
    "encode_witness",
]


def encode_value(value: Any) -> float | str:
    """One disclosure value -> JSON scalar (number, or ``"num/den"``).

    Raises
    ------
    ValueError
        On non-finite floats. ``nan``/``inf`` survive Python's ``repr``
        serialization but are not JSON — :mod:`json` would emit the
        non-standard ``NaN``/``Infinity`` tokens that strict consumers
        reject — so they are refused here, at encode time, where the
        endpoint layer can still turn them into a clean 400.
    """
    if isinstance(value, Fraction):
        return str(value)
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(
            f"non-finite value {value!r} cannot cross the wire as JSON"
        )
    return value


def decode_value(value: Any) -> float | Fraction:
    """Inverse of :func:`encode_value` (bit-identical round trip).

    Raises
    ------
    ValueError
        On anything :func:`encode_value` could not have produced: strings
        that are not a valid ``"num/den"`` Fraction (including zero
        denominators), booleans, non-numeric payloads, and non-finite
        numbers.
    """
    if isinstance(value, str):
        try:
            return Fraction(value)
        except (ValueError, ZeroDivisionError) as exc:
            raise ValueError(
                f"malformed exact value {value!r}: {exc}"
            ) from None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(
            f"malformed wire value {value!r} "
            f"({type(value).__name__} is not a JSON number or 'num/den')"
        )
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"non-finite wire value {value!r}")
    return value


def encode_series(series: dict[int, Any]) -> dict[str, float | str]:
    """A ``{k: value}`` series -> JSON object (keys become strings)."""
    return {str(k): encode_value(v) for k, v in series.items()}


def decode_series(series: dict[str, Any]) -> dict[int, float | Fraction]:
    """Inverse of :func:`encode_series` (keys back to ints)."""
    return {int(k): decode_value(v) for k, v in series.items()}


def _encode_param_value(name: str, value: Any) -> Any:
    if value is None:
        return None
    if isinstance(value, Fraction):
        return str(value)
    if isinstance(value, Mapping):
        return {
            str(key): _encode_param_value(name, item)
            for key, item in value.items()
        }
    if isinstance(value, bool):
        raise ValueError(f"param {name!r} must not be a boolean")
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if not math.isfinite(value):
            raise ValueError(
                f"non-finite value in param {name!r} cannot cross the wire"
            )
        return value
    raise ValueError(
        f"param {name!r} holds an unencodable {type(value).__name__}"
    )


def encode_params(params: Mapping[str, Any]) -> dict[str, Any]:
    """Model constructor kwargs -> the ``params`` wire object.

    The same lossless conventions as :func:`encode_value`: floats stay JSON
    numbers (repr round trip), :class:`~fractions.Fraction` becomes
    ``"num/den"``, and weight maps become JSON objects (keys stringified —
    JSON object keys are strings; bucket values are strings in practice).
    """
    if not isinstance(params, Mapping):
        raise ValueError("params must be a mapping of constructor kwargs")
    return {
        str(name): _encode_param_value(str(name), value)
        for name, value in params.items()
    }


def _decode_param_value(name: str, value: Any) -> Any:
    if value is None:
        return None
    if isinstance(value, str):
        try:
            return Fraction(value)
        except (ValueError, ZeroDivisionError) as exc:
            raise ValueError(
                f"malformed exact value in param {name!r}: {exc}"
            ) from None
    if isinstance(value, dict):
        return {
            key: _decode_param_value(name, item)
            for key, item in value.items()
        }
    if isinstance(value, bool):
        raise ValueError(f"param {name!r} must not be a boolean")
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if not math.isfinite(value):
            raise ValueError(f"non-finite value in param {name!r}")
        return value
    raise ValueError(
        f"param {name!r} holds an unsupported {type(value).__name__} "
        "(expected number, 'num/den' string, object, or null)"
    )


def decode_params(raw: Any) -> dict[str, Any]:
    """The ``params`` wire object -> model constructor kwargs.

    Inverse of :func:`encode_params`; ints stay ints (sample budgets,
    seeds), floats stay bit-identical, ``"num/den"`` strings become exact
    :class:`~fractions.Fraction` values, and nested objects (weight maps)
    decode per value. Raises :class:`ValueError` with a message safe for a
    400 body on any other shape.
    """
    if not isinstance(raw, dict):
        raise ValueError("field 'params' must be a JSON object")
    return {
        name: _decode_param_value(name, value) for name, value in raw.items()
    }


def encode_witness(witness: Any) -> dict[str, Any]:
    """Serialize any model's witness object: the uniform ``disclosure``
    attribute, plus the dataclass fields as JSON scalars (stringified when
    they are richer objects, e.g. implication formulas)."""
    payload: dict[str, Any] = {
        "type": type(witness).__name__,
        "disclosure": encode_value(witness.disclosure),
        "description": str(witness),
    }
    if dataclasses.is_dataclass(witness):
        for field in dataclasses.fields(witness):
            if field.name == "disclosure":
                continue
            value = getattr(witness, field.name)
            if isinstance(value, (str, int, float, bool)) or value is None:
                payload[field.name] = value
            elif isinstance(value, (list, tuple, frozenset, set)):
                payload[field.name] = [str(item) for item in value]
            else:
                payload[field.name] = str(value)
    return payload
