"""Parse and format knowledge formulas from a compact text syntax.

Grammar (whitespace-insensitive)::

    conjunction := implication ( ';' implication )*
    implication := atoms '->' atoms
    atoms       := atom ( '&' atom )*        # '&' on the left = AND,
                                             # '&' on the right = OR (paper:
                                             # antecedents conjoin,
                                             # consequents disjoin)
    atom        := 't[' person ']' '=' value
    negation    := '!' atom                  # sugar for the Section-2.2
                                             # encoding; needs a witness value

Examples::

    t[Hannah] = Flu -> t[Charlie] = Flu
    t[Ed] = Flu & t[Ed] = Mumps -> t[Bob] = Flu
    t[A] = x -> t[B] = y ; t[B] = y -> t[C] = z

This exists for the CLI and for writing tests/examples legibly; programmatic
users should build :class:`~repro.knowledge.formulas.BasicImplication`
directly.
"""

from __future__ import annotations

import re

from repro.knowledge.atoms import Atom
from repro.knowledge.formulas import BasicImplication, Conjunction

__all__ = ["parse_atom", "parse_implication", "parse_conjunction", "ParseError"]


class ParseError(ValueError):
    """The formula text does not match the grammar."""


_ATOM_RE = re.compile(r"^\s*t\[\s*(?P<person>[^\]]+?)\s*\]\s*=\s*(?P<value>.+?)\s*$")


def parse_atom(text: str) -> Atom:
    """Parse ``t[person] = value``. Person and value are free-form strings
    (trimmed); values that look like integers stay strings — the caller
    controls typing.

    >>> parse_atom("t[Ed] = Flu")
    Atom(person='Ed', value='Flu')
    """
    match = _ATOM_RE.match(text)
    if match is None:
        raise ParseError(f"not an atom: {text!r} (expected 't[person] = value')")
    return Atom(match.group("person"), match.group("value"))


def _parse_atom_list(text: str, side: str) -> tuple[Atom, ...]:
    parts = [p for p in text.split("&")]
    if any(not p.strip() for p in parts):
        raise ParseError(f"empty atom in {side} of {text!r}")
    return tuple(parse_atom(p) for p in parts)


def parse_implication(text: str) -> BasicImplication:
    """Parse one basic implication ``atoms -> atoms``.

    >>> imp = parse_implication("t[H] = flu & t[X] = flu -> t[C] = flu")
    >>> len(imp.antecedents), len(imp.consequents)
    (2, 1)
    """
    if "->" not in text:
        raise ParseError(f"missing '->' in implication: {text!r}")
    left, _, right = text.partition("->")
    if "->" in right:
        raise ParseError(f"more than one '->' in implication: {text!r}")
    return BasicImplication(
        antecedents=_parse_atom_list(left, "antecedent"),
        consequents=_parse_atom_list(right, "consequent"),
    )


def parse_conjunction(text: str) -> Conjunction:
    """Parse a ``';'``-separated conjunction of basic implications — one
    formula of ``L^k_basic`` with ``k`` = number of conjuncts. Empty input
    parses to the vacuous knowledge ``TRUE``.

    >>> phi = parse_conjunction("t[A] = x -> t[B] = y ; t[B] = y -> t[C] = z")
    >>> phi.k
    2
    """
    stripped = text.strip()
    if not stripped:
        return Conjunction(())
    return Conjunction(
        tuple(parse_implication(part) for part in stripped.split(";"))
    )
