"""Finite enumeration and counting over ``L^k_basic`` fragments.

Used by the exact (brute-force) maximum-disclosure oracle and by tests that
validate Theorem 9 empirically: enumerating every set of ``k`` simple
implications over a small bucketization and checking that none beats the
same-consequent family the theorem promises.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from itertools import combinations_with_replacement, product
from math import comb
from typing import Any

from repro.knowledge.atoms import Atom
from repro.knowledge.formulas import BasicImplication, Conjunction

__all__ = [
    "enumerate_atoms",
    "enumerate_simple_implications",
    "enumerate_simple_conjunctions",
    "enumerate_same_consequent_conjunctions",
    "count_basic_implications",
    "is_in_lk_basic",
]


def enumerate_atoms(
    persons: Iterable[Any], values: Iterable[Any]
) -> list[Atom]:
    """All atoms over the given persons and sensitive values."""
    return [Atom(p, s) for p in persons for s in values]


def enumerate_simple_implications(
    persons: Iterable[Any],
    values: Iterable[Any],
    *,
    allow_trivial: bool = False,
) -> list[BasicImplication]:
    """All simple implications ``A -> B`` over the atom set.

    ``A -> A`` is a tautology; it is skipped unless ``allow_trivial`` is set
    (it never changes any probability, so excluding it loses no generality).
    """
    atoms = enumerate_atoms(persons, values)
    implications = []
    for a, b in product(atoms, repeat=2):
        if a == b and not allow_trivial:
            continue
        implications.append(
            BasicImplication(antecedents=(a,), consequents=(b,))
        )
    return implications


def enumerate_simple_conjunctions(
    persons: Sequence[Any], values: Sequence[Any], k: int
) -> Iterator[Conjunction]:
    """All conjunctions of ``k`` simple implications (up to reordering).

    Conjunction is commutative and idempotent, so multisets of implications
    suffice; ``combinations_with_replacement`` enumerates exactly those.
    This is exponential — only for small test instances.
    """
    pool = enumerate_simple_implications(persons, values)
    for chosen in combinations_with_replacement(pool, k):
        yield Conjunction(chosen)


def enumerate_same_consequent_conjunctions(
    persons: Sequence[Any], values: Sequence[Any], k: int
) -> Iterator[tuple[Atom, Conjunction]]:
    """All ``(consequent, conjunction)`` pairs where the conjunction consists
    of ``k`` simple implications all sharing that consequent atom — the
    special form of Theorem 9.
    """
    atoms = enumerate_atoms(persons, values)
    for consequent in atoms:
        antecedent_pool = [a for a in atoms if a != consequent]
        for chosen in combinations_with_replacement(antecedent_pool, k):
            implications = tuple(
                BasicImplication(antecedents=(a,), consequents=(consequent,))
                for a in chosen
            )
            yield consequent, Conjunction(implications)


def count_basic_implications(
    num_persons: int, num_values: int, max_antecedents: int, max_consequents: int
) -> int:
    """Number of basic implications with bounded antecedent/consequent sizes.

    Antecedent sets and consequent sets are sets of distinct atoms (repeating
    an atom inside one side is redundant); the count is
    ``sum_{m=1..M} C(A, m) * sum_{n=1..N} C(A, n)`` with ``A`` the atom count.
    Useful to size brute-force searches before attempting them.
    """
    num_atoms = num_persons * num_values
    ways_left = sum(comb(num_atoms, m) for m in range(1, max_antecedents + 1))
    ways_right = sum(comb(num_atoms, n) for n in range(1, max_consequents + 1))
    return ways_left * ways_right


def is_in_lk_basic(formula: Conjunction, k: int) -> bool:
    """True iff ``formula`` is a conjunction of exactly ``k`` basic
    implications (Definition 4)."""
    return formula.k == k and all(
        isinstance(imp, BasicImplication) for imp in formula.implications
    )
