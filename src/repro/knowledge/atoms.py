"""Atoms: the indivisible statements of the knowledge language.

Definition 1 of the paper: an atom is a formula ``t_p[S] = s`` for a person
``p`` and sensitive value ``s``. An atom *involves* person ``p`` and value
``s``. Worlds are mappings from person id to sensitive value; an atom holds
in a world iff the world assigns exactly that value to that person.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any

__all__ = ["Atom"]


@dataclass(frozen=True, order=True)
class Atom:
    """The atom ``t_person[S] = value``.

    Examples
    --------
    >>> a = Atom("Ed", "Flu")
    >>> a.holds_in({"Ed": "Flu"})
    True
    >>> a.holds_in({"Ed": "Mumps"})
    False
    >>> str(a)
    't[Ed] = Flu'
    """

    person: Any
    value: Any

    def holds_in(self, world: Mapping[Any, Any]) -> bool:
        """True iff ``world`` assigns :attr:`value` to :attr:`person`.

        Raises
        ------
        KeyError
            If the world does not cover :attr:`person` — a world must assign
            a sensitive value to every person the formula mentions.
        """
        return world[self.person] == self.value

    def __str__(self) -> str:
        return f"t[{self.person}] = {self.value}"
