"""Constructive form of Theorem 3 (completeness of basic implications).

Theorem 3: given full identification information, *any* predicate on tables
can be expressed as a finite conjunction of basic implications. The proof
idea is the standard CNF construction: for every world ``w`` that violates
the predicate, add one basic implication that is false exactly at ``w``.

That single-world excluder is :func:`implication_excluding_world`: the
implication ``(AND_p t_p = w(p)) -> (t_{p0} = s')`` for an arbitrary witness
value ``s' != w(p0)`` — at ``w`` the antecedent holds and the consequent fails
(a person has exactly one sensitive value); at any other world some antecedent
atom already fails.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping, Sequence
from typing import Any

from repro.knowledge.atoms import Atom
from repro.knowledge.formulas import BasicImplication, Conjunction

__all__ = ["implication_excluding_world", "encode_predicate"]


def implication_excluding_world(
    world: Mapping[Any, Any], sensitive_domain: Sequence[Any]
) -> BasicImplication:
    """One basic implication that is false exactly at ``world``.

    Parameters
    ----------
    world:
        A full assignment person -> sensitive value.
    sensitive_domain:
        The sensitive attribute's domain; needed to pick a witness value
        different from the world's value for one person. Must contain at
        least two values (with a single-value domain there is only one world,
        and no satisfiable formula can exclude it).

    Examples
    --------
    >>> imp = implication_excluding_world({"p": "flu", "q": "mumps"},
    ...                                   ["flu", "mumps"])
    >>> imp.holds_in({"p": "flu", "q": "mumps"})
    False
    >>> imp.holds_in({"p": "mumps", "q": "flu"})
    True
    """
    items = sorted(world.items(), key=lambda kv: repr(kv[0]))
    if not items:
        raise ValueError("cannot exclude the empty world")
    antecedents = tuple(Atom(person, value) for person, value in items)
    pivot_person, pivot_value = items[0]
    witness = next((s for s in sensitive_domain if s != pivot_value), None)
    if witness is None:
        raise ValueError(
            "sensitive domain must contain at least two values to express "
            "a world's exclusion"
        )
    return BasicImplication(
        antecedents=antecedents, consequents=(Atom(pivot_person, witness),)
    )


def encode_predicate(
    worlds: Iterable[Mapping[Any, Any]],
    predicate: Callable[[Mapping[Any, Any]], bool],
    sensitive_domain: Sequence[Any],
) -> Conjunction:
    """Express ``predicate`` over ``worlds`` as a conjunction of basic
    implications (Theorem 3, constructively).

    The returned conjunction holds at a world ``w`` in ``worlds`` iff
    ``predicate(w)`` — one conjunct per violating world. The conjunction is
    exact on the supplied world set (for worlds outside it, conjuncts built
    from other worlds may or may not hold; under full identification
    information the supplied set is all worlds consistent with the
    bucketization, which is the theorem's setting).

    Examples
    --------
    >>> worlds = [{"p": "flu", "q": "mumps"}, {"p": "mumps", "q": "flu"}]
    >>> phi = encode_predicate(worlds, lambda w: w["p"] == "flu",
    ...                        ["flu", "mumps"])
    >>> [phi.holds_in(w) for w in worlds]
    [True, False]
    """
    conjuncts = []
    for world in worlds:
        if not predicate(world):
            conjuncts.append(
                implication_excluding_world(world, sensitive_domain)
            )
    return Conjunction(tuple(conjuncts))
