"""Basic implications and conjunctions — the formulas of ``L^k_basic``.

Definition 2: a *basic implication* is ``(AND_{i in [m]} A_i) -> (OR_{j in [n]} B_j)``
with ``m, n >= 1`` and atoms ``A_i, B_j``. Definition 4: ``L^k_basic`` consists
of conjunctions of ``k`` basic implications. Definition 7: a *simple
implication* is ``A -> B`` for atoms ``A, B``.

Negated atoms — the ℓ-diversity adversary's unit of knowledge — are encoded
exactly as the paper does in Section 2.2: ``NOT (t[S] = s)`` is
``(t[S] = s) -> (t[S] = s')`` for any ``s' != s``, which is sound because each
tuple has exactly one sensitive value.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from typing import Any

from repro.knowledge.atoms import Atom

__all__ = [
    "BasicImplication",
    "Conjunction",
    "TRUE",
    "simple_implication",
    "negation",
]


@dataclass(frozen=True)
class BasicImplication:
    """``(AND antecedents) -> (OR consequents)`` with at least one of each.

    Examples
    --------
    >>> imp = BasicImplication(
    ...     antecedents=(Atom("Hannah", "Flu"),),
    ...     consequents=(Atom("Charlie", "Flu"),),
    ... )
    >>> imp.holds_in({"Hannah": "Flu", "Charlie": "Flu"})
    True
    >>> imp.holds_in({"Hannah": "Flu", "Charlie": "Mumps"})
    False
    >>> imp.holds_in({"Hannah": "Shot", "Charlie": "Mumps"})
    True
    """

    antecedents: tuple[Atom, ...]
    consequents: tuple[Atom, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "antecedents", tuple(self.antecedents))
        object.__setattr__(self, "consequents", tuple(self.consequents))
        if not self.antecedents:
            raise ValueError("a basic implication needs m >= 1 antecedent atoms")
        if not self.consequents:
            raise ValueError("a basic implication needs n >= 1 consequent atoms")

    @property
    def is_simple(self) -> bool:
        """True iff this is a simple implication ``A -> B`` (Definition 7)."""
        return len(self.antecedents) == 1 and len(self.consequents) == 1

    def holds_in(self, world: Mapping[Any, Any]) -> bool:
        """Material implication: false only when every antecedent holds and
        no consequent does."""
        if not all(atom.holds_in(world) for atom in self.antecedents):
            return True
        return any(atom.holds_in(world) for atom in self.consequents)

    def atoms(self) -> tuple[Atom, ...]:
        """All atoms, antecedents first."""
        return self.antecedents + self.consequents

    def persons(self) -> frozenset:
        """All persons this implication involves."""
        return frozenset(atom.person for atom in self.atoms())

    def __str__(self) -> str:
        left = " AND ".join(str(a) for a in self.antecedents)
        right = " OR ".join(str(b) for b in self.consequents)
        return f"({left}) -> ({right})"


@dataclass(frozen=True)
class Conjunction:
    """A conjunction of basic implications: one formula of ``L^k_basic``.

    ``k`` is the number of conjuncts; conjuncts may repeat (the language does
    not require distinctness, which is why ``L^k_basic`` formulas also express
    any weaker ``L^j_basic`` knowledge for ``j < k``).

    An empty conjunction is the vacuous knowledge ``TRUE`` (``k = 0``).
    """

    implications: tuple[BasicImplication, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "implications", tuple(self.implications))

    @property
    def k(self) -> int:
        """Number of basic-implication conjuncts (the attacker-power bound)."""
        return len(self.implications)

    def holds_in(self, world: Mapping[Any, Any]) -> bool:
        """True iff every conjunct holds in ``world``."""
        return all(imp.holds_in(world) for imp in self.implications)

    def and_also(self, implication: BasicImplication) -> "Conjunction":
        """Return this conjunction extended by one more implication."""
        return Conjunction(self.implications + (implication,))

    def atoms(self) -> tuple[Atom, ...]:
        """All atoms over all conjuncts (with repetitions)."""
        return tuple(a for imp in self.implications for a in imp.atoms())

    def persons(self) -> frozenset:
        """All persons mentioned anywhere in the formula."""
        return frozenset(a.person for a in self.atoms())

    def __str__(self) -> str:
        if not self.implications:
            return "TRUE"
        return " AND ".join(f"[{imp}]" for imp in self.implications)


#: The vacuous background knowledge (k = 0).
TRUE = Conjunction(())


def simple_implication(
    antecedent_person: Any,
    antecedent_value: Any,
    consequent_person: Any,
    consequent_value: Any,
) -> BasicImplication:
    """Build the simple implication ``(t_p[S]=s) -> (t_q[S]=s')``.

    Examples
    --------
    >>> str(simple_implication("Hannah", "Flu", "Charlie", "Flu"))
    '(t[Hannah] = Flu) -> (t[Charlie] = Flu)'
    """
    return BasicImplication(
        antecedents=(Atom(antecedent_person, antecedent_value),),
        consequents=(Atom(consequent_person, consequent_value),),
    )


def negation(person: Any, value: Any, *, witness_value: Any) -> BasicImplication:
    """Encode ``NOT (t_person[S] = value)`` as a basic implication.

    Follows Section 2.2 of the paper: ``(t[S]=s) -> (t[S]=s')`` for any
    ``s' != s`` is equivalent to ``NOT (t[S]=s)`` because every tuple has
    exactly one sensitive value. ``witness_value`` is that ``s'``.

    Raises
    ------
    ValueError
        If ``witness_value`` equals ``value`` (the encoding would be vacuous,
        not a negation).
    """
    if witness_value == value:
        raise ValueError(
            f"witness value must differ from the negated value {value!r}"
        )
    return BasicImplication(
        antecedents=(Atom(person, value),),
        consequents=(Atom(person, witness_value),),
    )


def conjunction_of(implications: Iterable[BasicImplication]) -> Conjunction:
    """Convenience constructor for :class:`Conjunction`."""
    return Conjunction(tuple(implications))
