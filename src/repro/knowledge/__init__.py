"""The background-knowledge language of Section 2.2.

- :class:`repro.knowledge.atoms.Atom` — ``t_p[S] = s``.
- :class:`repro.knowledge.formulas.BasicImplication` —
  ``(AND_i A_i) -> (OR_j B_j)`` (Definition 2), the language's basic unit.
- :class:`repro.knowledge.formulas.Conjunction` — a formula of
  ``L^k_basic`` (Definition 4).
- :func:`repro.knowledge.formulas.simple_implication` /
  :func:`repro.knowledge.formulas.negation` — the special forms the theory
  revolves around (Definition 7 and the negation encoding of Section 2.2).
- :mod:`repro.knowledge.completeness` — the constructive content of
  Theorem 3: any predicate on tables is a finite conjunction of basic
  implications.

Formulas evaluate against *worlds*: mappings from person id to sensitive
value (one full assignment of the sensitive column).
"""

from repro.knowledge.atoms import Atom
from repro.knowledge.formulas import (
    TRUE,
    BasicImplication,
    Conjunction,
    negation,
    simple_implication,
)
from repro.knowledge.language import (
    count_basic_implications,
    enumerate_atoms,
    enumerate_simple_implications,
    is_in_lk_basic,
)
from repro.knowledge.completeness import (
    encode_predicate,
    implication_excluding_world,
)
from repro.knowledge.parser import (
    ParseError,
    parse_atom,
    parse_conjunction,
    parse_implication,
)

__all__ = [
    "parse_atom",
    "parse_implication",
    "parse_conjunction",
    "ParseError",
    "Atom",
    "BasicImplication",
    "Conjunction",
    "TRUE",
    "simple_implication",
    "negation",
    "enumerate_atoms",
    "enumerate_simple_implications",
    "count_basic_implications",
    "is_in_lk_basic",
    "encode_predicate",
    "implication_excluding_world",
]
