"""Tuple suppression: drop records until the publication is (c,k)-safe.

Suppression (Samarati & Sweeney; Cox 1980) removes tuples entirely instead
of coarsening them. Within this paper's framework, removing a tuple changes
its bucket's histogram; the greedy sanitizer here repeatedly suppresses one
tuple from the currently worst bucket — the tuple carrying that bucket's
*most frequent* sensitive value, since worst-case disclosure within a bucket
is driven by its top frequency — until (c,k)-safety holds or the bucket is
exhausted.

Greedy suppression is not guaranteed minimal (minimal suppression is
NP-hard already for k-anonymity); the tests check soundness (the result is
safe), progress (each step strictly shrinks the table) and that buckets are
dropped entirely only when no sub-multiset of them can be made safe.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bucketization.bucket import Bucket
from repro.bucketization.bucketization import Bucketization
from repro.core.minimize1 import Minimize1Solver
from repro.core.disclosure import max_disclosure

__all__ = ["SuppressionResult", "suppress_to_safety"]


@dataclass(frozen=True)
class SuppressionResult:
    """Outcome of greedy suppression.

    Attributes
    ----------
    bucketization:
        The safe publication, or ``None`` when everything was suppressed.
    suppressed:
        Person ids removed, in suppression order.
    disclosure:
        Maximum disclosure of the result (0.0 when nothing remains).
    """

    bucketization: Bucketization | None
    suppressed: tuple
    disclosure: float


def _without_one_top_value(bucket: Bucket) -> Bucket | None:
    """Remove one tuple holding the bucket's most frequent value; ``None``
    when the bucket would become empty."""
    if bucket.size == 1:
        return None
    top = bucket.top_value
    pids = list(bucket.person_ids)
    values = list(bucket.sensitive_values)
    index = values.index(top)
    del pids[index], values[index]
    return Bucket(pids, values)


def suppress_to_safety(
    bucketization: Bucketization, c: float, k: int
) -> SuppressionResult:
    """Greedily suppress tuples until the bucketization is (c,k)-safe.

    Each round recomputes the maximum disclosure, finds a bucket whose local
    worst case attains it, and suppresses one of that bucket's top-value
    tuples (or the whole bucket once it is a singleton). Terminates because
    every round removes at least one tuple.

    Returns
    -------
    SuppressionResult
        ``bucketization=None`` if safety is unachievable even by suppressing
        everything (c so strict that any single bucket violates it).
    """
    if not 0 < c <= 1:
        raise ValueError(f"threshold c must be in (0, 1], got {c}")
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")

    solver = Minimize1Solver()
    suppressed: list = []
    buckets = list(bucketization.buckets)

    def bucket_ratio(bucket: Bucket) -> float:
        n = bucket.size
        return solver.minimum(bucket.signature, k + 1) * n / bucket.top_frequency

    while buckets:
        current = Bucketization(buckets)
        disclosure = max_disclosure(current, k, solver=solver)
        if disclosure < c:
            return SuppressionResult(
                bucketization=current,
                suppressed=tuple(suppressed),
                disclosure=disclosure,
            )
        # The observed single-bucket concentration means some bucket's local
        # ratio attains the global minimum; shrink the worst one.
        worst_index = min(range(len(buckets)), key=lambda i: bucket_ratio(buckets[i]))
        worst = buckets[worst_index]
        shrunk = _without_one_top_value(worst)
        if shrunk is None:
            suppressed.extend(worst.person_ids)
            del buckets[worst_index]
        else:
            removed = set(worst.person_ids) - set(shrunk.person_ids)
            suppressed.extend(sorted(removed, key=repr))
            buckets[worst_index] = shrunk

    return SuppressionResult(
        bucketization=None, suppressed=tuple(suppressed), disclosure=0.0
    )
