"""Tuple suppression: drop records until the publication is (c,k)-safe.

Suppression (Samarati & Sweeney; Cox 1980) removes tuples entirely instead
of coarsening them. Within this paper's framework, removing a tuple changes
its bucket's histogram; the greedy sanitizer here repeatedly suppresses one
tuple from the currently worst bucket — the tuple carrying the value the
adversary model says drives that bucket's worst case (the most frequent
value for probability-scaled models, the cost-optimal target for weighted
ones) — until (c,k)-safety holds or the bucket is exhausted.

The sanitizer is adversary-parametric: disclosure goes through a
:class:`~repro.engine.engine.DisclosureEngine` and the "worst bucket" choice
is delegated to the adversary model (each model knows which bucket attains
its worst case), so the same greedy loop sanitizes against implications,
negations, or weighted attackers.

Greedy suppression is not guaranteed minimal (minimal suppression is
NP-hard already for k-anonymity); the tests check soundness (the result is
safe), progress (each step strictly shrinks the table) and that buckets are
dropped entirely only when no sub-multiset of them can be made safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.bucketization.bucket import Bucket
from repro.bucketization.bucketization import Bucketization

if TYPE_CHECKING:  # pragma: no cover - import cycle: engine builds on core
    from repro.engine.base import AdversaryModel
    from repro.engine.engine import DisclosureEngine

__all__ = ["SuppressionResult", "suppress_to_safety"]


@dataclass(frozen=True)
class SuppressionResult:
    """Outcome of greedy suppression.

    Attributes
    ----------
    bucketization:
        The safe publication, or ``None`` when everything was suppressed.
    suppressed:
        Person ids removed, in suppression order.
    disclosure:
        Worst-case disclosure of the result (0.0 when nothing remains).
    """

    bucketization: Bucketization | None
    suppressed: tuple
    disclosure: float


def _without_one_value(bucket: Bucket, value) -> Bucket | None:
    """Remove one tuple holding ``value`` (the model's worst-case driver);
    ``None`` when the bucket would become empty."""
    if bucket.size == 1:
        return None
    pids = list(bucket.person_ids)
    values = list(bucket.sensitive_values)
    index = values.index(value)
    del pids[index], values[index]
    return Bucket(pids, values)


def suppress_to_safety(
    bucketization: Bucketization,
    c: float,
    k: int,
    *,
    model: str | AdversaryModel = "implication",
    engine: DisclosureEngine | None = None,
) -> SuppressionResult:
    """Greedily suppress tuples until the bucketization is (c,k)-safe.

    Each round recomputes the worst-case disclosure, asks the adversary model
    for a bucket attaining it, and suppresses one of that bucket's top-value
    tuples (or the whole bucket once it is a singleton). Terminates because
    every round removes at least one tuple.

    Parameters
    ----------
    model:
        Adversary model name or instance to sanitize against (default: the
        paper's ``L^k_basic`` implications).
    engine:
        Optional shared :class:`~repro.engine.engine.DisclosureEngine`; pass
        one across calls to reuse per-signature DP work.

    Returns
    -------
    SuppressionResult
        ``bucketization=None`` if safety is unachievable even by suppressing
        everything (c so strict that any single bucket violates it).
    """
    from repro.engine.engine import DisclosureEngine

    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")

    if engine is None:
        engine = DisclosureEngine()
    adversary = engine.model(model)
    threshold = engine.threshold(c, model=adversary)
    suppressed: list = []
    buckets = list(bucketization.buckets)

    while buckets:
        current = Bucketization(buckets)
        disclosure = engine.evaluate(current, k, model=adversary)
        if disclosure < threshold:
            return SuppressionResult(
                bucketization=current,
                suppressed=tuple(suppressed),
                disclosure=disclosure,
            )
        worst_index = adversary.worst_bucket(current, k, context=engine.context)
        worst = buckets[worst_index]
        shrunk = _without_one_value(
            worst, adversary.worst_value(worst, k, context=engine.context)
        )
        if shrunk is None:
            suppressed.extend(worst.person_ids)
            del buckets[worst_index]
        else:
            removed = set(worst.person_ids) - set(shrunk.person_ids)
            suppressed.extend(sorted(removed, key=repr))
            buckets[worst_index] = shrunk

    return SuppressionResult(
        bucketization=None, suppressed=tuple(suppressed), disclosure=0.0
    )
