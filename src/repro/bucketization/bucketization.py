"""A bucketization ``B``: the published form of the table (Section 2.1).

The attacker is assumed to know, for every bucket, the set of people in it and
the multiset of sensitive values — :class:`Bucketization` is exactly that
knowledge. It also implements the paper's partial order on bucketizations
(Section 3.4): ``B <= B'`` iff every bucket of ``B'`` is a union of buckets of
``B`` (``B'`` is coarser). Theorem 14 says maximum disclosure is monotone
non-increasing along this order.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable, Iterable, Sequence
from typing import Any

from repro.bucketization.bucket import Bucket
from repro.data.table import Table
from repro.errors import EmptyTableError

__all__ = ["Bucketization"]


class Bucketization:
    """An immutable sequence of disjoint :class:`Bucket` objects.

    Examples
    --------
    >>> b = Bucketization([Bucket.from_values(["Flu", "Flu", "Mumps"])])
    >>> b.total_size, len(b)
    (3, 1)
    """

    __slots__ = ("_buckets", "_bucket_of", "_signature_items")

    def __init__(self, buckets: Iterable[Bucket]) -> None:
        bs = tuple(buckets)
        if not bs:
            raise EmptyTableError("a bucketization needs at least one bucket")
        bucket_of: dict[Any, int] = {}
        for index, bucket in enumerate(bs):
            for pid in bucket.person_ids:
                if pid in bucket_of:
                    raise ValueError(
                        f"person {pid!r} appears in buckets "
                        f"{bucket_of[pid]} and {index}"
                    )
                bucket_of[pid] = index
        self._buckets = bs
        self._bucket_of = bucket_of
        self._signature_items: tuple[tuple[tuple[int, ...], int], ...] | None = None

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._buckets)

    def __iter__(self):
        return iter(self._buckets)

    def __getitem__(self, index: int) -> Bucket:
        return self._buckets[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bucketization):
            return NotImplemented
        return self.partition_frozen() == other.partition_frozen() and all(
            Counter(self.bucket_of(pid).sensitive_values)
            == Counter(other.bucket_of(pid).sensitive_values)
            for pid in self._bucket_of
        )

    def __hash__(self) -> int:  # pragma: no cover - rarely hashed
        return hash(self.partition_frozen())

    def __repr__(self) -> str:
        sizes = [b.size for b in self._buckets]
        return f"Bucketization({len(self._buckets)} buckets, sizes={sizes})"

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def buckets(self) -> tuple[Bucket, ...]:
        """The buckets, in a fixed order."""
        return self._buckets

    @property
    def total_size(self) -> int:
        """Total number of tuples across buckets."""
        return sum(b.size for b in self._buckets)

    @property
    def person_ids(self) -> tuple[Any, ...]:
        """All person ids, grouped by bucket."""
        return tuple(pid for b in self._buckets for pid in b.person_ids)

    def bucket_of(self, person_id: Any) -> Bucket:
        """The bucket containing ``person_id`` (full identification info)."""
        return self._buckets[self._bucket_of[person_id]]

    def bucket_index_of(self, person_id: Any) -> int:
        """Index of the bucket containing ``person_id``."""
        return self._bucket_of[person_id]

    def partition_frozen(self) -> frozenset[frozenset]:
        """The partition of people as a hashable set of sets."""
        return frozenset(frozenset(b.person_ids) for b in self._buckets)

    def signature_multiset(self) -> Counter:
        """Multiset of bucket signatures — all the disclosure DP needs."""
        return Counter(dict(self.signature_items()))

    def signature_items(self) -> tuple[tuple[tuple[int, ...], int], ...]:
        """The signature multiset as a canonical hashable tuple of
        ``(signature, count)`` pairs, sorted by signature.

        Computed once per bucketization — this is the form the signature
        plane interns, every whole-bucketization cache keys on, and the
        parallel executor ships to worker processes.
        """
        if self._signature_items is None:
            counts = Counter(b.signature for b in self._buckets)
            self._signature_items = tuple(sorted(counts.items()))
        return self._signature_items

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_table(
        cls,
        table: Table,
        *,
        key: Callable[[dict], Any] | None = None,
    ) -> "Bucketization":
        """Bucketize ``table`` by grouping rows with equal ``key``.

        The default key is the row's quasi-identifier tuple, which models a
        published table where each QI equivalence class is one bucket (the
        full-domain generalization view; see Section 2.1 on the equivalence
        of the two sanitization methods under full identification).
        """
        table.require_nonempty()
        schema = table.schema
        key_fn = key if key is not None else schema.qi_tuple
        groups: dict[Any, tuple[list, list]] = {}
        for pid, record in zip(table.person_ids, table.rows):
            pids, values = groups.setdefault(key_fn(record), ([], []))
            pids.append(pid)
            values.append(record[schema.sensitive])
        # Sort groups by key repr so bucket order is deterministic.
        buckets = [
            Bucket(pids, values)
            for _, (pids, values) in sorted(groups.items(), key=lambda kv: repr(kv[0]))
        ]
        return cls(buckets)

    @classmethod
    def from_signature_counts(cls, counts) -> "Bucketization":
        """Synthetic bucketization realizing a signature multiset.

        ``counts`` is a mapping ``signature -> multiplicity`` or an iterable
        of ``(signature, count)`` pairs. Person ids and value labels are
        fresh placeholders (see :meth:`Bucket.from_signature`): for every
        signature-decomposable computation the result is evaluation-
        equivalent to any bucketization with the same signature multiset,
        which is how the signature plane turns an interned cache key back
        into a unit of work for a worker process.
        """
        items = counts.items() if hasattr(counts, "items") else counts
        buckets: list[Bucket] = []
        next_id = 0
        for signature, count in sorted(items):
            if count <= 0:
                raise ValueError(
                    f"signature multiplicity must be positive, got {count}"
                )
            for _ in range(count):
                bucket = Bucket.from_signature(signature, start_id=next_id)
                next_id += bucket.size
                buckets.append(bucket)
        return cls(buckets)

    @classmethod
    def from_value_lists(cls, value_lists: Sequence[Sequence[Any]]) -> "Bucketization":
        """Build from bare sensitive-value lists with global integer ids
        (convenient in tests and benchmarks)."""
        buckets = []
        next_id = 0
        for values in value_lists:
            values = tuple(values)
            buckets.append(Bucket(range(next_id, next_id + len(values)), values))
            next_id += len(values)
        return cls(buckets)

    # ------------------------------------------------------------------
    # The partial order of Section 3.4
    # ------------------------------------------------------------------
    def merge_buckets(self, indices: Iterable[int]) -> "Bucketization":
        """Merge the buckets at ``indices`` into one, moving *up* the order.

        Returns a strictly coarser bucketization; by Theorem 14 its maximum
        disclosure is at most this one's.
        """
        chosen = sorted(set(indices))
        if len(chosen) < 2:
            raise ValueError("need at least two distinct buckets to merge")
        for index in chosen:
            if not 0 <= index < len(self._buckets):
                raise IndexError(f"bucket index {index} out of range")
        merged = self._buckets[chosen[0]]
        for index in chosen[1:]:
            merged = merged.merge(self._buckets[index])
        remaining = [
            b for i, b in enumerate(self._buckets) if i not in set(chosen)
        ]
        return Bucketization(remaining + [merged])

    def refines(self, coarser: "Bucketization") -> bool:
        """True iff ``self`` <= ``coarser`` in the paper's partial order, i.e.
        every bucket of ``coarser`` is a union of buckets of ``self``.

        Both must partition the same person set.
        """
        if set(self._bucket_of) != set(coarser._bucket_of):
            raise ValueError("bucketizations cover different person sets")
        for fine_bucket in self._buckets:
            indices = {
                coarser.bucket_index_of(pid) for pid in fine_bucket.person_ids
            }
            if len(indices) != 1:
                return False
        return True
